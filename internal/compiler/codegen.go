package compiler

import (
	"fmt"
	"math"

	"gpucmp/internal/kir"
	"gpucmp/internal/ptx"
)

// Config is the full declarative description of one compilation: the
// front-end personality plus the back-end pass pipeline. The zero Passes
// value means the default pipeline; ablation experiments and the fuzz
// oracle's miscompile bisection pass explicit subsets (or extra passes).
type Config struct {
	Personality Personality

	// Passes is the back-end pipeline; nil means DefaultPasses().
	Passes []Pass

	// Debug re-validates the kernel's structural invariants after every
	// pass, pinning a pipeline corruption to the pass that introduced it.
	Debug bool

	// Observer, when set, receives each pass's before/after instruction
	// census (cmd/ptxstat's per-pass mode). Observed compiles are not
	// cacheable: CompileCachedConfig rejects a non-nil Observer.
	Observer func(pass Pass, before, after *ptx.Stats)
}

func (c Config) passes() []Pass {
	if c.Passes == nil {
		return DefaultPasses()
	}
	return c.Passes
}

// Compile lowers one KIR kernel with the given front-end personality and
// runs the default shared PTXAS back-end pipeline over the result.
func Compile(k *kir.Kernel, p Personality) (*ptx.Kernel, error) {
	return CompileWithConfig(k, Config{Personality: p})
}

// CompileWithConfig lowers one KIR kernel under a full compile
// configuration. The produced kernel carries the remarks stream and the
// per-pass stats; given equal (kernel, Config) inputs the instruction
// stream is bit-identical across processes and goroutines.
func CompileWithConfig(k *kir.Kernel, cfg Config) (*ptx.Kernel, error) {
	if err := kir.Check(k); err != nil {
		return nil, err
	}
	p := cfg.Personality
	rem := &Remarks{}
	g := newGen(k, p)
	g.rem = rem
	g.prologue()
	g.block(k.Body)
	g.emit(ptx.NewInstruction(ptx.OpRet))
	if g.err != nil {
		return nil, g.err
	}
	out := &ptx.Kernel{
		Name:                k.Name,
		Toolchain:           p.Name,
		Instrs:              g.out,
		NumRegs:             g.maxReg,
		SharedBytes:         g.sharedBytes,
		LocalBytes:          g.localBytes,
		ConstBytes:          4 * len(k.Params),
		WarpWidthAssumption: k.WarpWidthAssumption,
	}
	for _, pa := range k.Params {
		space := ptx.SpaceGlobal
		switch pa.Space {
		case kir.Const:
			space = ptx.SpaceConst
		case kir.Texture:
			space = ptx.SpaceTex
		}
		out.Params = append(out.Params, ptx.Param{
			Name: pa.Name, Pointer: pa.Buffer, Space: space, Type: scalarType(pa.T),
		})
	}
	out.FrontEndStats = out.StaticStats()
	pl := Pipeline{Passes: cfg.passes(), Debug: cfg.Debug, Observer: cfg.Observer}
	stats, err := pl.Run(out, rem)
	if err != nil {
		return nil, err
	}
	out.PassStats = stats
	out.Remarks = rem.List()
	if err := out.Validate(); err != nil {
		return nil, fmt.Errorf("compiler: internal error: %w", err)
	}
	return out, nil
}

// CompileModule lowers several kernels into one module.
func CompileModule(name string, kernels []*kir.Kernel, p Personality) (*ptx.Module, error) {
	m := ptx.NewModule(name)
	for _, k := range kernels {
		pk, err := Compile(k, p)
		if err != nil {
			return nil, err
		}
		m.Add(pk)
	}
	return m, nil
}

func scalarType(t kir.Type) ptx.ScalarType {
	switch t {
	case kir.U32:
		return ptx.U32
	case kir.I32:
		return ptx.S32
	case kir.F32:
		return ptx.F32
	default:
		return ptx.B32
	}
}

// value is a lowered expression: an operand plus ownership of the register
// (owned temps are returned to the allocator after their single use).
type value struct {
	op    ptx.Operand
	owned bool
	t     kir.Type
}

type cseEntry struct {
	reg   ptx.Reg
	ver   int
	depth int
	t     kir.Type
}

type gen struct {
	p   Personality
	k   *kir.Kernel
	out []ptx.Instruction
	err error

	nreg   int
	maxReg int
	free   []ptx.Reg
	state  []uint8 // 0 = in use, 1 = free
	vers   []int

	// Loop-aware release: a register allocated outside the rolled loop
	// currently being emitted must not be recycled inside it — a later
	// instruction in the body would clobber it on the back edge before an
	// earlier emitted use re-reads it. Such releases are deferred until
	// emission returns to the register's allocation nesting level.
	allocDepth  []int
	loopDepth   int
	pendRelease map[int][]ptx.Reg

	vars     map[string]ptx.Reg
	varTypes map[string]kir.Type
	paramIdx map[string]int
	paramReg map[string]ptx.Reg // CUDA cached params

	sharedOff   map[string]int32
	localOff    map[string]int32
	sharedBytes int
	localBytes  int

	cse        map[string]cseEntry
	cseQueue   []string        // insertion order, for pressure eviction
	protectVer map[ptx.Reg]int // regs kept alive because a CSE entry holds them
	deferred   map[ptx.Reg]bool
	depth      int

	guard    ptx.Reg // active guard predicate (NoReg when none)
	guardNeg bool

	// rem collects front-end remarks; nil is a valid no-op sink.
	rem *Remarks
}

func newGen(k *kir.Kernel, p Personality) *gen {
	g := &gen{
		p: p, k: k,
		vars:        make(map[string]ptx.Reg),
		varTypes:    make(map[string]kir.Type),
		paramIdx:    make(map[string]int),
		paramReg:    make(map[string]ptx.Reg),
		sharedOff:   make(map[string]int32),
		localOff:    make(map[string]int32),
		cse:         make(map[string]cseEntry),
		protectVer:  make(map[ptx.Reg]int),
		deferred:    make(map[ptx.Reg]bool),
		pendRelease: make(map[int][]ptx.Reg),
		guard:       ptx.NoReg,
	}
	for i, pa := range k.Params {
		g.paramIdx[pa.Name] = i
	}
	for _, a := range k.SharedArrays {
		g.sharedOff[a.Name] = int32(g.sharedBytes)
		g.sharedBytes += a.Count * 4
	}
	for _, a := range k.LocalArrays {
		g.localOff[a.Name] = int32(g.localBytes)
		g.localBytes += a.Count * 4
	}
	return g
}

func (g *gen) errf(format string, args ...any) {
	if g.err == nil {
		g.err = fmt.Errorf("compiler: %s: "+format, append([]any{g.k.Name}, args...)...)
	}
}

// ---- register allocation ----

func (g *gen) alloc() ptx.Reg {
	for len(g.free) > 0 {
		r := g.free[len(g.free)-1]
		g.free = g.free[:len(g.free)-1]
		if g.state[r] == 1 {
			g.state[r] = 0
			g.allocDepth[r] = g.loopDepth
			return r
		}
	}
	r := ptx.Reg(g.nreg)
	g.nreg++
	if g.nreg > g.maxReg {
		g.maxReg = g.nreg
	}
	g.state = append(g.state, 0)
	g.vers = append(g.vers, 0)
	g.allocDepth = append(g.allocDepth, g.loopDepth)
	return r
}

// enterLoop/exitLoop bracket the emission of a rolled loop (head, body and
// back edge). exitLoop retries the releases that were deferred until this
// nesting level became current again.
func (g *gen) enterLoop() { g.loopDepth++ }

func (g *gen) exitLoop() {
	g.loopDepth--
	pend := g.pendRelease[g.loopDepth]
	delete(g.pendRelease, g.loopDepth)
	for _, r := range pend {
		g.release(r)
	}
}

func (g *gen) release(r ptx.Reg) {
	if r == ptx.NoReg || g.state[r] == 1 {
		return
	}
	// A register backing a still-valid CSE entry must stay alive; its
	// release is deferred until the entry is dropped.
	if pv, ok := g.protectVer[r]; ok && pv == g.vers[r] {
		g.deferred[r] = true
		return
	}
	// A register from an outer nesting level stays live across this
	// loop's back edge; park its release until we return there.
	if g.allocDepth[r] < g.loopDepth {
		d := g.allocDepth[r]
		g.pendRelease[d] = append(g.pendRelease[d], r)
		return
	}
	g.state[r] = 1
	g.free = append(g.free, r)
}

// claim re-acquires a register found in a CSE entry that may have been
// released; the caller becomes its owner.
func (g *gen) claim(r ptx.Reg) bool {
	if g.state[r] == 1 {
		g.state[r] = 0
		return true
	}
	return false
}

func (g *gen) releaseVal(v value) {
	if v.owned && !v.op.IsImm && !v.op.IsSpec {
		g.release(v.op.Reg)
	}
}

// ---- emission ----

func (g *gen) emit(in ptx.Instruction) int {
	if in.Dst != ptx.NoReg {
		g.vers[in.Dst]++
	}
	if in.GuardPred == ptx.NoReg && g.guard != ptx.NoReg {
		in.GuardPred = g.guard
		in.GuardNeg = g.guardNeg
	}
	g.out = append(g.out, in)
	return len(g.out) - 1
}

func (g *gen) opKey(o ptx.Operand) string {
	switch {
	case o.IsImm:
		return fmt.Sprintf("#%x", o.Imm)
	case o.IsSpec:
		return "$" + o.Spec.String()
	default:
		return fmt.Sprintf("r%dv%d", o.Reg, g.vers[o.Reg])
	}
}

// cseLookup returns a cached register for the key if still valid.
func (g *gen) cseLookup(key string) (value, bool) {
	if !g.p.CSE {
		return value{}, false
	}
	e, ok := g.cse[key]
	if !ok || g.vers[e.reg] != e.ver {
		return value{}, false
	}
	owned := g.claim(e.reg)
	if !owned && g.deferred[e.reg] {
		// The register is only alive because this entry's protection
		// deferred its release. Hand that deferred release to the caller:
		// otherwise a pressure eviction while the caller still holds the
		// operand would free the register mid-expression, and the allocator
		// could hand it to a sibling subexpression before this use is
		// emitted.
		delete(g.deferred, e.reg)
		owned = true
	}
	return value{op: ptx.R(e.reg), owned: owned, t: e.t}, true
}

func (g *gen) cseStore(key string, r ptx.Reg, t kir.Type) {
	if !g.p.CSE {
		return
	}
	if g.p.MaxCSERegs > 0 {
		for len(g.protectVer) >= g.p.MaxCSERegs && len(g.cseQueue) > 0 {
			g.evictOldestCSE()
		}
	}
	g.cse[key] = cseEntry{reg: r, ver: g.vers[r], depth: g.depth, t: t}
	g.protectVer[r] = g.vers[r]
	g.cseQueue = append(g.cseQueue, key)
}

// evictOldestCSE drops the oldest still-live CSE entry and frees its
// register if its release had been deferred.
func (g *gen) evictOldestCSE() {
	for len(g.cseQueue) > 0 {
		key := g.cseQueue[0]
		g.cseQueue = g.cseQueue[1:]
		e, ok := g.cse[key]
		if !ok {
			continue
		}
		delete(g.cse, key)
		g.rem.Addf(PhaseFrontEnd, "CSE evicted r%d under register pressure (window %d)", e.reg, g.p.MaxCSERegs)
		g.unprotect(e)
		return
	}
}

// unprotect releases a dropped entry's register protection.
func (g *gen) unprotect(e cseEntry) {
	if pv, ok := g.protectVer[e.reg]; ok && pv == e.ver {
		delete(g.protectVer, e.reg)
		if g.deferred[e.reg] {
			delete(g.deferred, e.reg)
			g.release(e.reg)
		}
	}
}

// dropCSEDeeperThan removes entries created inside divergent regions that
// have been left: their registers were only written in a subset of lanes.
// Registers whose release was deferred by a dropped entry are freed.
//
// The walk follows cseQueue (insertion order), not the map: releases push
// registers onto the allocator's free stack, so the iteration order decides
// which register later allocations receive — and with it the CSE keys of
// every subsequent expression. Map order would make codegen differ from
// process to process.
func (g *gen) dropCSEDeeperThan(depth int) {
	kept := g.cseQueue[:0]
	for _, k := range g.cseQueue {
		e, ok := g.cse[k]
		if !ok {
			continue // stale queue entry: already evicted or dropped
		}
		if e.depth > depth {
			delete(g.cse, k)
			g.unprotect(e)
		} else {
			kept = append(kept, k)
		}
	}
	g.cseQueue = kept
}

// ---- prologue / parameters ----

func (g *gen) prologue() {
	if !g.p.CacheParams {
		return
	}
	if len(g.k.Params) > 0 {
		g.rem.Addf(PhaseFrontEnd, "cached %d parameter(s) in registers at entry from the %s space",
			len(g.k.Params), g.p.ParamSpace)
	}
	for i, pa := range g.k.Params {
		r := g.alloc() // pinned for the kernel's lifetime
		ld := ptx.NewInstruction(ptx.OpLd)
		ld.Space = g.p.ParamSpace
		ld.Typ = scalarType(pa.T)
		if pa.Buffer {
			ld.Typ = ptx.U32 // base addresses are 32-bit in the model
		}
		ld.Dst = r
		ld.Off = int32(4 * i)
		g.emit(ld)
		g.paramReg[pa.Name] = r
	}
}

// paramValue yields the operand holding a parameter's value.
func (g *gen) paramValue(name string) value {
	p := g.k.Param(name)
	if p == nil {
		g.errf("unknown parameter %q", name)
		return value{op: ptx.ImmU(0)}
	}
	if g.p.CacheParams {
		return value{op: ptx.R(g.paramReg[name]), t: p.T}
	}
	// OpenCL style: reload from the constant bank at each use.
	r := g.alloc()
	ld := ptx.NewInstruction(ptx.OpLd)
	ld.Space = g.p.ParamSpace
	ld.Typ = scalarType(p.T)
	if p.Buffer {
		ld.Typ = ptx.U32
	}
	ld.Dst = r
	ld.Off = int32(4 * g.paramIdx[name])
	g.emit(ld)
	return value{op: ptx.R(r), owned: true, t: p.T}
}

// ---- expression lowering ----

func isPow2(v uint32) bool { return v != 0 && v&(v-1) == 0 }

func log2u(v uint32) uint32 {
	n := uint32(0)
	for v > 1 {
		v >>= 1
		n++
	}
	return n
}

// lower evaluates e and returns its value. hint, when not NoReg, requests
// that the result be produced in that register (used to avoid copies on
// assignments in the non-MovCopies personality); hint is only honoured for
// instruction-producing expressions.
func (g *gen) lower(e kir.Expr, hint ptx.Reg) value {
	switch e := e.(type) {
	case *kir.ConstInt:
		return value{op: ptx.ImmU(uint32(e.V)), t: e.T}
	case *kir.ConstFloat:
		return value{op: ptx.ImmU(math.Float32bits(e.V)), t: kir.F32}
	case *kir.ParamRef:
		return g.paramValue(e.Name)
	case *kir.VarRef:
		r, ok := g.vars[e.Name]
		if !ok {
			g.errf("use of unbound variable %q", e.Name)
			return value{op: ptx.ImmU(0)}
		}
		return value{op: ptx.R(r), t: g.varTypes[e.Name]}
	case *kir.Builtin:
		return g.lowerBuiltin(e, hint)
	case *kir.Bin:
		return g.lowerBin(e, hint)
	case *kir.Un:
		return g.lowerUn(e, hint)
	case *kir.Sel:
		return g.lowerSel(e, hint)
	case *kir.Cast:
		return g.lowerCast(e, hint)
	case *kir.Load:
		return g.lowerLoad(e, hint)
	default:
		g.errf("unknown expression %T", e)
		return value{op: ptx.ImmU(0)}
	}
}

func (g *gen) dst(hint ptx.Reg) (ptx.Reg, bool) {
	if hint != ptx.NoReg {
		return hint, false
	}
	return g.alloc(), true
}

func (g *gen) lowerBuiltin(e *kir.Builtin, hint ptx.Reg) value {
	var sp ptx.SpecialReg
	switch e.Kind {
	case kir.TidX:
		sp = ptx.SrTidX
	case kir.TidY:
		sp = ptx.SrTidY
	case kir.NtidX:
		sp = ptx.SrNtidX
	case kir.NtidY:
		sp = ptx.SrNtidY
	case kir.CtaidX:
		sp = ptx.SrCtaidX
	case kir.CtaidY:
		sp = ptx.SrCtaidY
	case kir.NctaidX:
		sp = ptx.SrNctaidX
	case kir.NctaidY:
		sp = ptx.SrNctaidY
	case kir.WarpSize:
		sp = ptx.SrWarpSize
	default:
		g.errf("unknown builtin %v", e.Kind)
	}
	key := "mov$" + sp.String()
	if v, ok := g.cseLookup(key); ok && hint == ptx.NoReg {
		return v
	}
	d, owned := g.dst(hint)
	mov := ptx.NewInstruction(ptx.OpMov)
	mov.Typ = ptx.U32
	mov.Dst = d
	mov.Src[0] = ptx.Sp(sp)
	g.emit(mov)
	g.cseStore(key, d, kir.U32)
	return value{op: ptx.R(d), owned: owned, t: kir.U32}
}

var binOpTable = map[kir.BinOp]ptx.Opcode{
	kir.OpAdd: ptx.OpAdd, kir.OpSub: ptx.OpSub, kir.OpMul: ptx.OpMul,
	kir.OpDiv: ptx.OpDiv, kir.OpRem: ptx.OpRem,
	kir.OpMin: ptx.OpMin, kir.OpMax: ptx.OpMax,
	kir.OpAnd: ptx.OpAnd, kir.OpOr: ptx.OpOr, kir.OpXor: ptx.OpXor,
	kir.OpShl: ptx.OpShl, kir.OpShr: ptx.OpShr,
}

var cmpTable = map[kir.BinOp]ptx.CmpOp{
	kir.OpEq: ptx.CmpEQ, kir.OpNe: ptx.CmpNE, kir.OpLt: ptx.CmpLT,
	kir.OpLe: ptx.CmpLE, kir.OpGt: ptx.CmpGT, kir.OpGe: ptx.CmpGE,
}

// foldConst evaluates integer-constant binary expressions at compile time.
func foldConst(op kir.BinOp, l, r *kir.ConstInt) (uint32, bool) {
	a, b := uint32(l.V), uint32(r.V)
	signed := l.T == kir.I32
	switch op {
	case kir.OpAdd:
		return a + b, true
	case kir.OpSub:
		return a - b, true
	case kir.OpMul:
		return a * b, true
	case kir.OpDiv:
		if b == 0 {
			return 0, false
		}
		if signed {
			return uint32(int32(a) / int32(b)), true
		}
		return a / b, true
	case kir.OpRem:
		if b == 0 {
			return 0, false
		}
		if signed {
			return uint32(int32(a) % int32(b)), true
		}
		return a % b, true
	case kir.OpAnd:
		return a & b, true
	case kir.OpOr:
		return a | b, true
	case kir.OpXor:
		return a ^ b, true
	case kir.OpShl:
		return a << (b & 31), true
	case kir.OpShr:
		if signed {
			return uint32(int32(a) >> (b & 31)), true
		}
		return a >> (b & 31), true
	case kir.OpMin:
		if signed {
			if int32(a) < int32(b) {
				return a, true
			}
			return b, true
		}
		if a < b {
			return a, true
		}
		return b, true
	case kir.OpMax:
		if signed {
			if int32(a) > int32(b) {
				return a, true
			}
			return b, true
		}
		if a > b {
			return a, true
		}
		return b, true
	}
	return 0, false
}

func (g *gen) lowerBin(e *kir.Bin, hint ptx.Reg) value {
	// Constant folding (both personalities fold literals).
	if li, ok := e.L.(*kir.ConstInt); ok {
		if ri, ok2 := e.R.(*kir.ConstInt); ok2 && !e.Op.IsCompare() && !e.Op.IsLogical() {
			if v, folded := foldConst(e.Op, li, ri); folded {
				return value{op: ptx.ImmU(v), t: li.T}
			}
		}
	}

	if e.Op.IsCompare() {
		return g.lowerCmp(e, hint)
	}
	if e.Op.IsLogical() {
		l := g.lower(e.L, ptx.NoReg)
		r := g.lower(e.R, ptx.NoReg)
		op := ptx.OpAnd
		if e.Op == kir.OpLOr {
			op = ptx.OpOr
		}
		return g.binInstr(op, ptx.Pred, l, r, hint, kir.Bool)
	}

	rt := e.Type()
	st := scalarType(rt)
	op := binOpTable[e.Op]

	l := g.lower(e.L, ptx.NoReg)
	r := g.lower(e.R, ptx.NoReg)

	// Strength reduction on integer ops with power-of-two immediates.
	if g.p.StrengthReduce && rt != kir.F32 && r.op.IsImm && isPow2(r.op.Imm) {
		switch e.Op {
		case kir.OpMul:
			op = ptx.OpShl
			g.rem.Addf(PhaseFrontEnd, "strength-reduced mul by %d into shl", r.op.Imm)
			r.op = ptx.ImmU(log2u(r.op.Imm))
		case kir.OpDiv:
			if rt == kir.U32 {
				op = ptx.OpShr
				g.rem.Addf(PhaseFrontEnd, "strength-reduced div by %d into shr", r.op.Imm)
				r.op = ptx.ImmU(log2u(r.op.Imm))
			}
		case kir.OpRem:
			if rt == kir.U32 {
				op = ptx.OpAnd
				g.rem.Addf(PhaseFrontEnd, "strength-reduced rem by %d into and", r.op.Imm)
				r.op = ptx.ImmU(r.op.Imm - 1)
			}
		}
	}
	return g.binInstr(op, st, l, r, hint, rt)
}

// binInstr emits a two-source instruction with CSE.
func (g *gen) binInstr(op ptx.Opcode, st ptx.ScalarType, l, r value, hint ptx.Reg, rt kir.Type) value {
	key := fmt.Sprintf("%d.%d(%s,%s)", op, st, g.opKey(l.op), g.opKey(r.op))
	if v, ok := g.cseLookup(key); ok && hint == ptx.NoReg {
		g.releaseVal(l)
		g.releaseVal(r)
		v.t = rt
		return v
	}
	d, owned := g.dst(hint)
	in := ptx.NewInstruction(op)
	in.Typ = st
	in.Dst = d
	in.Src[0] = l.op
	in.Src[1] = r.op
	g.emit(in)
	g.releaseVal(l)
	g.releaseVal(r)
	g.cseStore(key, d, rt)
	return value{op: ptx.R(d), owned: owned, t: rt}
}

func (g *gen) lowerCmp(e *kir.Bin, hint ptx.Reg) value {
	l := g.lower(e.L, ptx.NoReg)
	r := g.lower(e.R, ptx.NoReg)
	st := scalarType(e.L.Type())
	if lt := e.L.Type(); lt == kir.U32 || lt == kir.I32 {
		// Integer compares use the left operand's signedness.
		st = scalarType(lt)
	}
	cmp := cmpTable[e.Op]
	key := fmt.Sprintf("setp%d.%d(%s,%s)", cmp, st, g.opKey(l.op), g.opKey(r.op))
	if v, ok := g.cseLookup(key); ok && hint == ptx.NoReg {
		g.releaseVal(l)
		g.releaseVal(r)
		v.t = kir.Bool
		return v
	}
	d, owned := g.dst(hint)
	in := ptx.NewInstruction(ptx.OpSetp)
	in.Typ = st
	in.Cmp = cmp
	in.Dst = d
	in.Src[0] = l.op
	in.Src[1] = r.op
	g.emit(in)
	g.releaseVal(l)
	g.releaseVal(r)
	g.cseStore(key, d, kir.Bool)
	return value{op: ptx.R(d), owned: owned, t: kir.Bool}
}

var unOpTable = map[kir.UnOp]ptx.Opcode{
	kir.OpNeg: ptx.OpNeg, kir.OpAbs: ptx.OpAbs, kir.OpSqrt: ptx.OpSqrt,
	kir.OpRsqrt: ptx.OpRsqrt, kir.OpSin: ptx.OpSin, kir.OpCos: ptx.OpCos,
	kir.OpExp2: ptx.OpEx2, kir.OpLog2: ptx.OpLg2,
}

func (g *gen) lowerUn(e *kir.Un, hint ptx.Reg) value {
	x := g.lower(e.X, ptx.NoReg)
	rt := e.Type()
	var op ptx.Opcode
	st := scalarType(rt)
	if e.Op == kir.OpNot {
		if rt == kir.Bool {
			// !p lowered as xor p, 1.
			return g.binInstr(ptx.OpXor, ptx.Pred, x, value{op: ptx.ImmU(1), t: kir.Bool}, hint, kir.Bool)
		}
		op = ptx.OpNot
	} else {
		op = unOpTable[e.Op]
	}
	key := fmt.Sprintf("un%d.%d(%s)", op, st, g.opKey(x.op))
	if v, ok := g.cseLookup(key); ok && hint == ptx.NoReg {
		g.releaseVal(x)
		v.t = rt
		return v
	}
	d, owned := g.dst(hint)
	in := ptx.NewInstruction(op)
	in.Typ = st
	in.Dst = d
	in.Src[0] = x.op
	g.emit(in)
	g.releaseVal(x)
	g.cseStore(key, d, rt)
	return value{op: ptx.R(d), owned: owned, t: rt}
}

func (g *gen) lowerSel(e *kir.Sel, hint ptx.Reg) value {
	c := g.lower(e.Cond, ptx.NoReg)
	a := g.lower(e.A, ptx.NoReg)
	b := g.lower(e.B, ptx.NoReg)
	if c.op.IsImm || c.op.IsSpec {
		// selp needs a predicate register; materialise immediates.
		c = g.movToReg(c)
	}
	rt := e.A.Type()
	d, owned := g.dst(hint)
	in := ptx.NewInstruction(ptx.OpSelp)
	in.Typ = scalarType(rt)
	in.Dst = d
	in.Src[0] = a.op
	in.Src[1] = b.op
	in.Src[2] = ptx.R(c.op.Reg)
	g.emit(in)
	g.releaseVal(a)
	g.releaseVal(b)
	g.releaseVal(c)
	return value{op: ptx.R(d), owned: owned, t: rt}
}

func (g *gen) movToReg(v value) value {
	d := g.alloc()
	mov := ptx.NewInstruction(ptx.OpMov)
	mov.Typ = ptx.B32
	mov.Dst = d
	mov.Src[0] = v.op
	g.emit(mov)
	g.releaseVal(v)
	return value{op: ptx.R(d), owned: true, t: v.t}
}

func (g *gen) lowerCast(e *kir.Cast, hint ptx.Reg) value {
	x := g.lower(e.X, ptx.NoReg)
	from := scalarType(e.X.Type())
	to := scalarType(e.To)
	if from == to {
		if hint == ptx.NoReg {
			x.t = e.To
			return x
		}
	}
	key := fmt.Sprintf("cvt%d.%d(%s)", to, from, g.opKey(x.op))
	if v, ok := g.cseLookup(key); ok && hint == ptx.NoReg {
		g.releaseVal(x)
		v.t = e.To
		return v
	}
	d, owned := g.dst(hint)
	in := ptx.NewInstruction(ptx.OpCvt)
	in.Typ = to
	in.SrcTyp = from
	in.Dst = d
	in.Src[0] = x.op
	g.emit(in)
	g.releaseVal(x)
	g.cseStore(key, d, e.To)
	return value{op: ptx.R(d), owned: owned, t: e.To}
}

// address lowers buf[idx] into (address operand, byte offset, space).
func (g *gen) address(buf string, idx kir.Expr) (value, int32, ptx.Space) {
	space, err := g.k.SpaceOf(buf)
	if err != nil {
		g.errf("%v", err)
		return value{op: ptx.ImmU(0)}, 0, ptx.SpaceGlobal
	}
	var psp ptx.Space
	switch space {
	case kir.Global:
		psp = ptx.SpaceGlobal
	case kir.Const:
		psp = ptx.SpaceConst
	case kir.Texture:
		psp = ptx.SpaceTex
	case kir.Shared:
		psp = ptx.SpaceShared
	case kir.Local:
		psp = ptx.SpaceLocal
	}

	// Constant index folds entirely into the offset.
	constIdx, idxIsConst := int64(-1), false
	if ci, ok := idx.(*kir.ConstInt); ok {
		constIdx, idxIsConst = ci.V, true
	}

	switch space {
	case kir.Shared, kir.Local:
		var segOff int32
		if space == kir.Shared {
			segOff = g.sharedOff[buf]
		} else {
			segOff = g.localOff[buf]
		}
		if idxIsConst {
			return value{op: ptx.ImmU(0)}, segOff + int32(constIdx*4), psp
		}
		iv := g.lower(idx, ptx.NoReg)
		scaled := g.scaleBy4(iv)
		return scaled, segOff, psp
	default:
		base := g.paramValue(buf)
		if idxIsConst {
			return base, int32(constIdx * 4), psp
		}
		iv := g.lower(idx, ptx.NoReg)
		scaled := g.scaleBy4(iv)
		sum := g.binInstr(ptx.OpAdd, ptx.U32, base, scaled, ptx.NoReg, kir.U32)
		return sum, 0, psp
	}
}

// scaleBy4 multiplies an index by the element width (4 bytes).
func (g *gen) scaleBy4(iv value) value {
	if iv.op.IsImm {
		return value{op: ptx.ImmU(iv.op.Imm * 4), t: kir.U32}
	}
	if g.p.StrengthReduce {
		return g.binInstr(ptx.OpShl, ptx.U32, iv, value{op: ptx.ImmU(2), t: kir.U32}, ptx.NoReg, kir.U32)
	}
	return g.binInstr(ptx.OpMul, ptx.U32, iv, value{op: ptx.ImmU(4), t: kir.U32}, ptx.NoReg, kir.U32)
}

func (g *gen) lowerLoad(e *kir.Load, hint ptx.Reg) value {
	addr, off, space := g.address(e.Buf, e.Index)
	elem, _ := g.k.ElemType(e.Buf)
	// Read-only spaces are safe to CSE; mutable spaces are not.
	cacheable := space == ptx.SpaceConst || space == ptx.SpaceTex || space == ptx.SpaceParam
	key := fmt.Sprintf("ld%d(%s,%d)", space, g.opKey(addr.op), off)
	if cacheable && hint == ptx.NoReg {
		if v, ok := g.cseLookup(key); ok {
			g.releaseVal(addr)
			v.t = elem
			return v
		}
	}
	d, owned := g.dst(hint)
	op := ptx.OpLd
	if space == ptx.SpaceTex {
		op = ptx.OpTex
	}
	in := ptx.NewInstruction(op)
	in.Space = space
	in.Typ = scalarType(elem)
	in.Dst = d
	in.Src[0] = addr.op
	in.Off = off
	g.emit(in)
	g.releaseVal(addr)
	if cacheable {
		g.cseStore(key, d, elem)
	}
	return value{op: ptx.R(d), owned: owned, t: elem}
}
