package compiler

import (
	"fmt"

	"gpucmp/internal/ptx"
)

// Remarks collects the compiler's observation stream: one human-readable
// line per noteworthy decision ("fully unrolled loop i by 8 trips", "CSE
// evicted r12 under register pressure", "spill inserted for unroll copy
// 3"). The front-end gen and every back-end pass write into the same sink,
// and Compile attaches the result to the kernel, so the story of how a
// listing came to look the way it does travels with it.
//
// A nil *Remarks is a valid no-op sink: callers that only want code (the
// fuzz oracle's bisection reruns, Optimize on hand-built kernels) pass nil
// and pay nothing.
type Remarks struct {
	list []ptx.Remark
}

// Addf appends one remark under the given phase ("frontend" or a back-end
// pass name).
func (r *Remarks) Addf(phase, format string, args ...any) {
	if r == nil {
		return
	}
	r.list = append(r.list, ptx.Remark{Phase: phase, Message: fmt.Sprintf(format, args...)})
}

// List returns the collected remarks in emission order.
func (r *Remarks) List() []ptx.Remark {
	if r == nil {
		return nil
	}
	return r.list
}

// PhaseFrontEnd tags remarks emitted during KIR→PTX lowering.
const PhaseFrontEnd = "frontend"
