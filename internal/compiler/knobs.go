package compiler

import "gpucmp/internal/ptx"

// Knob is one named, individually applicable front-end transformation —
// the unit of the paper's Section-V experiments, where each optimisation
// the OpenCL front-end is missing is ported across one at a time and the
// performance gap re-measured after each step.
type Knob struct {
	Name        string
	Description string
	Apply       func(*Personality)
}

// GapKnobs lists the NVOPENCC optimisations absent from the OpenCL
// front-end, in the order the ablation study applies them. Applying all of
// them to OpenCL() yields a personality that generates bit-identical PTX
// to CUDA() (only the toolchain tag differs) — the fully "closed" gap.
func GapKnobs() []Knob {
	cu := CUDA()
	return []Knob{
		{
			Name:        "param-registers",
			Description: "fetch kernel arguments from the param space instead of the constant bank",
			Apply:       func(p *Personality) { p.ParamSpace = ptx.SpaceParam },
		},
		{
			Name:        "wide-cse",
			Description: "widen the CSE register window to NVOPENCC's bound",
			Apply:       func(p *Personality) { p.MaxCSERegs = cu.MaxCSERegs },
		},
		{
			Name:        "no-strength-reduce",
			Description: "keep mul/div/rem instead of strength-reducing into shifts and masks",
			Apply:       func(p *Personality) { p.StrengthReduce = false },
		},
		{
			Name:        "guard-predication",
			Description: "predicate small if-bodies with guard bits instead of setp+selp chains",
			Apply: func(p *Personality) {
				p.SelpPureIf = false
				p.MaxSelpAssigns = 0
				p.GuardSmallIf = true
				p.MaxGuardInstrs = cu.MaxGuardInstrs
			},
		},
		{
			Name:        "aggressive-auto-unroll",
			Description: "fully unroll small constant-trip loops without a pragma, at NVOPENCC's thresholds",
			Apply: func(p *Personality) {
				p.AutoUnrollTrips = cu.AutoUnrollTrips
				p.AutoUnrollMaxNodes = cu.AutoUnrollMaxNodes
			},
		},
		{
			Name:        "pressure-aware-unroll",
			Description: "stop spilling replicated unroll copies through local memory",
			Apply: func(p *Personality) {
				p.SpillOnUnroll = false
				p.SpillsPerCopy = 0
			},
		},
		{
			Name:        "mov-copies",
			Description: "bind named values through explicit register copies (NVOPENCC's allocation style)",
			Apply:       func(p *Personality) { p.MovCopies = true },
		},
	}
}

// FeatureKnobs lists the front-end features that can be individually
// switched off, for miscompile bisection: when a fuzz divergence vanishes
// with exactly one feature disabled, that feature's lowering is the prime
// suspect. Each Apply disables one feature.
func FeatureKnobs() []Knob {
	return []Knob{
		{Name: "cse", Description: "value-numbering CSE", Apply: func(p *Personality) { p.CSE = false }},
		{Name: "strength-reduce", Description: "power-of-two strength reduction", Apply: func(p *Personality) { p.StrengthReduce = false }},
		{Name: "mov-copies", Description: "explicit mov copy binding", Apply: func(p *Personality) { p.MovCopies = false }},
		{Name: "guard-if", Description: "guard-predicated small ifs", Apply: func(p *Personality) { p.GuardSmallIf = false }},
		{Name: "selp-if", Description: "setp+selp if-conversion", Apply: func(p *Personality) { p.SelpPureIf = false }},
		{Name: "auto-unroll", Description: "automatic full unrolling", Apply: func(p *Personality) { p.AutoUnrollTrips = 0 }},
		{Name: "pragma-unroll", Description: "unroll-pragma handling", Apply: func(p *Personality) { p.HonorUnrollPragma = false }},
		{Name: "spill-on-unroll", Description: "register-pressure-naive unroll spills", Apply: func(p *Personality) { p.SpillOnUnroll = false }},
		{Name: "cache-params", Description: "entry-block parameter caching", Apply: func(p *Personality) { p.CacheParams = false }},
	}
}
