package compiler

import (
	"errors"
	"strings"
	"testing"

	"gpucmp/internal/kir"
	"gpucmp/internal/ptx"
)

// loopyKernel exercises every front-end feature at once: parameter caching,
// CSE, if-conversion, a pragma-unrolled loop and a conditional store. It is
// complex enough that all three back-end passes find work.
func loopyKernel(t *testing.T) *kir.Kernel {
	t.Helper()
	b := kir.NewKernel("loopy")
	in := b.GlobalBuffer("in", kir.F32)
	out := b.GlobalBuffer("out", kir.F32)
	n := b.ScalarParam("n", kir.U32)
	gid := b.Declare("gid", b.GlobalIDX())
	acc := b.Declare("acc", kir.F(0))
	b.ForUnroll("i", kir.U(0), kir.U(4), kir.U(1), kir.UnrollFull, func(i kir.Expr) {
		b.Assign(acc, kir.Add(acc, b.Load(in, kir.Add(kir.Mul(gid, kir.U(4)), i))))
	})
	b.If(kir.Lt(gid, n), func() {
		b.Store(out, gid, acc)
	})
	return b.MustBuild()
}

func TestPipelineRecordsPerPassStats(t *testing.T) {
	pk, err := Compile(loopyKernel(t), CUDA())
	if err != nil {
		t.Fatal(err)
	}
	want := DefaultPassNames()
	if len(pk.PassStats) != len(want) {
		t.Fatalf("got %d pass stats, want %d: %+v", len(pk.PassStats), len(want), pk.PassStats)
	}
	for i, st := range pk.PassStats {
		if st.Pass != want[i] {
			t.Errorf("stat %d: pass %q, want %q", i, st.Pass, want[i])
		}
		if st.InstrsBefore < st.InstrsAfter {
			t.Errorf("pass %q grew the kernel: %d -> %d instrs", st.Pass, st.InstrsBefore, st.InstrsAfter)
		}
		if st.InstrsBefore-st.InstrsAfter != st.Removed {
			t.Errorf("pass %q: instruction delta %d does not match Removed %d",
				st.Pass, st.InstrsBefore-st.InstrsAfter, st.Removed)
		}
	}
	// Stats chain: each pass starts where the previous one ended.
	for i := 1; i < len(pk.PassStats); i++ {
		if pk.PassStats[i].InstrsBefore != pk.PassStats[i-1].InstrsAfter {
			t.Errorf("pass %q starts at %d instrs but %q ended at %d",
				pk.PassStats[i].Pass, pk.PassStats[i].InstrsBefore,
				pk.PassStats[i-1].Pass, pk.PassStats[i-1].InstrsAfter)
		}
	}
	// The mov-heavy CUDA personality guarantees copy-prop and DCE find work.
	if pk.PassStats[0].Rewritten == 0 {
		t.Errorf("copy-prop found no work on a mov-heavy kernel:\n%s", pk.Disassemble())
	}
	if pk.PassStats[1].Removed == 0 {
		t.Errorf("dce removed nothing after copy propagation:\n%s", pk.Disassemble())
	}
}

func TestPipelineObserverSeesEveryPass(t *testing.T) {
	var order []string
	var deltas []int
	cfg := Config{
		Personality: CUDA(),
		Observer: func(p Pass, before, after *ptx.Stats) {
			order = append(order, p.Name)
			deltas = append(deltas, int(before.Total-after.Total))
		},
	}
	pk, err := CompileWithConfig(loopyKernel(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(order, ",") != strings.Join(DefaultPassNames(), ",") {
		t.Errorf("observer saw passes %v, want %v", order, DefaultPassNames())
	}
	for i, d := range deltas {
		if d != pk.PassStats[i].InstrsBefore-pk.PassStats[i].InstrsAfter {
			t.Errorf("observer delta %d for %q disagrees with pass stats (%d)",
				d, order[i], pk.PassStats[i].InstrsBefore-pk.PassStats[i].InstrsAfter)
		}
	}
}

// breakerPass deliberately corrupts the kernel so Debug-mode validation has
// something to catch.
func breakerPass() Pass {
	return Pass{
		Name:        "breaker",
		Description: "corrupt a branch target (test only)",
		Run: func(k *ptx.Kernel, rem *Remarks) Counters {
			for i := range k.Instrs {
				if k.Instrs[i].Op == ptx.OpBra {
					k.Instrs[i].Target = len(k.Instrs) + 100
					return Counters{Rewritten: 1}
				}
			}
			return Counters{}
		},
	}
}

func TestPipelineDebugCatchesBrokenPass(t *testing.T) {
	// OpenCL keeps the loop rolled (no pragma, trips above its auto-unroll
	// bound), so a bra instruction survives for the breaker to corrupt.
	b := kir.NewKernel("rolled")
	out := b.GlobalBuffer("out", kir.F32)
	acc := b.Declare("acc", kir.F(0))
	b.For("i", kir.U(0), kir.U(64), kir.U(1), func(i kir.Expr) {
		b.Assign(acc, kir.Add(acc, kir.CastTo(kir.F32, i)))
	})
	b.Store(out, b.GlobalIDX(), acc)
	k := b.MustBuild()

	cfg := Config{
		Personality: OpenCL(),
		Passes:      append(DefaultPasses(), breakerPass()),
		Debug:       true,
	}
	if _, err := CompileWithConfig(k, cfg); err == nil {
		t.Fatal("Debug pipeline accepted a pass that corrupted a branch target")
	} else if !strings.Contains(err.Error(), `pass "breaker"`) {
		t.Errorf("error does not name the offending pass: %v", err)
	}

	// Without Debug the same pipeline is only caught by the final
	// whole-kernel validation — the error must still surface.
	cfg.Debug = false
	if _, err := CompileWithConfig(k, cfg); err == nil {
		t.Fatal("final validation missed a corrupted branch target")
	}
}

func TestPassesByName(t *testing.T) {
	ps, err := PassesByName([]string{PassMadFuse, PassCopyProp})
	if err != nil {
		t.Fatal(err)
	}
	if len(ps) != 2 || ps[0].Name != PassMadFuse || ps[1].Name != PassCopyProp {
		t.Errorf("requested order not preserved: %v", PassNames(ps))
	}
	if _, err := PassesByName([]string{"no-such-pass"}); err == nil {
		t.Error("unknown pass name accepted")
	} else if !strings.Contains(err.Error(), "no-such-pass") {
		t.Errorf("error does not name the unknown pass: %v", err)
	}
}

func TestWithoutPass(t *testing.T) {
	ps := WithoutPass(DefaultPasses(), PassDCE)
	if got := strings.Join(PassNames(ps), ","); got != PassCopyProp+","+PassMadFuse {
		t.Errorf("WithoutPass(dce) = %s", got)
	}
}

func TestReducedPipelineChangesOutput(t *testing.T) {
	k := loopyKernel(t)
	full, err := CompileWithConfig(k, Config{Personality: CUDA()})
	if err != nil {
		t.Fatal(err)
	}
	noDCE, err := CompileWithConfig(k, Config{
		Personality: CUDA(),
		Passes:      WithoutPass(DefaultPasses(), PassDCE),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(noDCE.Instrs) <= len(full.Instrs) {
		t.Errorf("dropping dce should leave dead movs behind: %d vs %d instrs",
			len(noDCE.Instrs), len(full.Instrs))
	}
	if err := noDCE.Validate(); err != nil {
		t.Errorf("reduced-pipeline kernel invalid: %v", err)
	}
}

func TestCompileEmitsRemarks(t *testing.T) {
	pk, err := Compile(loopyKernel(t), CUDA())
	if err != nil {
		t.Fatal(err)
	}
	if len(pk.Remarks) == 0 {
		t.Fatal("no remarks on a kernel with params, an unrolled loop and an if")
	}
	var phases []string
	joined := ""
	for _, r := range pk.Remarks {
		phases = append(phases, r.Phase)
		joined += r.String() + "\n"
	}
	if !strings.Contains(joined, "unrolled loop") {
		t.Errorf("missing unroll remark in:\n%s", joined)
	}
	if !strings.Contains(joined, "parameter") {
		t.Errorf("missing parameter-caching remark in:\n%s", joined)
	}
	hasFE := false
	for _, p := range phases {
		if p == PhaseFrontEnd {
			hasFE = true
		}
	}
	if !hasFE {
		t.Errorf("no front-end-phase remarks: %v", phases)
	}

	// The OpenCL personality's distinctive transformations remark too.
	cl, err := Compile(loopyKernel(t), OpenCL())
	if err != nil {
		t.Fatal(err)
	}
	clJoined := ""
	for _, r := range cl.Remarks {
		clJoined += r.String() + "\n"
	}
	if !strings.Contains(clJoined, "strength-reduc") && !strings.Contains(clJoined, "shl") {
		t.Errorf("OpenCL build missing strength-reduction remark in:\n%s", clJoined)
	}
}

func TestSpillRemarkOnUnroll(t *testing.T) {
	b := kir.NewKernel("spill")
	in := b.GlobalBuffer("in", kir.F32)
	out := b.GlobalBuffer("out", kir.F32)
	n := b.ScalarParam("n", kir.U32)
	acc := b.Declare("acc", kir.F(0))
	b.ForUnroll("i", kir.U(0), n, kir.U(1), 4, func(i kir.Expr) {
		b.Assign(acc, kir.Add(acc, b.Load(in, i)))
	})
	b.Store(out, b.GlobalIDX(), acc)
	k := b.MustBuild()

	cl, err := Compile(k, OpenCL())
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range cl.Remarks {
		if strings.Contains(r.Message, "spill inserted for unroll copy") {
			found = true
		}
	}
	if !found {
		t.Errorf("SpillOnUnroll personality emitted no spill remark: %v", cl.Remarks)
	}
}

func TestNilRemarksSinkIsSafe(t *testing.T) {
	var rem *Remarks
	rem.Addf("x", "must not panic")
	if got := rem.List(); got != nil {
		t.Errorf("nil sink listed remarks: %v", got)
	}
}

func TestOptimizeStillAttachesStats(t *testing.T) {
	k := &ptx.Kernel{Name: "o", Toolchain: "cuda", NumRegs: 2}
	mov := ptx.NewInstruction(ptx.OpMov)
	mov.Typ = ptx.U32
	mov.Dst = 1
	mov.Src[0] = ptx.ImmU(7)
	st := ptx.NewInstruction(ptx.OpSt)
	st.Space = ptx.SpaceGlobal
	st.Typ = ptx.U32
	st.Src[0] = ptx.R(1)
	st.Src[1] = ptx.R(1)
	ret := ptx.NewInstruction(ptx.OpRet)
	k.Instrs = []ptx.Instruction{mov, st, ret}
	Optimize(k)
	if len(k.PassStats) != len(DefaultPasses()) {
		t.Errorf("Optimize attached %d pass stats, want %d", len(k.PassStats), len(DefaultPasses()))
	}
}

func TestPipelineErrorIsWrapped(t *testing.T) {
	k := &ptx.Kernel{Name: "w", Toolchain: "cuda", NumRegs: 1}
	bra := ptx.NewInstruction(ptx.OpBra)
	bra.Target = 0
	bra.Join = 1
	ret := ptx.NewInstruction(ptx.OpRet)
	k.Instrs = []ptx.Instruction{bra, ret}
	base := k.Validate()
	if base != nil {
		t.Skipf("fixture unexpectedly invalid: %v", base)
	}
	pl := Pipeline{Passes: []Pass{breakerPass()}, Debug: true}
	_, err := pl.Run(k, nil)
	if err == nil {
		t.Fatal("breaker pass not caught")
	}
	var vErr error = err
	if errors.Unwrap(vErr) == nil {
		t.Errorf("pipeline error does not wrap the validation error: %v", err)
	}
}
