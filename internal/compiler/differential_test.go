package compiler

// Differential testing of the whole compile-and-execute stack: random
// barrier-free kernels are generated in the kernel IR, evaluated directly
// on the host (the reference), then compiled with BOTH front-end
// personalities and executed on the SIMT simulator. All three must agree
// bit-for-bit on integer outputs. This exercises CSE, strength reduction,
// guard/selp if-conversion, loop unrolling, copy propagation, DCE, mad
// fusion, divergence handling, and the memory paths in combination.

import (
	"fmt"
	"testing"

	"gpucmp/internal/arch"
	"gpucmp/internal/kir"
	"gpucmp/internal/sim"
	"gpucmp/internal/workload"
)

const (
	fuzzThreads = 128
	fuzzBufLen  = 256
)

// exprGen builds random u32 expression trees.
type exprGen struct {
	r     *workload.RNG
	vars  []string // in-scope scalar variables
	depth int
}

func (g *exprGen) expr(depth int) kir.Expr {
	if depth <= 0 {
		return g.leaf()
	}
	switch g.r.Intn(10) {
	case 0, 1, 2:
		return g.leaf()
	case 3:
		ops := []kir.BinOp{kir.OpAdd, kir.OpSub, kir.OpMul, kir.OpAnd, kir.OpOr, kir.OpXor,
			kir.OpMin, kir.OpMax}
		return &kir.Bin{Op: ops[g.r.Intn(len(ops))], L: g.expr(depth - 1), R: g.expr(depth - 1)}
	case 4:
		// Shifts with bounded amounts.
		op := kir.OpShl
		if g.r.Intn(2) == 0 {
			op = kir.OpShr
		}
		return &kir.Bin{Op: op, L: g.expr(depth - 1), R: kir.U(uint32(g.r.Intn(31)))}
	case 5:
		// Division/remainder with a non-zero denominator.
		op := kir.OpDiv
		if g.r.Intn(2) == 0 {
			op = kir.OpRem
		}
		den := &kir.Bin{Op: kir.OpOr, L: g.expr(depth - 1), R: kir.U(1)}
		return &kir.Bin{Op: op, L: g.expr(depth - 1), R: den}
	case 6:
		// Powers of two feed the strength reducer.
		pow := uint32(1) << uint(1+g.r.Intn(5))
		ops := []kir.BinOp{kir.OpMul, kir.OpDiv, kir.OpRem}
		return &kir.Bin{Op: ops[g.r.Intn(3)], L: g.expr(depth - 1), R: kir.U(pow)}
	case 7:
		return kir.Select(g.cond(depth-1), g.expr(depth-1), g.expr(depth-1))
	case 8:
		return kir.Not(g.expr(depth - 1))
	default:
		// A load from the input buffer at a wrapped index.
		idx := &kir.Bin{Op: kir.OpRem, L: g.expr(depth - 1), R: kir.U(fuzzBufLen)}
		return &kir.Load{Buf: "in", Index: idx, T: kir.U32}
	}
}

func (g *exprGen) cond(depth int) kir.Expr {
	ops := []kir.BinOp{kir.OpEq, kir.OpNe, kir.OpLt, kir.OpLe, kir.OpGt, kir.OpGe}
	c := &kir.Bin{Op: ops[g.r.Intn(len(ops))], L: g.expr(depth), R: g.expr(depth)}
	switch g.r.Intn(4) {
	case 0:
		return kir.LAnd(c, &kir.Bin{Op: ops[g.r.Intn(len(ops))], L: g.expr(depth), R: g.expr(depth)})
	case 1:
		return kir.LOr(c, &kir.Bin{Op: ops[g.r.Intn(len(ops))], L: g.expr(depth), R: g.expr(depth)})
	}
	return c
}

func (g *exprGen) leaf() kir.Expr {
	switch g.r.Intn(4) {
	case 0:
		return kir.U(g.r.Uint32() % 1000)
	case 1:
		return &kir.ParamRef{Name: "s", T: kir.U32}
	case 2:
		if len(g.vars) > 0 {
			name := g.vars[g.r.Intn(len(g.vars))]
			return &kir.VarRef{Name: name, T: kir.U32}
		}
		fallthrough
	default:
		return &kir.VarRef{Name: "gid", T: kir.U32}
	}
}

// genKernel builds a random kernel: declarations, assignments, nested ifs,
// and bounded loops, ending in a store of an accumulator.
func genKernel(seed uint64) *kir.Kernel {
	r := workload.NewRNG(seed)
	g := &exprGen{r: r}
	b := kir.NewKernel(fmt.Sprintf("fuzz%d", seed))
	b.GlobalBuffer("in", kir.U32)
	out := b.GlobalBuffer("out", kir.U32)
	b.ScalarParam("s", kir.U32)
	gid := b.Declare("gid", b.GlobalIDX())
	_ = gid
	g.vars = nil

	nstmt := 2 + r.Intn(4)
	for i := 0; i < nstmt; i++ {
		g.genStmt(b, i, 2)
	}

	// Final store accumulates every declared variable so nothing is dead.
	var sum kir.Expr = &kir.VarRef{Name: "gid", T: kir.U32}
	for _, v := range g.vars {
		sum = &kir.Bin{Op: kir.OpAdd, L: sum, R: &kir.VarRef{Name: v, T: kir.U32}}
	}
	b.Store(out, &kir.VarRef{Name: "gid", T: kir.U32}, sum)
	return b.MustBuild()
}

func (g *exprGen) genStmt(b *kir.Builder, id, depth int) {
	switch g.r.Intn(4) {
	case 0:
		name := fmt.Sprintf("v%d_%d", id, len(g.vars))
		b.Declare(name, g.expr(2))
		g.vars = append(g.vars, name)
	case 1:
		if len(g.vars) == 0 {
			g.genStmt(b, id, depth)
			return
		}
		name := g.vars[g.r.Intn(len(g.vars))]
		b.Assign(&kir.VarRef{Name: name, T: kir.U32}, g.expr(2))
	case 2:
		if depth <= 0 || len(g.vars) == 0 {
			g.genStmt(b, id, depth)
			return
		}
		cond := g.cond(1)
		b.IfElse(cond, func() {
			name := g.vars[g.r.Intn(len(g.vars))]
			b.Assign(&kir.VarRef{Name: name, T: kir.U32}, g.expr(1))
		}, func() {
			name := g.vars[g.r.Intn(len(g.vars))]
			b.Assign(&kir.VarRef{Name: name, T: kir.U32}, g.expr(1))
		})
	default:
		if depth <= 0 || len(g.vars) == 0 {
			g.genStmt(b, id, depth)
			return
		}
		// Data-dependent trip count, bounded to keep runs fast.
		name := g.vars[g.r.Intn(len(g.vars))]
		trips := &kir.Bin{Op: kir.OpRem, L: g.expr(1), R: kir.U(uint32(2 + g.r.Intn(6)))}
		loopVar := fmt.Sprintf("i%d_%d", id, len(g.vars))
		unroll := 0
		if g.r.Intn(3) == 0 {
			unroll = []int{kir.UnrollFull, 2, 3}[g.r.Intn(3)]
		}
		b.ForUnroll(loopVar, kir.U(0), trips, kir.U(1), unroll, func(i kir.Expr) {
			b.Assign(&kir.VarRef{Name: name, T: kir.U32},
				&kir.Bin{Op: kir.OpAdd,
					L: &kir.Bin{Op: kir.OpMul, L: &kir.VarRef{Name: name, T: kir.U32}, R: kir.U(3)},
					R: &kir.Bin{Op: kir.OpXor, L: i, R: g.expr(1)}})
		})
	}
}

// hostEval interprets the KIR directly, one thread at a time.
type hostEval struct {
	in   []uint32
	out  []uint32
	s    uint32
	gid  uint32
	vars map[string]uint32
}

func (h *hostEval) stmts(stmts []kir.Stmt) {
	for _, s := range stmts {
		switch s := s.(type) {
		case *kir.DeclStmt:
			h.vars[s.Name] = h.expr(s.Init)
		case *kir.AssignStmt:
			h.vars[s.Name] = h.expr(s.Value)
		case *kir.StoreStmt:
			h.out[h.expr(s.Index)%uint32(len(h.out))] = h.expr(s.Value)
		case *kir.IfStmt:
			if h.expr(s.Cond) != 0 {
				h.stmts(s.Then)
			} else {
				h.stmts(s.Else)
			}
		case *kir.ForStmt:
			// KIR For re-evaluates Limit and Step every iteration (the
			// body may mutate variables they read), matching the rolled
			// loop the compilers emit.
			h.vars[s.Var] = h.expr(s.Init)
			for h.vars[s.Var] < h.expr(s.Limit) {
				h.stmts(s.Body)
				h.vars[s.Var] += h.expr(s.Step)
			}
			delete(h.vars, s.Var)
		default:
			panic(fmt.Sprintf("hostEval: unsupported statement %T", s))
		}
	}
}

func (h *hostEval) expr(e kir.Expr) uint32 {
	switch e := e.(type) {
	case *kir.ConstInt:
		return uint32(e.V)
	case *kir.ParamRef:
		return h.s
	case *kir.VarRef:
		if e.Name == "gid" {
			if v, ok := h.vars["gid"]; ok {
				return v
			}
			return h.gid
		}
		return h.vars[e.Name]
	case *kir.Builtin:
		switch e.Kind {
		case kir.TidX:
			return h.gid % fuzzThreads
		case kir.NtidX:
			return fuzzThreads
		case kir.CtaidX:
			return h.gid / fuzzThreads
		case kir.NctaidX:
			return 1
		default:
			return 0
		}
	case *kir.Load:
		return h.in[h.expr(e.Index)%uint32(len(h.in))]
	case *kir.Sel:
		if h.expr(e.Cond) != 0 {
			return h.expr(e.A)
		}
		return h.expr(e.B)
	case *kir.Un:
		x := h.expr(e.X)
		switch e.Op {
		case kir.OpNot:
			if e.X.Type() == kir.Bool {
				return x ^ 1
			}
			return ^x
		case kir.OpNeg:
			return -x
		default:
			panic("hostEval: unsupported unary op")
		}
	case *kir.Bin:
		a, b := h.expr(e.L), h.expr(e.R)
		switch e.Op {
		case kir.OpAdd:
			return a + b
		case kir.OpSub:
			return a - b
		case kir.OpMul:
			return a * b
		case kir.OpDiv:
			if b == 0 {
				return ^uint32(0)
			}
			return a / b
		case kir.OpRem:
			if b == 0 {
				return a
			}
			return a % b
		case kir.OpAnd:
			return a & b
		case kir.OpOr:
			return a | b
		case kir.OpXor:
			return a ^ b
		case kir.OpShl:
			return a << (b & 31)
		case kir.OpShr:
			return a >> (b & 31)
		case kir.OpMin:
			if a < b {
				return a
			}
			return b
		case kir.OpMax:
			if a > b {
				return a
			}
			return b
		case kir.OpEq:
			return boolU32(a == b)
		case kir.OpNe:
			return boolU32(a != b)
		case kir.OpLt:
			return boolU32(a < b)
		case kir.OpLe:
			return boolU32(a <= b)
		case kir.OpGt:
			return boolU32(a > b)
		case kir.OpGe:
			return boolU32(a >= b)
		case kir.OpLAnd:
			return boolU32(a != 0 && b != 0)
		case kir.OpLOr:
			return boolU32(a != 0 || b != 0)
		default:
			panic("hostEval: unsupported binary op")
		}
	default:
		panic(fmt.Sprintf("hostEval: unsupported expression %T", e))
	}
}

func boolU32(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}

func runReference(k *kir.Kernel, in []uint32, s uint32) []uint32 {
	out := make([]uint32, fuzzThreads)
	for gid := 0; gid < fuzzThreads; gid++ {
		h := &hostEval{in: in, out: out, s: s, gid: uint32(gid), vars: map[string]uint32{}}
		h.stmts(k.Body)
	}
	return out
}

func runCompiled(t *testing.T, k *kir.Kernel, p Personality, in []uint32, s uint32) []uint32 {
	t.Helper()
	pk, err := Compile(k, p)
	if err != nil {
		t.Fatalf("compile %s/%s: %v", k.Name, p.Name, err)
	}
	dev, err := sim.NewDevice(arch.GTX480())
	if err != nil {
		t.Fatal(err)
	}
	inAddr, _ := dev.Global.Alloc(uint32(4 * len(in)))
	outAddr, _ := dev.Global.Alloc(4 * fuzzThreads)
	if err := dev.Global.WriteWords(inAddr, in); err != nil {
		t.Fatal(err)
	}
	if _, err := dev.Launch(pk, sim.Dim3{X: 1, Y: 1}, sim.Dim3{X: fuzzThreads, Y: 1},
		[]uint32{inAddr, outAddr, s}); err != nil {
		t.Fatalf("launch %s/%s: %v\n%s", k.Name, p.Name, err, pk.Disassemble())
	}
	out := make([]uint32, fuzzThreads)
	if err := dev.Global.ReadWords(outAddr, out); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestDifferentialRandomKernels is the main differential sweep.
func TestDifferentialRandomKernels(t *testing.T) {
	seeds := 60
	if testing.Short() {
		seeds = 10
	}
	data := workload.NewRNG(999)
	for seed := uint64(1); seed <= uint64(seeds); seed++ {
		k := genKernel(seed)
		in := make([]uint32, fuzzBufLen)
		for i := range in {
			in[i] = data.Uint32() % 10000
		}
		s := data.Uint32() % 1000

		want := runReference(k, in, s)
		for _, p := range []Personality{CUDA(), OpenCL()} {
			got := runCompiled(t, k, p, in, s)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("seed %d, %s: out[%d] = %d, reference %d", seed, p.Name, i, got[i], want[i])
				}
			}
		}
	}
}
