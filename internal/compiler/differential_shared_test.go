package compiler

// Cross-personality differential testing with shared memory and barriers:
// the host reference cannot easily model barrier interleavings, so these
// kernels are executed under BOTH personalities on the simulator and the
// two compilations must agree with each other bit-for-bit. Kernels follow
// a produce-barrier-consume shape so they are deterministic by
// construction.

import (
	"fmt"
	"testing"

	"gpucmp/internal/arch"
	"gpucmp/internal/kir"
	"gpucmp/internal/sim"
	"gpucmp/internal/workload"
)

// genSharedKernel builds a random deterministic shared-memory kernel:
// every thread publishes a value derived from its input, all threads
// barrier, then each thread combines a random-but-fixed selection of other
// threads' slots.
func genSharedKernel(seed uint64) *kir.Kernel {
	r := workload.NewRNG(seed)
	g := &exprGen{r: r}
	b := kir.NewKernel(fmt.Sprintf("shfuzz%d", seed))
	b.GlobalBuffer("in", kir.U32)
	out := b.GlobalBuffer("out", kir.U32)
	b.ScalarParam("s", kir.U32)
	sh := b.SharedArray("sh", kir.U32, fuzzThreads)
	tid := kir.Bi(kir.TidX)

	b.Declare("gid", b.GlobalIDX())
	g.vars = nil

	// Publish phase.
	b.Store(sh, tid, g.expr(2))
	b.Barrier()

	// Consume phase: combine 2-4 pseudo-random neighbour slots.
	b.Declare("acc", &kir.Load{Buf: "sh", Index: tid, T: kir.U32})
	g.vars = append(g.vars, "acc")
	reads := 2 + r.Intn(3)
	for i := 0; i < reads; i++ {
		stride := uint32(1 + r.Intn(fuzzThreads-1))
		idx := &kir.Bin{Op: kir.OpRem,
			L: &kir.Bin{Op: kir.OpAdd, L: tid, R: kir.U(stride)},
			R: kir.U(fuzzThreads)}
		b.Assign(&kir.VarRef{Name: "acc", T: kir.U32},
			&kir.Bin{Op: kir.OpXor,
				L: &kir.Bin{Op: kir.OpMul, L: &kir.VarRef{Name: "acc", T: kir.U32}, R: kir.U(33)},
				R: &kir.Load{Buf: "sh", Index: idx, T: kir.U32}})
		if r.Intn(2) == 0 {
			// A second round: republish and re-read, with a barrier on
			// both sides so every warp sees the update.
			b.Barrier()
			b.Store(sh, tid, &kir.VarRef{Name: "acc", T: kir.U32})
			b.Barrier()
		}
	}
	b.Store(out, &kir.VarRef{Name: "gid", T: kir.U32}, &kir.VarRef{Name: "acc", T: kir.U32})
	return b.MustBuild()
}

func TestDifferentialSharedMemoryKernels(t *testing.T) {
	seeds := 40
	if testing.Short() {
		seeds = 8
	}
	data := workload.NewRNG(4242)
	for seed := uint64(1); seed <= uint64(seeds); seed++ {
		k := genSharedKernel(seed)
		in := make([]uint32, fuzzBufLen)
		for i := range in {
			in[i] = data.Uint32()
		}
		s := data.Uint32() % 5000

		var outs [2][]uint32
		for pi, p := range []Personality{CUDA(), OpenCL()} {
			outs[pi] = runCompiled(t, k, p, in, s)
		}
		for i := range outs[0] {
			if outs[0][i] != outs[1][i] {
				t.Fatalf("seed %d: out[%d]: cuda %d != opencl %d", seed, i, outs[0][i], outs[1][i])
			}
		}
		// Determinism across devices with different warp widths: the
		// barriers make the kernel schedule-independent, so a 64-wide
		// wavefront machine must agree too.
		pk, err := Compile(k, OpenCL())
		if err != nil {
			t.Fatal(err)
		}
		dev, err := sim.NewDevice(arch.HD5870())
		if err != nil {
			t.Fatal(err)
		}
		inAddr, _ := dev.Global.Alloc(uint32(4 * len(in)))
		outAddr, _ := dev.Global.Alloc(4 * fuzzThreads)
		if err := dev.Global.WriteWords(inAddr, in); err != nil {
			t.Fatal(err)
		}
		if _, err := dev.Launch(pk, sim.Dim3{X: 1, Y: 1}, sim.Dim3{X: fuzzThreads, Y: 1},
			[]uint32{inAddr, outAddr, s}); err != nil {
			t.Fatal(err)
		}
		wide := make([]uint32, fuzzThreads)
		if err := dev.Global.ReadWords(outAddr, wide); err != nil {
			t.Fatal(err)
		}
		for i := range wide {
			if wide[i] != outs[0][i] {
				t.Fatalf("seed %d: 64-wide device diverges at %d: %d != %d", seed, i, wide[i], outs[0][i])
			}
		}
	}
}
