package compiler_test

// Native Go fuzz target over the lowering pipeline. The fuzzing engine
// mutates a generator seed (not raw AST bytes): every input deterministically
// expands to a well-typed KIR program via internal/fuzz, so the target
// spends its budget on semantic coverage instead of parser rejection. The
// external test package breaks the import cycle (internal/fuzz imports
// this package).
//
// Run with: go test -fuzz FuzzLowerKernel ./internal/compiler

import (
	"testing"

	"gpucmp/internal/arch"
	"gpucmp/internal/compiler"
	"gpucmp/internal/fuzz"
)

func FuzzLowerKernel(f *testing.F) {
	for seed := uint64(1); seed <= 32; seed++ {
		f.Add(seed)
	}
	f.Add(uint64(0))
	f.Add(^uint64(0))
	f.Add(uint64(0xdeadbeefcafe))

	cfg := fuzz.DefaultConfig()
	// Both warp widths: divergence handling differs between 32 and 64.
	devices := []*arch.Device{arch.GTX480(), arch.HD5870()}

	f.Fuzz(func(t *testing.T, seed uint64) {
		p := fuzz.Generate(seed, cfg) // panics on any invalid generation

		// Lowering with either personality must succeed: the generator
		// only emits programs inside the supported language.
		for _, pers := range fuzz.Toolchains() {
			if _, err := compiler.Compile(p.Kernel, pers); err != nil {
				t.Fatalf("seed %d: compile %s: %v", seed, pers.Name, err)
			}
		}

		// And the personalities must agree with the interpreter and with
		// each other on every output word.
		res, err := fuzz.Check(p, devices)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.Divergence != nil {
			t.Fatalf("%s", res.Divergence.Error())
		}
	})
}
