package bench

import (
	"gpucmp/internal/kir"
	"gpucmp/internal/sim"
	"gpucmp/internal/workload"
)

// Stencil weights (SHOC Stencil2D shape: centre, edge, diagonal).
const (
	st2dWc = float32(0.25)
	st2dWa = float32(0.15)
	st2dWd = float32(0.05)
)

// St2DKernel builds one step of the nine-point 2-D stencil.
func St2DKernel() *kir.Kernel {
	b := kir.NewKernel("stencil9")
	in := b.GlobalBuffer("in", kir.F32)
	out := b.GlobalBuffer("out", kir.F32)
	w := b.ScalarParam("w", kir.U32)
	h := b.ScalarParam("h", kir.U32)

	x := b.Declare("x", b.GlobalIDX())
	y := b.Declare("y", b.GlobalIDY())
	inside := kir.LAnd(
		kir.LAnd(kir.Ge(x, kir.U(1)), kir.Lt(x, kir.Sub(w, kir.U(1)))),
		kir.LAnd(kir.Ge(y, kir.U(1)), kir.Lt(y, kir.Sub(h, kir.U(1)))))
	b.If(inside, func() {
		at := func(dy, dx int32) kir.Expr {
			row := kir.Add(y, kir.CastTo(kir.U32, kir.I(dy)))
			col := kir.Add(x, kir.CastTo(kir.U32, kir.I(dx)))
			return b.Load(in, kir.Add(kir.Mul(row, w), col))
		}
		centre := b.Declare("centre", kir.Mul(kir.F(st2dWc), at(0, 0)))
		adj := b.Declare("adj", kir.Mul(kir.F(st2dWa),
			kir.Add(kir.Add(at(-1, 0), at(1, 0)), kir.Add(at(0, -1), at(0, 1)))))
		diag := b.Declare("diag", kir.Mul(kir.F(st2dWd),
			kir.Add(kir.Add(at(-1, -1), at(-1, 1)), kir.Add(at(1, -1), at(1, 1)))))
		b.Store(out, kir.Add(kir.Mul(y, w), x), kir.Add(kir.Add(centre, adj), diag))
	})
	return b.MustBuild()
}

// st2dRef applies one reference step.
func st2dRef(in []float32, w, h int) []float32 {
	out := make([]float32, len(in))
	copy(out, in) // borders pass through untouched in the device version too
	for y := 1; y < h-1; y++ {
		for x := 1; x < w-1; x++ {
			c := st2dWc * in[y*w+x]
			a := st2dWa * (in[(y-1)*w+x] + in[(y+1)*w+x] + in[y*w+x-1] + in[y*w+x+1])
			dg := st2dWd * (in[(y-1)*w+x-1] + in[(y-1)*w+x+1] + in[(y+1)*w+x-1] + in[(y+1)*w+x+1])
			out[y*w+x] = c + a + dg
		}
	}
	return out
}

// RunSt2D measures the two-dimensional nine-point stencil (Table II
// metric: seconds) over several ping-pong iterations.
func RunSt2D(d Driver, cfg Config) (*Result, error) {
	if cfg.Pattern != "" {
		return runPatternSt2D(d, cfg)
	}
	const metric = "sec"
	const steps = 4
	w := cfg.scale(512)
	h := cfg.scale(512)
	if w < 32 {
		w, h = 32, 32
	}
	img := workload.GrayImage(w, h, 37)

	k := St2DKernel()
	mod, err := d.Build(k)
	if err != nil {
		return abort(d, "St2D", metric, err), nil
	}
	bufA, err := allocWriteF(d, img)
	if err != nil {
		return abort(d, "St2D", metric, err), nil
	}
	bufB, err := allocWriteF(d, img) // borders must match in both buffers
	if err != nil {
		return abort(d, "St2D", metric, err), nil
	}

	d.ResetTimer()
	block := sim.Dim3{X: 16, Y: 16}
	grid := sim.Dim3{X: (w + 15) / 16, Y: (h + 15) / 16}
	src, dst := bufA, bufB
	for s := 0; s < steps; s++ {
		if err := d.Launch(mod, "stencil9", grid, block,
			B(src), B(dst), V(uint32(w)), V(uint32(h))); err != nil {
			return abort(d, "St2D", metric, err), nil
		}
		src, dst = dst, src
	}
	kernelSecs := d.KernelTime()

	got, err := readF32(d, src, w*h)
	if err != nil {
		return abort(d, "St2D", metric, err), nil
	}
	want := img
	for s := 0; s < steps; s++ {
		want = st2dRef(want, w, h)
	}
	correct := true
	for i := range want {
		if !f32eq(got[i], want[i], 1e-3) {
			correct = false
			break
		}
	}
	res := result(d, "St2D", metric, kernelSecs, correct)
	return res, nil
}
