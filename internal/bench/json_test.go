package bench

import (
	"encoding/json"
	"errors"
	"strings"
	"testing"
)

// TestResultJSONRoundTrip checks every Table VI state survives the wire
// format: OK, FL (wrong output) and ABT (aborted with an error).
func TestResultJSONRoundTrip(t *testing.T) {
	cases := []struct {
		name string
		in   Result
	}{
		{"ok", Result{
			Benchmark: "FFT", Toolchain: "cuda", Device: "GeForce GTX480",
			Metric: "GFlops/sec", Value: 412.5,
			KernelSeconds: 0.0021, EndToEndSeconds: 0.0042, TransferSeconds: 0.0009,
			Transfer: &TransferParams{PCIeGBps: 5.6, LatencySeconds: 8e-6},
			Correct:  true,
		}},
		{"fl", Result{
			Benchmark: "RdxS", Toolchain: "opencl", Device: "Radeon HD5870",
			Metric: "MElements/sec", Value: 93.1, Correct: false,
		}},
		{"abt", Result{
			Benchmark: "FFT", Toolchain: "opencl", Device: "Cell Broadband Engine",
			Metric: "GFlops/sec", Err: errors.New("CL_OUT_OF_RESOURCES"),
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			data, err := json.Marshal(&tc.in)
			if err != nil {
				t.Fatal(err)
			}
			var out Result
			if err := json.Unmarshal(data, &out); err != nil {
				t.Fatal(err)
			}
			if out.Benchmark != tc.in.Benchmark || out.Toolchain != tc.in.Toolchain ||
				out.Device != tc.in.Device || out.Metric != tc.in.Metric ||
				out.Value != tc.in.Value || out.KernelSeconds != tc.in.KernelSeconds ||
				out.EndToEndSeconds != tc.in.EndToEndSeconds || out.Correct != tc.in.Correct ||
				out.TransferSeconds != tc.in.TransferSeconds {
				t.Errorf("round trip changed fields:\n in: %+v\nout: %+v", tc.in, out)
			}
			if (out.Transfer == nil) != (tc.in.Transfer == nil) {
				t.Errorf("transfer params presence changed: %v -> %v", tc.in.Transfer, out.Transfer)
			}
			if tc.in.Transfer != nil && *out.Transfer != *tc.in.Transfer {
				t.Errorf("transfer params changed: %+v -> %+v", *tc.in.Transfer, *out.Transfer)
			}
			if out.Status() != tc.in.Status() {
				t.Errorf("status changed: %s -> %s", tc.in.Status(), out.Status())
			}
			if (out.Err == nil) != (tc.in.Err == nil) {
				t.Errorf("error presence changed: %v -> %v", tc.in.Err, out.Err)
			}
			if tc.in.Err != nil && out.Err.Error() != tc.in.Err.Error() {
				t.Errorf("error text changed: %q -> %q", tc.in.Err, out.Err)
			}
			// The wire form carries the derived status for scripting
			// consumers and never the trace dump.
			if !strings.Contains(string(data), `"status"`) {
				t.Errorf("wire form lacks status: %s", data)
			}
			if strings.Contains(string(data), "Traces") || strings.Contains(string(data), "traces") {
				t.Errorf("wire form leaks traces: %s", data)
			}
		})
	}
}

// TestConfigJSONRoundTrip checks the /run request body format: snake_case
// keys, zero values omitted, every field preserved.
func TestConfigJSONRoundTrip(t *testing.T) {
	in := Config{Scale: 4, UseTexture: true, UseConstant: true, UnrollA: true, UnrollB: true, VectorSPMV: true, NaiveTranspose: true}
	data, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"scale", "use_texture", "use_constant", "unroll_a", "unroll_b", "vector_spmv", "naive_transpose"} {
		if !strings.Contains(string(data), `"`+key+`"`) {
			t.Errorf("config wire form missing %q: %s", key, data)
		}
	}
	var out Config
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Errorf("round trip changed config: %+v -> %+v", in, out)
	}
	// The zero config marshals to an empty object: native defaults stay
	// implicit in job keys and request bodies.
	if data, _ := json.Marshal(Config{}); string(data) != "{}" {
		t.Errorf("zero config = %s, want {}", data)
	}
}
