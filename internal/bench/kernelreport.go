package bench

import (
	"gpucmp/internal/ptx"
)

// KernelReport is the per-kernel compiler story attached to a Result: the
// resource footprint plus the pass-pipeline statistics and the remark
// stream. It is the observable half of the paper's Table V — what each
// front-end emitted and what the shared back-end did about it — reported
// alongside the performance number it explains.
type KernelReport struct {
	Name      string `json:"name"`
	Toolchain string `json:"toolchain"`

	Instrs      int `json:"instrs"` // post-back-end instruction count
	NumRegs     int `json:"num_regs"`
	SharedBytes int `json:"shared_bytes,omitempty"`
	LocalBytes  int `json:"local_bytes,omitempty"`
	ConstBytes  int `json:"const_bytes,omitempty"`

	PassStats []ptx.PassStat `json:"pass_stats,omitempty"`
	Remarks   []ptx.Remark   `json:"remarks,omitempty"`
}

// ReportKernel summarises one compiled kernel.
func ReportKernel(pk *ptx.Kernel) KernelReport {
	return KernelReport{
		Name:        pk.Name,
		Toolchain:   pk.Toolchain,
		Instrs:      len(pk.Instrs),
		NumRegs:     pk.NumRegs,
		SharedBytes: pk.SharedBytes,
		LocalBytes:  pk.LocalBytes,
		ConstBytes:  pk.ConstBytes,
		PassStats:   pk.PassStats,
		Remarks:     pk.Remarks,
	}
}

// KernelReports returns the compiler reports for every kernel a driver
// built, in build order. Like Breakdowns it reaches under the Driver
// interface, so custom test drivers simply yield no reports.
func KernelReports(d Driver) []KernelReport {
	var built []*ptx.Kernel
	switch dd := d.(type) {
	case *CUDADriver:
		built = dd.built
	case *OpenCLDriver:
		built = dd.built
	default:
		return nil
	}
	out := make([]KernelReport, len(built))
	for i, pk := range built {
		out[i] = ReportKernel(pk)
	}
	return out
}
