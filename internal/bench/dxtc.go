package bench

import (
	"gpucmp/internal/kir"
	"gpucmp/internal/sim"
	"gpucmp/internal/workload"
)

// DXTCKernel builds a range-fit DXT1-style compressor: one work-item per
// 4x4 texel block. It stages the block's channels in per-thread local
// arrays (a deliberately register/local-heavy kernel — DXTC is the Table VI
// benchmark that exhausts the Cell/BE local store), finds the colour-space
// bounding box, and quantises every texel to a 2-bit index on the box
// diagonal. The output is two words per block: packed endpoints and packed
// indices.
func DXTCKernel() *kir.Kernel {
	b := kir.NewKernel("dxtc")
	img := b.GlobalBuffer("img", kir.U32)
	out := b.GlobalBuffer("out", kir.U32)
	w := b.ScalarParam("w", kir.U32)
	nblocks := b.ScalarParam("nblocks", kir.U32)
	lr := b.LocalArray("lr", kir.U32, 16)
	lg := b.LocalArray("lg", kir.U32, 16)
	lb := b.LocalArray("lb", kir.U32, 16)

	bid := b.Declare("bid", b.GlobalIDX())
	b.If(kir.Lt(bid, nblocks), func() {
		wblocks := b.Declare("wblocks", kir.Div(w, kir.U(4)))
		bx := b.Declare("bx", kir.Rem(bid, wblocks))
		by := b.Declare("by", kir.Div(bid, wblocks))
		origin := b.Declare("origin", kir.Add(kir.Mul(kir.Mul(by, kir.U(4)), w), kir.Mul(bx, kir.U(4))))

		minR := b.Declare("minR", kir.U(255))
		minG := b.Declare("minG", kir.U(255))
		minB := b.Declare("minB", kir.U(255))
		maxR := b.Declare("maxR", kir.U(0))
		maxG := b.Declare("maxG", kir.U(0))
		maxB := b.Declare("maxB", kir.U(0))

		b.For("t", kir.U(0), kir.U(16), kir.U(1), func(t kir.Expr) {
			px := b.Declare("px", b.Load(img, kir.Add(origin,
				kir.Add(kir.Mul(kir.Div(t, kir.U(4)), w), kir.Rem(t, kir.U(4))))))
			r := b.Declare("r", kir.And(px, kir.U(0xff)))
			g := b.Declare("g", kir.And(kir.Shr(px, kir.U(8)), kir.U(0xff)))
			bl := b.Declare("bl", kir.And(kir.Shr(px, kir.U(16)), kir.U(0xff)))
			b.Store(lr, t, r)
			b.Store(lg, t, g)
			b.Store(lb, t, bl)
			b.Assign(minR, kir.Min(minR, r))
			b.Assign(minG, kir.Min(minG, g))
			b.Assign(minB, kir.Min(minB, bl))
			b.Assign(maxR, kir.Max(maxR, r))
			b.Assign(maxG, kir.Max(maxG, g))
			b.Assign(maxB, kir.Max(maxB, bl))
		})

		dr := b.Declare("dr", kir.Sub(maxR, minR))
		dg := b.Declare("dg", kir.Sub(maxG, minG))
		db := b.Declare("db", kir.Sub(maxB, minB))
		len2 := b.Declare("len2", kir.Add(kir.Add(kir.Mul(dr, dr), kir.Mul(dg, dg)), kir.Mul(db, db)))
		len2c := b.Declare("len2c", kir.Max(len2, kir.U(1)))

		// Endpoints packed 5:6:5 style (here 8:8:8 truncated for clarity).
		c0 := b.Declare("c0", kir.Or(kir.Or(maxR, kir.Shl(maxG, kir.U(8))), kir.Shl(maxB, kir.U(16))))
		c1 := b.Declare("c1", kir.Or(kir.Or(minR, kir.Shl(minG, kir.U(8))), kir.Shl(minB, kir.U(16))))

		idxWord := b.Declare("idxWord", kir.U(0))
		b.For("t", kir.U(0), kir.U(16), kir.U(1), func(t kir.Expr) {
			pr := b.Load(lr, t)
			pg := b.Load(lg, t)
			pb := b.Load(lb, t)
			dot := b.Declare("dot", kir.Add(kir.Add(
				kir.Mul(kir.Sub(pr, minR), dr),
				kir.Mul(kir.Sub(pg, minG), dg)),
				kir.Mul(kir.Sub(pb, minB), db)))
			level := b.Declare("level", kir.Min(kir.U(3),
				kir.Div(kir.Add(kir.Mul(dot, kir.U(3)), kir.Div(len2c, kir.U(2))), len2c)))
			b.Assign(idxWord, kir.Or(idxWord, kir.Shl(level, kir.Mul(t, kir.U(2)))))
		})

		b.Store(out, kir.Mul(bid, kir.U(2)), kir.Or(c0, kir.Shl(kir.And(c1, kir.U(0xff)), kir.U(24))))
		b.Store(out, kir.Add(kir.Mul(bid, kir.U(2)), kir.U(1)), idxWord)
	})
	return b.MustBuild()
}

// dxtcRef runs the identical integer algorithm on the host.
func dxtcRef(img []uint32, w, h int) []uint32 {
	wb, hb := w/4, h/4
	out := make([]uint32, wb*hb*2)
	for bid := 0; bid < wb*hb; bid++ {
		bx, by := bid%wb, bid/wb
		origin := by*4*w + bx*4
		var lr, lg, lb [16]uint32
		minC := [3]uint32{255, 255, 255}
		maxC := [3]uint32{0, 0, 0}
		for t := 0; t < 16; t++ {
			px := img[origin+(t/4)*w+t%4]
			c := [3]uint32{px & 0xff, (px >> 8) & 0xff, (px >> 16) & 0xff}
			lr[t], lg[t], lb[t] = c[0], c[1], c[2]
			for k := 0; k < 3; k++ {
				if c[k] < minC[k] {
					minC[k] = c[k]
				}
				if c[k] > maxC[k] {
					maxC[k] = c[k]
				}
			}
		}
		dr, dg, db := maxC[0]-minC[0], maxC[1]-minC[1], maxC[2]-minC[2]
		len2 := dr*dr + dg*dg + db*db
		if len2 < 1 {
			len2 = 1
		}
		c0 := maxC[0] | maxC[1]<<8 | maxC[2]<<16
		c1 := minC[0] | minC[1]<<8 | minC[2]<<16
		var idxWord uint32
		for t := 0; t < 16; t++ {
			dot := (lr[t]-minC[0])*dr + (lg[t]-minC[1])*dg + (lb[t]-minC[2])*db
			level := (dot*3 + len2/2) / len2
			if level > 3 {
				level = 3
			}
			idxWord |= level << (uint(t) * 2)
		}
		out[bid*2] = c0 | (c1&0xff)<<24
		out[bid*2+1] = idxWord
	}
	return out
}

// RunDXTC measures DXT compression throughput in MPixels/sec (Table II).
func RunDXTC(d Driver, cfg Config) (*Result, error) {
	const metric = "MPixels/sec"
	w := cfg.scale(512)
	h := cfg.scale(512)
	if w < 64 {
		w, h = 64, 64
	}
	w, h = (w/4)*4, (h/4)*4
	img := workload.RGBAImage(w, h, 53)
	nblocks := (w / 4) * (h / 4)

	k := DXTCKernel()
	mod, err := d.Build(k)
	if err != nil {
		return abort(d, "DXTC", metric, err), nil
	}
	imgBuf, err := allocWrite(d, img)
	if err != nil {
		return abort(d, "DXTC", metric, err), nil
	}
	outBuf, err := allocZero(d, nblocks*2)
	if err != nil {
		return abort(d, "DXTC", metric, err), nil
	}

	d.ResetTimer()
	block := 64
	grid := sim.Dim3{X: (nblocks + block - 1) / block, Y: 1}
	if err := d.Launch(mod, "dxtc", grid, sim.Dim3{X: block, Y: 1},
		B(imgBuf), B(outBuf), V(uint32(w)), V(uint32(nblocks))); err != nil {
		return abort(d, "DXTC", metric, err), nil
	}
	kernelSecs := d.KernelTime()

	got, err := readWords(d, outBuf, nblocks*2)
	if err != nil {
		return abort(d, "DXTC", metric, err), nil
	}
	want := dxtcRef(img, w, h)
	correct := true
	for i := range want {
		if got[i] != want[i] {
			correct = false
			break
		}
	}

	return result(d, "DXTC", metric, float64(w*h)/kernelSecs/1e6, correct), nil
}
