package bench

import (
	"encoding/json"
	"reflect"
	"testing"

	"gpucmp/internal/arch"
	"gpucmp/internal/ptx"
)

// TestDriversRecordBuiltKernels: both runtime adapters record what Build
// compiled, and benchmark results carry the reports with pass stats and
// remarks attached.
func TestDriversRecordBuiltKernels(t *testing.T) {
	for _, toolchain := range []string{"cuda", "opencl"} {
		t.Run(toolchain, func(t *testing.T) {
			d, err := NewDriver(toolchain, arch.GTX280())
			if err != nil {
				t.Fatal(err)
			}
			spec, err := SpecByName("FFT")
			if err != nil {
				t.Fatal(err)
			}
			res, err := spec.Run(d, Config{Scale: 16})
			if err != nil {
				t.Fatal(err)
			}
			if res.Err != nil {
				t.Fatalf("FFT aborted: %v", res.Err)
			}
			if len(res.Kernels) == 0 {
				t.Fatal("result carries no kernel reports")
			}
			for _, kr := range res.Kernels {
				if kr.Toolchain != toolchain {
					t.Errorf("kernel %s tagged %q, want %q", kr.Name, kr.Toolchain, toolchain)
				}
				if kr.Instrs == 0 || kr.NumRegs == 0 {
					t.Errorf("kernel %s: empty footprint: %+v", kr.Name, kr)
				}
				if len(kr.PassStats) == 0 {
					t.Errorf("kernel %s: no pass stats", kr.Name)
				}
				if len(kr.Remarks) == 0 {
					t.Errorf("kernel %s: no remarks", kr.Name)
				}
			}
		})
	}
}

// TestKernelReportsBuildOrderDeterministic: the report list follows the
// Build call's kernel order, not map iteration order.
func TestKernelReportsBuildOrderDeterministic(t *testing.T) {
	names := func() []string {
		d, err := NewCUDADriver(arch.GTX280())
		if err != nil {
			t.Fatal(err)
		}
		if _, err := d.Build(FFTKernel(), MxMKernel()); err != nil {
			t.Fatal(err)
		}
		var out []string
		for _, kr := range KernelReports(d) {
			out = append(out, kr.Name)
		}
		return out
	}
	first := names()
	if len(first) != 2 {
		t.Fatalf("built 2 kernels, reported %v", first)
	}
	for i := 0; i < 5; i++ {
		if got := names(); !reflect.DeepEqual(got, first) {
			t.Fatalf("report order unstable: %v vs %v", got, first)
		}
	}
}

// TestKernelReportsUnknownDriver: a custom Driver implementation outside
// this package yields no reports rather than a panic.
func TestKernelReportsUnknownDriver(t *testing.T) {
	if got := KernelReports(Driver(nil)); got != nil {
		t.Errorf("nil driver reports: %v", got)
	}
}

// TestResultJSONCarriesKernels: the wire format round-trips kernel reports
// and still omits them when absent.
func TestResultJSONCarriesKernels(t *testing.T) {
	in := Result{
		Benchmark: "FFT", Toolchain: "cuda", Device: "GeForce GTX480",
		Metric: "GFlops/sec", Value: 412.5, Correct: true,
		Kernels: []KernelReport{{
			Name: "fft_fwd", Toolchain: "cuda", Instrs: 120, NumRegs: 14,
			SharedBytes: 2048,
			PassStats: []ptx.PassStat{{
				Pass: "dce", InstrsBefore: 130, InstrsAfter: 120,
				RegsBefore: 18, RegsAfter: 14, Removed: 10,
			}},
			Remarks: []ptx.Remark{{Phase: "frontend", Message: "fully unrolled loop j by 8 trip(s)"}},
		}},
	}
	data, err := json.Marshal(&in)
	if err != nil {
		t.Fatal(err)
	}
	var out Result
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(out.Kernels, in.Kernels) {
		t.Errorf("kernel reports changed over the wire:\n in: %+v\nout: %+v", in.Kernels, out.Kernels)
	}

	bare := Result{Benchmark: "MD", Toolchain: "cuda", Device: "d", Metric: "sec", Correct: true}
	data, err = json.Marshal(&bare)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "" && jsonHasKey(t, data, "kernels") {
		t.Errorf("empty kernel list serialised: %s", data)
	}
}

func jsonHasKey(t *testing.T, data []byte, key string) bool {
	t.Helper()
	var m map[string]json.RawMessage
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	_, ok := m[key]
	return ok
}
