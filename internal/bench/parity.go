package bench

// The pattern parity gate: run a benchmark's frozen hand-written kernels
// and its pattern-generated lowering on identical inputs through the full
// compiler+simulator stack, and hand back both raw output buffers for
// bitwise comparison. At the canonical schedule the lowering reproduces
// the hand-written kernel's float association exactly, so the outputs
// must match bit for bit on every device — the property cmd/patternbench
// and the CI smoke enforce.

import (
	"fmt"

	"gpucmp/internal/arch"
	"gpucmp/internal/pattern"
	"gpucmp/internal/sim"
	"gpucmp/internal/workload"
)

// PatternParity runs benchmark name twice on fresh drivers — hand-written
// kernels and the pattern lowering at cfg.Pattern (canonical when empty) —
// and returns the two raw output buffers. For St2D and Sobel the parity
// unit is a single stencil application (the benchmark's multi-step
// ping-pong is the same kernel iterated, so step parity implies run
// parity).
func PatternParity(toolchain string, a *arch.Device, name string, cfg Config) (hand, pat []uint32, err error) {
	p, ok := PatternProgram(name)
	if !ok {
		return nil, nil, fmt.Errorf("bench: %s has no pattern program", name)
	}
	s := pattern.Canonical(p)
	if cfg.Pattern != "" {
		if s, err = pattern.ParseSchedule(cfg.Pattern); err != nil {
			return nil, nil, err
		}
	}
	shape, _ := PatternShape(name, cfg)
	l, err := pattern.Lower(p, s, shape)
	if err != nil {
		return nil, nil, err
	}

	inputs, outInit := parityInputs(name, shape)
	hand, err = handRaw(toolchain, a, name, s, shape)
	if err != nil {
		return nil, nil, fmt.Errorf("hand path: %w", err)
	}
	pat, err = loweredRaw(toolchain, a, l, inputs, outInit)
	if err != nil {
		return nil, nil, fmt.Errorf("pattern path: %w", err)
	}
	return hand, pat, nil
}

// parityInputs builds the benchmark's inputs (same seeds as the Run*
// functions) keyed by the pattern program's buffer names.
func parityInputs(name string, shape pattern.Shape) (map[string][]uint32, []uint32) {
	switch name {
	case "MxM":
		n := shape.N
		rng := workload.NewRNG(41)
		return map[string][]uint32{
			"A": f32Words(rng.Floats(n*n, -1, 1)),
			"B": f32Words(rng.Floats(n*n, -1, 1)),
		}, nil
	case "Reduce":
		return map[string][]uint32{"in": f32Words(workload.NewRNG(13).Floats(shape.N, 0, 1))}, nil
	case "Scan":
		return map[string][]uint32{"in": workload.NewRNG(47).Keys(shape.N, 1000)}, nil
	case "St2D":
		img := f32Words(workload.GrayImage(shape.W, shape.H, 37))
		return map[string][]uint32{"in": img}, img // borders pass through
	case "Sobel":
		return map[string][]uint32{"img": f32Words(workload.GrayImage(shape.W, shape.H, 11))}, nil
	}
	return nil, nil
}

// loweredRaw executes a lowered pattern program on a fresh driver and
// returns the raw words of its output buffer.
func loweredRaw(toolchain string, a *arch.Device, l *pattern.Lowered, inputs map[string][]uint32, outInit []uint32) ([]uint32, error) {
	d, err := NewDriver(toolchain, a)
	if err != nil {
		return nil, err
	}
	mod, err := d.Build(l.Kernels...)
	if err != nil {
		return nil, err
	}
	bufs, err := allocLoweredBufs(d, l, inputs, outInit)
	if err != nil {
		return nil, err
	}
	for _, ln := range l.Launches {
		if err := launchOne(d, mod, bufs, ln); err != nil {
			return nil, err
		}
	}
	return readWords(d, bufs[l.Out], l.Buf(l.Out).Words)
}

// handRaw executes the frozen hand-written kernel sequence on a fresh
// driver with the parity inputs and returns the raw output words.
func handRaw(toolchain string, a *arch.Device, name string, s pattern.Schedule, shape pattern.Shape) ([]uint32, error) {
	d, err := NewDriver(toolchain, a)
	if err != nil {
		return nil, err
	}
	switch name {
	case "MxM":
		n := shape.N
		rng := workload.NewRNG(41)
		av := rng.Floats(n*n, -1, 1)
		bv := rng.Floats(n*n, -1, 1)
		mod, err := d.Build(MxMKernel())
		if err != nil {
			return nil, err
		}
		ab, err := allocWriteF(d, av)
		if err != nil {
			return nil, err
		}
		bb, err := allocWriteF(d, bv)
		if err != nil {
			return nil, err
		}
		cb, err := allocZero(d, n*n)
		if err != nil {
			return nil, err
		}
		if err := d.Launch(mod, "sgemm",
			sim.Dim3{X: n / mxmTile, Y: n / mxmTile}, sim.Dim3{X: mxmTile, Y: mxmTile},
			B(ab), B(bb), B(cb), V(uint32(n))); err != nil {
			return nil, err
		}
		return readWords(d, cb, n*n)

	case "Reduce":
		n := shape.N
		in := workload.NewRNG(13).Floats(n, 0, 1)
		mod, err := d.Build(ReduceKernel())
		if err != nil {
			return nil, err
		}
		inBuf, err := allocWriteF(d, in)
		if err != nil {
			return nil, err
		}
		groups := (n + reduceBlock - 1) / reduceBlock
		outBuf, err := allocZero(d, groups)
		if err != nil {
			return nil, err
		}
		if err := d.Launch(mod, "reduce",
			sim.Dim3{X: groups, Y: 1}, sim.Dim3{X: reduceBlock, Y: 1},
			B(inBuf), B(outBuf), V(uint32(n))); err != nil {
			return nil, err
		}
		return readWords(d, outBuf, groups)

	case "Scan":
		n := shape.N
		groups := n / scanBlock
		keys := workload.NewRNG(47).Keys(n, 1000)
		mod, err := d.Build(scanBlockKernel(), scanSumsKernel(), scanAddKernel())
		if err != nil {
			return nil, err
		}
		inBuf, err := allocWrite(d, keys)
		if err != nil {
			return nil, err
		}
		outBuf, err := allocZero(d, n)
		if err != nil {
			return nil, err
		}
		sumBuf, err := allocZero(d, groups)
		if err != nil {
			return nil, err
		}
		if err := d.Launch(mod, "scanBlock",
			sim.Dim3{X: groups, Y: 1}, sim.Dim3{X: scanBlock, Y: 1},
			B(inBuf), B(outBuf), B(sumBuf)); err != nil {
			return nil, err
		}
		if err := d.Launch(mod, "scanSums",
			sim.Dim3{X: 1, Y: 1}, sim.Dim3{X: 1, Y: 1},
			B(sumBuf), V(uint32(groups))); err != nil {
			return nil, err
		}
		if err := d.Launch(mod, "uniformAdd",
			sim.Dim3{X: groups, Y: 1}, sim.Dim3{X: scanBlock, Y: 1},
			B(outBuf), B(sumBuf)); err != nil {
			return nil, err
		}
		return readWords(d, outBuf, n)

	case "St2D":
		w, h := shape.W, shape.H
		img := workload.GrayImage(w, h, 37)
		mod, err := d.Build(St2DKernel())
		if err != nil {
			return nil, err
		}
		src, err := allocWriteF(d, img)
		if err != nil {
			return nil, err
		}
		dst, err := allocWriteF(d, img) // borders pass through
		if err != nil {
			return nil, err
		}
		if err := d.Launch(mod, "stencil9",
			sim.Dim3{X: (w + 15) / 16, Y: (h + 15) / 16}, sim.Dim3{X: 16, Y: 16},
			B(src), B(dst), V(uint32(w)), V(uint32(h))); err != nil {
			return nil, err
		}
		return readWords(d, dst, w*h)

	case "Sobel":
		w, h := shape.W, shape.H
		img := workload.GrayImage(w, h, 11)
		// The schedule's ConstCoeff flag is the pattern spelling of the
		// hand-written kernel's constFilter variant: compare like with like.
		mod, err := d.Build(SobelKernel(s.ConstCoeff))
		if err != nil {
			return nil, err
		}
		imgBuf, err := allocWriteF(d, img)
		if err != nil {
			return nil, err
		}
		filtBuf, err := allocWriteF(d, sobelFilterX)
		if err != nil {
			return nil, err
		}
		outBuf, err := allocZero(d, w*h)
		if err != nil {
			return nil, err
		}
		if err := d.Launch(mod, "sobel",
			sim.Dim3{X: (w + 15) / 16, Y: (h + 15) / 16}, sim.Dim3{X: 16, Y: 16},
			B(imgBuf), B(filtBuf), B(outBuf), V(uint32(w)), V(uint32(h))); err != nil {
			return nil, err
		}
		return readWords(d, outBuf, w*h)
	}
	return nil, fmt.Errorf("bench: %s has no hand parity path", name)
}
