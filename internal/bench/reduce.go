package bench

import (
	"gpucmp/internal/kir"
	"gpucmp/internal/sim"
	"gpucmp/internal/workload"
)

const reduceBlock = 256

// ReduceKernel builds the SHOC-style tree reduction: each work-group loads
// a tile into shared memory and halves it log2(block) times, emitting one
// partial sum per group.
func ReduceKernel() *kir.Kernel {
	b := kir.NewKernel("reduce")
	in := b.GlobalBuffer("in", kir.F32)
	out := b.GlobalBuffer("out", kir.F32)
	n := b.ScalarParam("n", kir.U32)
	tile := b.SharedArray("tile", kir.F32, reduceBlock)
	tid := kir.Bi(kir.TidX)

	gid := b.Declare("gid", b.GlobalIDX())
	v := b.Declare("v", kir.F(0))
	b.If(kir.Lt(gid, n), func() {
		b.Assign(v, b.Load(in, gid))
	})
	b.Store(tile, tid, v)
	b.Barrier()
	// 8 halving rounds for a 256-thread group: stride = 128 >> p.
	b.For("p", kir.U(0), kir.U(8), kir.U(1), func(p kir.Expr) {
		stride := kir.Shr(kir.U(reduceBlock/2), p)
		b.If(kir.Lt(tid, stride), func() {
			b.Store(tile, tid, kir.Add(b.Load(tile, tid), b.Load(tile, kir.Add(tid, stride))))
		})
		b.Barrier()
	})
	b.If(kir.Eq(tid, kir.U(0)), func() {
		b.Store(out, kir.Bi(kir.CtaidX), b.Load(tile, kir.U(0)))
	})
	return b.MustBuild()
}

// RunReduce measures reduction bandwidth in GB/sec (Table II). The device
// produces per-group partials; the final partial sum happens on the host,
// as in SHOC.
func RunReduce(d Driver, cfg Config) (*Result, error) {
	if cfg.Pattern != "" {
		return runPatternReduce(d, cfg)
	}
	const metric = "GB/sec"
	n := cfg.scale(1 << 20)
	if n < reduceBlock {
		n = reduceBlock
	}
	in := workload.NewRNG(13).Floats(n, 0, 1)

	k := ReduceKernel()
	mod, err := d.Build(k)
	if err != nil {
		return abort(d, "Reduce", metric, err), nil
	}
	inBuf, err := allocWriteF(d, in)
	if err != nil {
		return abort(d, "Reduce", metric, err), nil
	}
	groups := (n + reduceBlock - 1) / reduceBlock
	outBuf, err := allocZero(d, groups)
	if err != nil {
		return abort(d, "Reduce", metric, err), nil
	}

	d.ResetTimer()
	if err := d.Launch(mod, "reduce", sim.Dim3{X: groups, Y: 1}, sim.Dim3{X: reduceBlock, Y: 1},
		B(inBuf), B(outBuf), V(uint32(n))); err != nil {
		return abort(d, "Reduce", metric, err), nil
	}
	kernelSecs := d.KernelTime()

	partials, err := readF32(d, outBuf, groups)
	if err != nil {
		return abort(d, "Reduce", metric, err), nil
	}
	var got float64
	for _, p := range partials {
		got += float64(p)
	}
	var want float64
	for _, v := range in {
		want += float64(v)
	}
	diff := got - want
	if diff < 0 {
		diff = -diff
	}
	correct := diff <= 1e-3*(1+want)

	res := result(d, "Reduce", metric, float64(n)*4/kernelSecs/1e9, correct)
	return res, nil
}
