package bench

import (
	"gpucmp/internal/kir"
	"gpucmp/internal/sim"
	"gpucmp/internal/workload"
)

// bfsVisitKernel expands the current frontier one level (Rodinia BFS
// kernel 1): every frontier node relaxes its unvisited neighbours.
func bfsVisitKernel() *kir.Kernel {
	b := kir.NewKernel("bfsVisit")
	starts := b.GlobalBuffer("starts", kir.U32)
	edges := b.GlobalBuffer("edges", kir.U32)
	frontier := b.GlobalBuffer("frontier", kir.U32)
	updating := b.GlobalBuffer("updating", kir.U32)
	visited := b.GlobalBuffer("visited", kir.U32)
	cost := b.GlobalBuffer("cost", kir.U32)
	nodes := b.ScalarParam("nodes", kir.U32)

	tid := b.Declare("tid", b.GlobalIDX())
	b.If(kir.LAnd(kir.Lt(tid, nodes), kir.Eq(b.Load(frontier, tid), kir.U(1))), func() {
		b.Store(frontier, tid, kir.U(0))
		myCost := b.Declare("myCost", b.Load(cost, tid))
		first := b.Declare("first", b.Load(starts, tid))
		last := b.Declare("last", b.Load(starts, kir.Add(tid, kir.U(1))))
		b.For("e", first, last, kir.U(1), func(e kir.Expr) {
			n := b.Declare("n", b.Load(edges, e))
			b.If(kir.Eq(b.Load(visited, n), kir.U(0)), func() {
				// Concurrent relaxations write the same level value; the
				// exchanges keep the simulation race-free.
				b.Atomic(cost, n, kir.AtomicExch, kir.Add(myCost, kir.U(1)))
				b.Atomic(updating, n, kir.AtomicExch, kir.U(1))
			})
		})
	})
	return b.MustBuild()
}

// bfsUpdateKernel promotes updated nodes into the next frontier (Rodinia
// BFS kernel 2) and raises the not-done flag.
func bfsUpdateKernel() *kir.Kernel {
	b := kir.NewKernel("bfsUpdate")
	frontier := b.GlobalBuffer("frontier", kir.U32)
	updating := b.GlobalBuffer("updating", kir.U32)
	visited := b.GlobalBuffer("visited", kir.U32)
	done := b.GlobalBuffer("done", kir.U32)
	nodes := b.ScalarParam("nodes", kir.U32)

	tid := b.Declare("tid", b.GlobalIDX())
	b.If(kir.LAnd(kir.Lt(tid, nodes), kir.Eq(b.Load(updating, tid), kir.U(1))), func() {
		b.Store(frontier, tid, kir.U(1))
		b.Store(visited, tid, kir.U(1))
		b.Store(updating, tid, kir.U(0))
		b.Atomic(done, kir.U(0), kir.AtomicExch, kir.U(1))
	})
	return b.MustBuild()
}

// bfsRef computes reference levels with a host BFS.
func bfsRef(g *workload.Graph, src int) []uint32 {
	const unvisited = ^uint32(0)
	cost := make([]uint32, g.Nodes)
	for i := range cost {
		cost[i] = unvisited
	}
	cost[src] = 0
	queue := []int{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for e := g.Starts[u]; e < g.Starts[u+1]; e++ {
			v := int(g.Edges[e])
			if cost[v] == unvisited {
				cost[v] = cost[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return cost
}

// RunBFS measures breadth-first search (Table II metric: seconds). The
// level-synchronous loop launches two kernels per level, which is why the
// paper attributes BFS's CUDA-vs-OpenCL gap to kernel-launch overhead.
func RunBFS(d Driver, cfg Config) (*Result, error) {
	const metric = "sec"
	nodes := cfg.scale(32 * 1024)
	if nodes < 64 {
		nodes = 64
	}
	g := workload.RandomGraph(nodes, 8, 67)
	const src = 0

	mod, err := d.Build(bfsVisitKernel(), bfsUpdateKernel())
	if err != nil {
		return abort(d, "BFS", metric, err), nil
	}
	startsBuf, err := allocWrite(d, g.Starts)
	if err != nil {
		return abort(d, "BFS", metric, err), nil
	}
	edgesBuf, _ := allocWrite(d, g.Edges)
	frontierInit := make([]uint32, nodes)
	frontierInit[src] = 1
	frontierBuf, _ := allocWrite(d, frontierInit)
	updatingBuf, _ := allocZero(d, nodes)
	visitedInit := make([]uint32, nodes)
	visitedInit[src] = 1
	visitedBuf, _ := allocWrite(d, visitedInit)
	costBuf, _ := allocZero(d, nodes)
	doneBuf, err := allocZero(d, 1)
	if err != nil {
		return abort(d, "BFS", metric, err), nil
	}

	d.ResetTimer()
	block := sim.Dim3{X: 256, Y: 1}
	grid := sim.Dim3{X: (nodes + 255) / 256, Y: 1}
	for iter := 0; iter < nodes; iter++ {
		if err := d.Write(doneBuf, []uint32{0}); err != nil {
			return abort(d, "BFS", metric, err), nil
		}
		if err := d.Launch(mod, "bfsVisit", grid, block,
			B(startsBuf), B(edgesBuf), B(frontierBuf), B(updatingBuf), B(visitedBuf), B(costBuf), V(uint32(nodes))); err != nil {
			return abort(d, "BFS", metric, err), nil
		}
		if err := d.Launch(mod, "bfsUpdate", grid, block,
			B(frontierBuf), B(updatingBuf), B(visitedBuf), B(doneBuf), V(uint32(nodes))); err != nil {
			return abort(d, "BFS", metric, err), nil
		}
		flag, err := readWords(d, doneBuf, 1)
		if err != nil {
			return abort(d, "BFS", metric, err), nil
		}
		if flag[0] == 0 {
			break
		}
	}
	elapsed := d.KernelTime()

	got, err := readWords(d, costBuf, nodes)
	if err != nil {
		return abort(d, "BFS", metric, err), nil
	}
	want := bfsRef(g, src)
	correct := true
	for i := range want {
		w := want[i]
		if w == ^uint32(0) {
			w = 0 // unreachable nodes keep cost 0 in the device arrays
		}
		if got[i] != w {
			correct = false
			break
		}
	}

	res := result(d, "BFS", metric, elapsed, correct)
	return res, nil
}
