// Package bench implements the paper's sixteen benchmarks (Table II plus
// the two synthetic SHOC probes) on top of the simulated CUDA and OpenCL
// runtimes. Each benchmark is written once against the Driver abstraction;
// the two runtime adapters preserve the per-toolchain differences that
// matter (front-end personality, launch overhead, NDRange semantics), and
// NativeConfig captures the per-toolchain implementation choices the paper
// documents (texture memory in the CUDA MD/SPMV, constant memory in the
// OpenCL Sobel, unroll pragma placement in FDTD).
package bench

import (
	"fmt"

	"gpucmp/internal/arch"
	"gpucmp/internal/kir"
	"gpucmp/internal/ptx"
	"gpucmp/internal/sim"
)

// Buf is a device allocation handle.
type Buf struct {
	Addr uint32
	Size uint32
}

// Module is an opaque compiled-program handle.
type Module interface {
	Kernel(name string) (*ptx.Kernel, error)
}

// Driver abstracts the host runtime so each benchmark is written once.
type Driver interface {
	Name() string // "cuda" or "opencl"
	Arch() *arch.Device
	Alloc(bytes uint32) (Buf, error)
	Write(dst Buf, words []uint32) error
	Read(dst []uint32, src Buf) error
	Build(kernels ...*kir.Kernel) (Module, error)
	// Launch runs a kernel with grid x block geometry (the OpenCL adapter
	// converts to NDRange global sizes).
	Launch(m Module, kernel string, grid, block sim.Dim3, args ...Arg) error
	KernelTime() float64
	Elapsed() float64
	Traces() []*sim.Trace
	ResetTimer()
}

// Arg is a launch argument: either a buffer or a 32-bit scalar.
type Arg struct {
	IsBuf bool
	Buf   Buf
	Val   uint32
}

// B passes a buffer argument.
func B(b Buf) Arg { return Arg{IsBuf: true, Buf: b} }

// V passes a raw 32-bit scalar.
func V(v uint32) Arg { return Arg{Val: v} }

// Result is the outcome of one benchmark run on one driver. It marshals
// to JSON (see json.go): Err is flattened to an "error" string and the
// launch traces are omitted — they are a simulator-internal drill-down,
// not part of the reported result.
type Result struct {
	Benchmark string `json:"benchmark"`
	Toolchain string `json:"toolchain"`
	Device    string `json:"device"`

	Metric string  `json:"metric"`          // unit of Value, per Table II
	Value  float64 `json:"value,omitempty"` // the reported performance number

	KernelSeconds   float64 `json:"kernel_seconds,omitempty"`
	EndToEndSeconds float64 `json:"end_to_end_seconds,omitempty"`
	// TransferSeconds is the host<->device copy time inside EndToEndSeconds.
	TransferSeconds float64 `json:"transfer_seconds,omitempty"`

	// Transfer echoes the device's link parameters so a client can
	// reproduce transfer-inclusive numbers from the compute-only ones.
	Transfer *TransferParams `json:"transfer,omitempty"`

	// Correct is false when the run completed but produced wrong output —
	// the Table VI "FL" state.
	Correct bool `json:"correct"`
	// Err is non-nil when the run aborted — the Table VI "ABT" state.
	Err error `json:"-"`

	// Kernels carries the compiler story for every kernel the run built:
	// per-pass statistics and the remark stream (see KernelReport).
	Kernels []KernelReport `json:"kernels,omitempty"`

	Traces []*sim.Trace `json:"-"`
}

// TransferParams is the per-device host link description echoed in results
// and on GET /devices.
type TransferParams struct {
	PCIeGBps       float64 `json:"pcie_gbps"`
	LatencySeconds float64 `json:"latency_seconds"`
}

// Status summarises the run the way Table VI prints it.
func (r *Result) Status() string {
	switch {
	case r.Err != nil:
		return "ABT"
	case !r.Correct:
		return "FL"
	default:
		return "OK"
	}
}

// Config selects the implementation variant and problem scale. The JSON
// form is the wire format of the gpucmpd POST /run body and part of the
// scheduler's canonical job key.
type Config struct {
	// Scale divides the default problem size (1 = paper-like default,
	// 2 = half-size for fast tests, etc.).
	Scale int `json:"scale,omitempty"`

	// UseTexture places the irregularly-read vector of MD/SPMV in texture
	// memory (the CUDA implementations' native choice, Fig. 4).
	UseTexture bool `json:"use_texture,omitempty"`

	// UseConstant places the Sobel filter in constant memory (the OpenCL
	// implementation's native choice, Fig. 8).
	UseConstant bool `json:"use_constant,omitempty"`

	// UnrollA / UnrollB apply "#pragma unroll" at FDTD's two unroll points
	// (Fig. 6/7).
	UnrollA bool `json:"unroll_a,omitempty"`
	UnrollB bool `json:"unroll_b,omitempty"`

	// VectorSPMV uses the warp-per-row CSR-vector kernel instead of the
	// thread-per-row scalar kernel (the Section V CPU-portability note).
	VectorSPMV bool `json:"vector_spmv,omitempty"`

	// NaiveTranspose skips the shared-memory tile in TranP — slower on
	// GPUs, faster on the implicitly-cached CPU device (the Section V
	// TranP note: 2.411 vs 0.215 GB/s).
	NaiveTranspose bool `json:"naive_transpose,omitempty"`

	// Pattern, when non-empty, runs the benchmark from pattern-generated
	// kernels instead of the frozen hand-written ones: the value is a
	// pattern.Schedule mangle (e.g. "b256.c1.u0.f1.r1.t0.k0") selecting the
	// lowering. Only the benchmarks in PatternBenchNames accept it. The
	// mangle is embedded in generated kernel names, so distinct schedules
	// never alias in the compile cache, and it participates in the
	// scheduler's job key.
	Pattern string `json:"pattern,omitempty"`
}

func (c Config) scale(n int) int {
	s := c.Scale
	if s <= 0 {
		s = 1
	}
	v := n / s
	if v < 1 {
		v = 1
	}
	return v
}

// NativeConfig returns the paper's "native", unmodified implementation
// choices for a toolchain: the configurations behind Fig. 3.
func NativeConfig(toolchain string) Config {
	if toolchain == "cuda" {
		return Config{Scale: 1, UseTexture: true, UseConstant: false, UnrollA: true, UnrollB: true}
	}
	return Config{Scale: 1, UseTexture: false, UseConstant: true, UnrollA: false, UnrollB: true}
}

// Spec describes one registered benchmark.
type Spec struct {
	Name   string
	Metric string
	// LowerIsBetter is true for time-valued metrics (sec).
	LowerIsBetter bool
	Run           func(d Driver, cfg Config) (*Result, error)
}

// Registry returns the real-world benchmarks in the order of Table II,
// followed by the two synthetic probes.
func Registry() []Spec {
	return []Spec{
		{Name: "BFS", Metric: "sec", LowerIsBetter: true, Run: RunBFS},
		{Name: "Sobel", Metric: "sec", LowerIsBetter: true, Run: RunSobel},
		{Name: "TranP", Metric: "GB/sec", Run: RunTranP},
		{Name: "Reduce", Metric: "GB/sec", Run: RunReduce},
		{Name: "FFT", Metric: "GFlops/sec", Run: RunFFT},
		{Name: "MD", Metric: "GFlops/sec", Run: RunMD},
		{Name: "SPMV", Metric: "GFlops/sec", Run: RunSPMV},
		{Name: "St2D", Metric: "sec", LowerIsBetter: true, Run: RunSt2D},
		{Name: "DXTC", Metric: "MPixels/sec", Run: RunDXTC},
		{Name: "RdxS", Metric: "MElements/sec", Run: RunRdxS},
		{Name: "Scan", Metric: "MElements/sec", Run: RunScan},
		{Name: "STNW", Metric: "MElements/sec", Run: RunSTNW},
		{Name: "MxM", Metric: "GFlops/sec", Run: RunMxM},
		{Name: "FDTD", Metric: "MPoints/sec", Run: RunFDTD},
		{Name: "MaxFlops", Metric: "GFlops/sec", Run: RunMaxFlops},
		{Name: "DeviceMemory", Metric: "GB/sec", Run: RunDeviceMemory},
	}
}

// SpecByName finds a registered benchmark.
func SpecByName(name string) (Spec, error) {
	for _, s := range Registry() {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("bench: unknown benchmark %q", name)
}

// result assembles the common Result fields from a finished driver run.
func result(d Driver, name, metric string, value float64, correct bool) *Result {
	a := d.Arch()
	return &Result{
		Benchmark:       name,
		Toolchain:       d.Name(),
		Device:          a.Name,
		Metric:          metric,
		Value:           value,
		KernelSeconds:   d.KernelTime(),
		EndToEndSeconds: d.Elapsed(),
		TransferSeconds: TransferSeconds(d),
		Transfer:        &TransferParams{PCIeGBps: a.Transfer.PCIeGBps, LatencySeconds: a.Transfer.LatencyS},
		Correct:         correct,
		Kernels:         KernelReports(d),
		Traces:          d.Traces(),
	}
}

// abort wraps a launch/build failure as an ABT result.
func abort(d Driver, name, metric string, err error) *Result {
	return &Result{
		Benchmark: name,
		Toolchain: d.Name(),
		Device:    d.Arch().Name,
		Metric:    metric,
		Err:       err,
	}
}

func f32eq(a, b, tol float32) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	m := a
	if m < 0 {
		m = -m
	}
	if b > m {
		m = b
	}
	if -b > m {
		m = -b
	}
	return d <= tol+tol*m
}
