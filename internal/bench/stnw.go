package bench

import (
	"fmt"
	"sort"

	"gpucmp/internal/kir"
	"gpucmp/internal/sim"
	"gpucmp/internal/workload"
)

const (
	stnwTile    = 512 // elements sorted in shared memory per group
	stnwThreads = 256
)

// stnwLocalKernel sorts 512-element key/value tiles in shared memory with
// a full bitonic network; tiles alternate ascending/descending so the
// global merge stages can take over at k = 2*tile.
func stnwLocalKernel() *kir.Kernel {
	b := kir.NewKernel("bitonicSortShared")
	keys := b.GlobalBuffer("keys", kir.U32)
	vals := b.GlobalBuffer("vals", kir.U32)
	sk := b.SharedArray("sk", kir.U32, stnwTile)
	sv := b.SharedArray("sv", kir.U32, stnwTile)
	stage := b.LocalArray("stage", kir.U32, 4)

	tid := kir.Bi(kir.TidX)
	base := b.Declare("base", kir.Mul(kir.Bi(kir.CtaidX), kir.U(stnwTile)))
	// Load two pairs per thread through the local staging slots.
	b.Store(stage, kir.U(0), b.Load(keys, kir.Add(base, tid)))
	b.Store(stage, kir.U(1), b.Load(keys, kir.Add(base, kir.Add(tid, kir.U(stnwThreads)))))
	b.Store(stage, kir.U(2), b.Load(vals, kir.Add(base, tid)))
	b.Store(stage, kir.U(3), b.Load(vals, kir.Add(base, kir.Add(tid, kir.U(stnwThreads)))))
	b.Store(sk, tid, b.Load(stage, kir.U(0)))
	b.Store(sk, kir.Add(tid, kir.U(stnwThreads)), b.Load(stage, kir.U(1)))
	b.Store(sv, tid, b.Load(stage, kir.U(2)))
	b.Store(sv, kir.Add(tid, kir.U(stnwThreads)), b.Load(stage, kir.U(3)))
	b.Barrier()

	// tileDesc = ctaid & 1: odd tiles sort descending.
	tileDesc := b.Declare("tileDesc", kir.And(kir.Bi(kir.CtaidX), kir.U(1)))

	step := 0
	for k := uint32(2); k <= stnwTile; k <<= 1 {
		for j := k >> 1; j >= 1; j >>= 1 {
			n := func(base string) string { return fmt.Sprintf("%s%d", base, step) }
			kk, jj := k, j
			// A single-trip fully unrolled loop scopes each stage's
			// declarations so their registers are released between stages.
			b.ForUnroll(n("s"), kir.U(0), kir.U(1), kir.U(1), kir.UnrollFull, func(_ kir.Expr) {
				k, j := kk, jj
				// Comparator index: insert a zero bit at position log2(j).
				i := b.Declare(n("i"), kir.Or(
					kir.Shl(kir.And(tid, kir.U(^(j-1))), kir.U(1)),
					kir.And(tid, kir.U(j-1))))
				p := b.Declare(n("p"), kir.Or(i, kir.U(j)))
				// asc = ((i & k) == 0) XOR tileDesc
				ascBit := b.Declare(n("ascBit"),
					kir.Xor(kir.Select(kir.Eq(kir.And(i, kir.U(k)), kir.U(0)), kir.U(1), kir.U(0)), tileDesc))
				a := b.Declare(n("a"), b.Load(sk, i))
				c := b.Declare(n("c"), b.Load(sk, p))
				swap := kir.LOr(
					kir.LAnd(kir.Eq(ascBit, kir.U(1)), kir.Gt(a, c)),
					kir.LAnd(kir.Eq(ascBit, kir.U(0)), kir.Lt(a, c)))
				b.If(swap, func() {
					b.Store(sk, i, c)
					b.Store(sk, p, a)
					av := b.Declare(n("av"), b.Load(sv, i))
					b.Store(sv, i, b.Load(sv, p))
					b.Store(sv, p, av)
				})
			})
			b.Barrier()
			step++
		}
	}

	b.Store(keys, kir.Add(base, tid), b.Load(sk, tid))
	b.Store(keys, kir.Add(base, kir.Add(tid, kir.U(stnwThreads))), b.Load(sk, kir.Add(tid, kir.U(stnwThreads))))
	b.Store(vals, kir.Add(base, tid), b.Load(sv, tid))
	b.Store(vals, kir.Add(base, kir.Add(tid, kir.U(stnwThreads))), b.Load(sv, kir.Add(tid, kir.U(stnwThreads))))
	return b.MustBuild()
}

// stnwGlobalKernel is one global comparator stage (stride j, segment k).
func stnwGlobalKernel() *kir.Kernel {
	b := kir.NewKernel("bitonicMergeGlobal")
	keys := b.GlobalBuffer("keys", kir.U32)
	vals := b.GlobalBuffer("vals", kir.U32)
	jj := b.ScalarParam("j", kir.U32)
	kk := b.ScalarParam("k", kir.U32)

	gid := b.Declare("gid", b.GlobalIDX())
	jm1 := b.Declare("jm1", kir.Sub(jj, kir.U(1)))
	i := b.Declare("i", kir.Or(
		kir.Shl(kir.And(gid, kir.Not(jm1)), kir.U(1)),
		kir.And(gid, jm1)))
	p := b.Declare("p", kir.Or(i, jj))
	asc := kir.Eq(kir.And(i, kk), kir.U(0))
	a := b.Declare("a", b.Load(keys, i))
	c := b.Declare("c", b.Load(keys, p))
	swap := kir.LOr(kir.LAnd(asc, kir.Gt(a, c)), kir.LAnd(kir.Not(asc), kir.Lt(a, c)))
	b.If(swap, func() {
		b.Store(keys, i, c)
		b.Store(keys, p, a)
		av := b.Declare("av", b.Load(vals, i))
		b.Store(vals, i, b.Load(vals, p))
		b.Store(vals, p, av)
	})
	return b.MustBuild()
}

// RunSTNW measures sorting-network throughput in MElements/sec (Table II):
// key-value pairs sorted by a hybrid shared/global bitonic network.
func RunSTNW(d Driver, cfg Config) (*Result, error) {
	const metric = "MElements/sec"
	n := cfg.scale(64 * 1024)
	// n must be a power of two and at least one tile.
	pow := 1
	for pow*2 <= n {
		pow *= 2
	}
	n = pow
	if n < stnwTile {
		n = stnwTile
	}
	rng := workload.NewRNG(61)
	keys := rng.Keys(n, 1<<30)
	vals := make([]uint32, n)
	for i := range vals {
		vals[i] = uint32(i)
	}

	mod, err := d.Build(stnwLocalKernel(), stnwGlobalKernel())
	if err != nil {
		return abort(d, "STNW", metric, err), nil
	}
	kb, err := allocWrite(d, keys)
	if err != nil {
		return abort(d, "STNW", metric, err), nil
	}
	vb, err := allocWrite(d, vals)
	if err != nil {
		return abort(d, "STNW", metric, err), nil
	}

	d.ResetTimer()
	tiles := n / stnwTile
	if err := d.Launch(mod, "bitonicSortShared", sim.Dim3{X: tiles, Y: 1}, sim.Dim3{X: stnwThreads, Y: 1},
		B(kb), B(vb)); err != nil {
		return abort(d, "STNW", metric, err), nil
	}
	for k := uint32(2 * stnwTile); k <= uint32(n); k <<= 1 {
		for j := k >> 1; j >= 1; j >>= 1 {
			grid := sim.Dim3{X: (n / 2) / stnwThreads, Y: 1}
			if grid.X < 1 {
				grid.X = 1
			}
			if err := d.Launch(mod, "bitonicMergeGlobal", grid, sim.Dim3{X: stnwThreads, Y: 1},
				B(kb), B(vb), V(j), V(k)); err != nil {
				return abort(d, "STNW", metric, err), nil
			}
		}
	}
	kernelSecs := d.KernelTime()

	gotK, err := readWords(d, kb, n)
	if err != nil {
		return abort(d, "STNW", metric, err), nil
	}
	gotV, err := readWords(d, vb, n)
	if err != nil {
		return abort(d, "STNW", metric, err), nil
	}
	want := append([]uint32(nil), keys...)
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	correct := true
	for i := range want {
		if gotK[i] != want[i] || keys[gotV[i]] != gotK[i] {
			correct = false
			break
		}
	}

	return result(d, "STNW", metric, float64(n)/kernelSecs/1e6, correct), nil
}
