package bench

import "math"

func f32bits(f float32) uint32 { return math.Float32bits(f) }
func bitsF32(w uint32) float32 { return math.Float32frombits(w) }

func f32Words(src []float32) []uint32 {
	out := make([]uint32, len(src))
	for i, f := range src {
		out[i] = math.Float32bits(f)
	}
	return out
}

func wordsF32(src []uint32) []float32 {
	out := make([]float32, len(src))
	for i, w := range src {
		out[i] = math.Float32frombits(w)
	}
	return out
}

// allocWrite uploads words into a fresh allocation.
func allocWrite(d Driver, words []uint32) (Buf, error) {
	b, err := d.Alloc(uint32(4 * len(words)))
	if err != nil {
		return Buf{}, err
	}
	if err := d.Write(b, words); err != nil {
		return Buf{}, err
	}
	return b, nil
}

// allocWriteF uploads floats into a fresh allocation.
func allocWriteF(d Driver, f []float32) (Buf, error) {
	return allocWrite(d, f32Words(f))
}

// allocZero allocates n zeroed words.
func allocZero(d Driver, n int) (Buf, error) {
	return allocWrite(d, make([]uint32, n))
}

// readWords downloads n words.
func readWords(d Driver, b Buf, n int) ([]uint32, error) {
	out := make([]uint32, n)
	if err := d.Read(out, b); err != nil {
		return nil, err
	}
	return out, nil
}

// readF32 downloads n floats.
func readF32(d Driver, b Buf, n int) ([]float32, error) {
	w, err := readWords(d, b, n)
	if err != nil {
		return nil, err
	}
	return wordsF32(w), nil
}
