package bench

import (
	"gpucmp/internal/kir"
	"gpucmp/internal/sim"
	"gpucmp/internal/workload"
)

const (
	mdMaxNeigh  = 32
	mdCutSq     = float32(200)
	mdLJ1       = float32(1.5)
	mdLJ2       = float32(0.75)
	mdFlopsPerN = 26 // nominal flops per neighbour interaction (SHOC style)
)

// MDKernel builds the Lennard-Jones force kernel with fixed neighbour
// lists. useTexture routes the irregular position gather through the
// texture cache — the CUDA implementation's native choice that Fig. 4
// quantifies.
func MDKernel(useTexture bool) *kir.Kernel {
	b := kir.NewKernel("lj")
	var posX, posY, posZ kir.Buf
	if useTexture {
		posX = b.TexBuffer("posX", kir.F32)
		posY = b.TexBuffer("posY", kir.F32)
		posZ = b.TexBuffer("posZ", kir.F32)
	} else {
		posX = b.GlobalBuffer("posX", kir.F32)
		posY = b.GlobalBuffer("posY", kir.F32)
		posZ = b.GlobalBuffer("posZ", kir.F32)
	}
	neigh := b.GlobalBuffer("neigh", kir.U32)
	fX := b.GlobalBuffer("fX", kir.F32)
	fY := b.GlobalBuffer("fY", kir.F32)
	fZ := b.GlobalBuffer("fZ", kir.F32)
	atoms := b.ScalarParam("atoms", kir.U32)

	i := b.Declare("i", b.GlobalIDX())
	b.If(kir.Lt(i, atoms), func() {
		xi := b.Declare("xi", b.Load(posX, i))
		yi := b.Declare("yi", b.Load(posY, i))
		zi := b.Declare("zi", b.Load(posZ, i))
		fx := b.Declare("fx", kir.F(0))
		fy := b.Declare("fy", kir.F(0))
		fz := b.Declare("fz", kir.F(0))
		b.For("j", kir.U(0), kir.U(mdMaxNeigh), kir.U(1), func(j kir.Expr) {
			jn := b.Declare("jn", b.Load(neigh, kir.Add(kir.Mul(j, atoms), i)))
			dx := b.Declare("dx", kir.Sub(xi, b.Load(posX, jn)))
			dy := b.Declare("dy", kir.Sub(yi, b.Load(posY, jn)))
			dz := b.Declare("dz", kir.Sub(zi, b.Load(posZ, jn)))
			r2 := b.Declare("r2", kir.Add(kir.Add(kir.Mul(dx, dx), kir.Mul(dy, dy)), kir.Mul(dz, dz)))
			b.If(kir.Lt(r2, kir.F(mdCutSq)), func() {
				r2inv := b.Declare("r2inv", kir.Div(kir.F(1), r2))
				r6inv := b.Declare("r6inv", kir.Mul(kir.Mul(r2inv, r2inv), r2inv))
				force := b.Declare("force", kir.Mul(kir.Mul(r2inv, r6inv),
					kir.Sub(kir.Mul(kir.F(mdLJ1), r6inv), kir.F(mdLJ2))))
				b.Assign(fx, kir.Add(fx, kir.Mul(dx, force)))
				b.Assign(fy, kir.Add(fy, kir.Mul(dy, force)))
				b.Assign(fz, kir.Add(fz, kir.Mul(dz, force)))
			})
		})
		b.Store(fX, i, fx)
		b.Store(fY, i, fy)
		b.Store(fZ, i, fz)
	})
	return b.MustBuild()
}

// mdRef computes reference forces on the host in float32 with the same
// operation order as the kernel.
func mdRef(s *workload.MDSystem) (fx, fy, fz []float32) {
	fx = make([]float32, s.Atoms)
	fy = make([]float32, s.Atoms)
	fz = make([]float32, s.Atoms)
	for i := 0; i < s.Atoms; i++ {
		var ax, ay, az float32
		for j := 0; j < s.MaxNeigh; j++ {
			jn := s.Neighbors[j*s.Atoms+i]
			dx := s.X[i] - s.X[jn]
			dy := s.Y[i] - s.Y[jn]
			dz := s.Z[i] - s.Z[jn]
			r2 := dx*dx + dy*dy + dz*dz
			if r2 < mdCutSq {
				r2inv := 1 / r2
				r6inv := r2inv * r2inv * r2inv
				force := r2inv * r6inv * (mdLJ1*r6inv - mdLJ2)
				ax += dx * force
				ay += dy * force
				az += dz * force
			}
		}
		fx[i], fy[i], fz[i] = ax, ay, az
	}
	return fx, fy, fz
}

// RunMD measures molecular-dynamics throughput in GFlops/sec (Table II).
func RunMD(d Driver, cfg Config) (*Result, error) {
	const metric = "GFlops/sec"
	atoms := cfg.scale(16384)
	sys := workload.RandomMD(atoms, mdMaxNeigh, 23)

	k := MDKernel(cfg.UseTexture)
	mod, err := d.Build(k)
	if err != nil {
		return abort(d, "MD", metric, err), nil
	}
	px, err := allocWriteF(d, sys.X)
	if err != nil {
		return abort(d, "MD", metric, err), nil
	}
	py, _ := allocWriteF(d, sys.Y)
	pz, _ := allocWriteF(d, sys.Z)
	nb, err := allocWrite(d, sys.Neighbors)
	if err != nil {
		return abort(d, "MD", metric, err), nil
	}
	ofx, _ := allocZero(d, atoms)
	ofy, _ := allocZero(d, atoms)
	ofz, err := allocZero(d, atoms)
	if err != nil {
		return abort(d, "MD", metric, err), nil
	}

	d.ResetTimer()
	block := 128
	grid := sim.Dim3{X: (atoms + block - 1) / block, Y: 1}
	if err := d.Launch(mod, "lj", grid, sim.Dim3{X: block, Y: 1},
		B(px), B(py), B(pz), B(nb), B(ofx), B(ofy), B(ofz), V(uint32(atoms))); err != nil {
		return abort(d, "MD", metric, err), nil
	}
	kernelSecs := d.KernelTime()

	gx, err := readF32(d, ofx, atoms)
	if err != nil {
		return abort(d, "MD", metric, err), nil
	}
	gy, _ := readF32(d, ofy, atoms)
	gz, _ := readF32(d, ofz, atoms)
	wx, wy, wz := mdRef(sys)
	correct := true
	for i := 0; i < atoms; i++ {
		if !f32eq(gx[i], wx[i], 1e-3) || !f32eq(gy[i], wy[i], 1e-3) || !f32eq(gz[i], wz[i], 1e-3) {
			correct = false
			break
		}
	}

	flops := float64(atoms) * mdMaxNeigh * mdFlopsPerN
	return result(d, "MD", metric, flops/kernelSecs/1e9, correct), nil
}
