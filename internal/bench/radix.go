package bench

import (
	"sort"

	"gpucmp/internal/kir"
	"gpucmp/internal/sim"
	"gpucmp/internal/workload"
)

const (
	rdxBlock     = 256 // work-items per group
	rdxElemsPerT = 4   // keys per work-item
	rdxTile      = rdxBlock * rdxElemsPerT
	rdxDigits    = 16 // 4-bit digits
	rdxPasses    = 4  // 16-bit keys
	rdxHostWarp  = 32 // the warp width BAKED INTO the implementation
)

// radixCountKernel counts digit occurrences per block. Rank bookkeeping is
// warp-synchronous: a serialisation loop over the 32 lanes of a warp — but
// the warp row is derived from the DEVICE's warpSize builtin while the lane
// is masked with the constant 31. On 32-wide hardware each (row, lane)
// slot is unique; on a 64-wide wavefront two active lanes share a row and
// their shared-memory increments collide. That is the paper's Table VI
// "FL" mechanism for RdxS ("the implementation depends on warp-size in
// CUDA, i.e. wavefront-size in APP").
func radixCountKernel() *kir.Kernel {
	b := kir.NewKernel("radixCount")
	keys := b.GlobalBuffer("keys", kir.U32)
	blockCount := b.GlobalBuffer("blockCount", kir.U32)
	shift := b.ScalarParam("shift", kir.U32)
	nblocks := b.ScalarParam("nblocks", kir.U32)
	hist := b.SharedArray("hist", kir.U32, (rdxBlock/rdxHostWarp)*rdxDigits)
	lkey := b.LocalArray("lkey", kir.U32, rdxElemsPerT)
	ldig := b.LocalArray("ldig", kir.U32, rdxElemsPerT)
	b.AssumeWarpWidth(rdxHostWarp)

	tid := kir.Bi(kir.TidX)
	b.If(kir.Lt(tid, kir.U((rdxBlock/rdxHostWarp)*rdxDigits)), func() {
		b.Store(hist, tid, kir.U(0))
	})
	b.Barrier()

	base := b.Declare("base", kir.Add(kir.Mul(kir.Bi(kir.CtaidX), kir.U(rdxTile)), kir.Mul(tid, kir.U(rdxElemsPerT))))
	b.For("e", kir.U(0), kir.U(rdxElemsPerT), kir.U(1), func(e kir.Expr) {
		kv := b.Declare("kv", b.Load(keys, kir.Add(base, e)))
		b.Store(lkey, e, kv)
		b.Store(ldig, e, kir.And(kir.Shr(kv, shift), kir.U(rdxDigits-1)))
	})

	// warp row from the DEVICE width, lane from the assumed width of 32.
	row := b.Declare("row", kir.Div(tid, kir.Bi(kir.WarpSize)))
	lane := b.Declare("lane", kir.And(tid, kir.U(rdxHostWarp-1)))
	b.For("l", kir.U(0), kir.U(rdxHostWarp), kir.U(1), func(l kir.Expr) {
		b.If(kir.Eq(lane, l), func() {
			b.For("e", kir.U(0), kir.U(rdxElemsPerT), kir.U(1), func(e kir.Expr) {
				slot := kir.Add(kir.Mul(row, kir.U(rdxDigits)), b.Load(ldig, e))
				b.Store(hist, slot, kir.Add(b.Load(hist, slot), kir.U(1)))
			})
		})
	})
	b.Barrier()

	b.If(kir.Lt(tid, kir.U(rdxDigits)), func() {
		total := b.Declare("total", kir.U(0))
		b.For("r", kir.U(0), kir.U(rdxBlock/rdxHostWarp), kir.U(1), func(r kir.Expr) {
			b.Assign(total, kir.Add(total, b.Load(hist, kir.Add(kir.Mul(r, kir.U(rdxDigits)), tid))))
		})
		b.Store(blockCount, kir.Add(kir.Mul(tid, nblocks), kir.Bi(kir.CtaidX)), total)
	})
	return b.MustBuild()
}

// radixScatterKernel recomputes ranks with the same warp-synchronous
// scheme and scatters keys to their scanned global positions.
func radixScatterKernel() *kir.Kernel {
	b := kir.NewKernel("radixScatter")
	keys := b.GlobalBuffer("keys", kir.U32)
	outKeys := b.GlobalBuffer("outKeys", kir.U32)
	scanned := b.GlobalBuffer("scanned", kir.U32)
	shift := b.ScalarParam("shift", kir.U32)
	nblocks := b.ScalarParam("nblocks", kir.U32)
	hist := b.SharedArray("hist", kir.U32, (rdxBlock/rdxHostWarp)*rdxDigits)
	rowBase := b.SharedArray("rowBase", kir.U32, (rdxBlock/rdxHostWarp)*rdxDigits)
	lkey := b.LocalArray("lkey", kir.U32, rdxElemsPerT)
	ldig := b.LocalArray("ldig", kir.U32, rdxElemsPerT)
	lrank := b.LocalArray("lrank", kir.U32, rdxElemsPerT)
	b.AssumeWarpWidth(rdxHostWarp)

	tid := kir.Bi(kir.TidX)
	b.If(kir.Lt(tid, kir.U((rdxBlock/rdxHostWarp)*rdxDigits)), func() {
		b.Store(hist, tid, kir.U(0))
	})
	b.Barrier()

	base := b.Declare("base", kir.Add(kir.Mul(kir.Bi(kir.CtaidX), kir.U(rdxTile)), kir.Mul(tid, kir.U(rdxElemsPerT))))
	b.For("e", kir.U(0), kir.U(rdxElemsPerT), kir.U(1), func(e kir.Expr) {
		kv := b.Declare("kv", b.Load(keys, kir.Add(base, e)))
		b.Store(lkey, e, kv)
		b.Store(ldig, e, kir.And(kir.Shr(kv, shift), kir.U(rdxDigits-1)))
	})

	row := b.Declare("row", kir.Div(tid, kir.Bi(kir.WarpSize)))
	lane := b.Declare("lane", kir.And(tid, kir.U(rdxHostWarp-1)))
	b.For("l", kir.U(0), kir.U(rdxHostWarp), kir.U(1), func(l kir.Expr) {
		b.If(kir.Eq(lane, l), func() {
			b.For("e", kir.U(0), kir.U(rdxElemsPerT), kir.U(1), func(e kir.Expr) {
				slot := kir.Add(kir.Mul(row, kir.U(rdxDigits)), b.Load(ldig, e))
				b.Store(lrank, e, b.Load(hist, slot))
				b.Store(hist, slot, kir.Add(b.Load(hist, slot), kir.U(1)))
			})
		})
	})
	b.Barrier()

	// Prefix the per-row histograms so each row knows its in-block base.
	b.If(kir.Lt(tid, kir.U(rdxDigits)), func() {
		acc := b.Declare("acc", kir.U(0))
		b.For("r", kir.U(0), kir.U(rdxBlock/rdxHostWarp), kir.U(1), func(r kir.Expr) {
			slot := kir.Add(kir.Mul(r, kir.U(rdxDigits)), tid)
			b.Store(rowBase, slot, acc)
			b.Assign(acc, kir.Add(acc, b.Load(hist, slot)))
		})
	})
	b.Barrier()

	b.For("e", kir.U(0), kir.U(rdxElemsPerT), kir.U(1), func(e kir.Expr) {
		dg := b.Declare("dg", b.Load(ldig, e))
		slot := kir.Add(kir.Mul(row, kir.U(rdxDigits)), dg)
		pos := b.Declare("pos", kir.Add(
			kir.Add(b.Load(scanned, kir.Add(kir.Mul(dg, nblocks), kir.Bi(kir.CtaidX))), b.Load(rowBase, slot)),
			b.Load(lrank, e)))
		b.Store(outKeys, pos, b.Load(lkey, e))
	})
	return b.MustBuild()
}

// RunRdxS measures radix-sort throughput in MElements/sec (Table II). On
// devices whose wavefront differs from the baked-in warp width of 32 the
// sort completes but produces a wrongly ordered result ("FL").
func RunRdxS(d Driver, cfg Config) (*Result, error) {
	const metric = "MElements/sec"
	nblocks := cfg.scale(16)
	if nblocks < 1 {
		nblocks = 1
	}
	n := nblocks * rdxTile
	keys := workload.NewRNG(59).Keys(n, 1<<16)

	mod, err := d.Build(radixCountKernel(), scanSumsKernel(), radixScatterKernel())
	if err != nil {
		return abort(d, "RdxS", metric, err), nil
	}
	bufA, err := allocWrite(d, keys)
	if err != nil {
		return abort(d, "RdxS", metric, err), nil
	}
	bufB, _ := allocZero(d, n)
	countBuf, err := allocZero(d, rdxDigits*nblocks)
	if err != nil {
		return abort(d, "RdxS", metric, err), nil
	}

	d.ResetTimer()
	src, dst := bufA, bufB
	for pass := 0; pass < rdxPasses; pass++ {
		shift := uint32(4 * pass)
		grid := sim.Dim3{X: nblocks, Y: 1}
		block := sim.Dim3{X: rdxBlock, Y: 1}
		if err := d.Launch(mod, "radixCount", grid, block,
			B(src), B(countBuf), V(shift), V(uint32(nblocks))); err != nil {
			return abort(d, "RdxS", metric, err), nil
		}
		if err := d.Launch(mod, "scanSums", sim.Dim3{X: 1, Y: 1}, sim.Dim3{X: 1, Y: 1},
			B(countBuf), V(uint32(rdxDigits*nblocks))); err != nil {
			return abort(d, "RdxS", metric, err), nil
		}
		if err := d.Launch(mod, "radixScatter", grid, block,
			B(src), B(dst), B(countBuf), V(shift), V(uint32(nblocks))); err != nil {
			return abort(d, "RdxS", metric, err), nil
		}
		src, dst = dst, src
	}
	kernelSecs := d.KernelTime()

	got, err := readWords(d, src, n)
	if err != nil {
		return abort(d, "RdxS", metric, err), nil
	}
	want := append([]uint32(nil), keys...)
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	correct := true
	for i := range want {
		if got[i] != want[i] {
			correct = false
			break
		}
	}

	return result(d, "RdxS", metric, float64(n)/kernelSecs/1e6, correct), nil
}
