package bench

import (
	"math"

	"gpucmp/internal/kir"
	"gpucmp/internal/sim"
	"gpucmp/internal/workload"
)

const (
	fftN       = 512 // points per FFT
	fftThreads = 64  // work-items per FFT: 8 points each
	fftStages  = 9   // log2(fftN)
)

// FFTKernel builds the batched 512-point forward FFT — the "forward"
// kernel whose PTX statistics the paper tabulates in Table V. One
// work-group transforms one 512-point signal: 64 threads, Stockham
// radix-2 with ping-pong shared arrays, per-thread local staging of the
// 8 input/output points (the source of the ld.local/st.local rows in
// Table V), and constant-trip butterfly loops that the CUDA front-end
// fully unrolls while the OpenCL front-end keeps rolled.
func FFTKernel() *kir.Kernel {
	b := kir.NewKernel("forward")
	inRe := b.GlobalBuffer("inRe", kir.F32)
	inIm := b.GlobalBuffer("inIm", kir.F32)
	outRe := b.GlobalBuffer("outRe", kir.F32)
	outIm := b.GlobalBuffer("outIm", kir.F32)

	s0re := b.SharedArray("s0re", kir.F32, fftN)
	s0im := b.SharedArray("s0im", kir.F32, fftN)
	s1re := b.SharedArray("s1re", kir.F32, fftN)
	s1im := b.SharedArray("s1im", kir.F32, fftN)
	lre := b.LocalArray("lre", kir.F32, 8)
	lim := b.LocalArray("lim", kir.F32, 8)

	tid := kir.Bi(kir.TidX)
	base := b.Declare("base", kir.Mul(kir.Bi(kir.CtaidX), kir.U(fftN)))

	// Load 8 points per thread through the local staging arrays.
	b.For("k", kir.U(0), kir.U(8), kir.U(1), func(k kir.Expr) {
		idx := kir.Add(tid, kir.Mul(k, kir.U(fftThreads)))
		b.Store(lre, k, b.Load(inRe, kir.Add(base, idx)))
		b.Store(lim, k, b.Load(inIm, kir.Add(base, idx)))
	})
	b.For("k", kir.U(0), kir.U(8), kir.U(1), func(k kir.Expr) {
		idx := kir.Add(tid, kir.Mul(k, kir.U(fftThreads)))
		b.Store(s0re, idx, b.Load(lre, k))
		b.Store(s0im, idx, b.Load(lim, k))
	})
	b.Barrier()

	// Nine Stockham stages, emitted inline (source-level), each with a
	// rolled-or-unrolled 4-butterfly loop per thread.
	shared := [2][2]kir.Buf{{s0re, s0im}, {s1re, s1im}}
	for s := 0; s < fftStages; s++ {
		src := shared[s%2]
		dst := shared[1-s%2]
		m := uint32(1) << uint(s) // sub-transform size
		b.For("u", kir.U(0), kir.U(4), kir.U(1), func(u kir.Expr) {
			idx := b.Declare("idx", kir.Add(tid, kir.Mul(u, kir.U(fftThreads))))
			jm := b.Declare("jm", kir.And(idx, kir.U(^(m-1))))
			k := b.Declare("k", kir.And(idx, kir.U(m-1)))
			ang := b.Declare("ang", kir.Mul(kir.CastTo(kir.F32, jm), kir.F(-math.Pi/float32(fftN/2))))
			wr := b.Declare("wr", kir.Cos(ang))
			wi := b.Declare("wi", kir.Sin(ang))
			c0r := b.Declare("c0r", b.Load(src[0], idx))
			c0i := b.Declare("c0i", b.Load(src[1], idx))
			c1r := b.Declare("c1r", b.Load(src[0], kir.Add(idx, kir.U(fftN/2))))
			c1i := b.Declare("c1i", b.Load(src[1], kir.Add(idx, kir.U(fftN/2))))
			o1 := b.Declare("o1", kir.Add(k, kir.Mul(jm, kir.U(2))))
			b.Store(dst[0], o1, kir.Add(c0r, c1r))
			b.Store(dst[1], o1, kir.Add(c0i, c1i))
			dr := b.Declare("dr", kir.Sub(c0r, c1r))
			di := b.Declare("di", kir.Sub(c0i, c1i))
			o2 := kir.Add(o1, kir.U(m))
			b.Store(dst[0], o2, kir.Sub(kir.Mul(dr, wr), kir.Mul(di, wi)))
			b.Store(dst[1], o2, kir.Add(kir.Mul(dr, wi), kir.Mul(di, wr)))
		})
		b.Barrier()
	}

	// Store through the local staging arrays. After 9 stages the result
	// sits in the s1 pair (odd stage count).
	final := shared[fftStages%2]
	b.For("k", kir.U(0), kir.U(8), kir.U(1), func(k kir.Expr) {
		idx := kir.Add(tid, kir.Mul(k, kir.U(fftThreads)))
		b.Store(lre, k, b.Load(final[0], idx))
		b.Store(lim, k, b.Load(final[1], idx))
	})
	b.For("k", kir.U(0), kir.U(8), kir.U(1), func(k kir.Expr) {
		idx := kir.Add(tid, kir.Mul(k, kir.U(fftThreads)))
		b.Store(outRe, kir.Add(base, idx), b.Load(lre, k))
		b.Store(outIm, kir.Add(base, idx), b.Load(lim, k))
	})
	return b.MustBuild()
}

// fftRef runs the same Stockham schedule on the host in float64.
func fftRef(re, im []float32) (outRe, outIm []float32) {
	n := len(re)
	xr := make([]float64, n)
	xi := make([]float64, n)
	yr := make([]float64, n)
	yi := make([]float64, n)
	for i := range re {
		xr[i], xi[i] = float64(re[i]), float64(im[i])
	}
	for s := 0; m(s) < uint32(n); s++ {
		mm := int(m(s))
		for idx := 0; idx < n/2; idx++ {
			jm := idx &^ (mm - 1)
			k := idx & (mm - 1)
			ang := -math.Pi * float64(jm) / float64(n/2)
			wr, wi := math.Cos(ang), math.Sin(ang)
			c0r, c0i := xr[idx], xi[idx]
			c1r, c1i := xr[idx+n/2], xi[idx+n/2]
			o1 := k + 2*jm
			yr[o1], yi[o1] = c0r+c1r, c0i+c1i
			dr, di := c0r-c1r, c0i-c1i
			yr[o1+mm] = dr*wr - di*wi
			yi[o1+mm] = dr*wi + di*wr
		}
		xr, yr = yr, xr
		xi, yi = yi, xi
	}
	outRe = make([]float32, n)
	outIm = make([]float32, n)
	for i := range outRe {
		outRe[i], outIm[i] = float32(xr[i]), float32(xi[i])
	}
	return outRe, outIm
}

func m(s int) uint32 { return 1 << uint(s) }

// RunFFT measures batched-FFT throughput in GFlops/sec using the standard
// 5·N·log2(N) operation count (Table II).
func RunFFT(d Driver, cfg Config) (*Result, error) {
	const metric = "GFlops/sec"
	batch := cfg.scale(256)
	re, im := workload.SignalBatch(batch, fftN, 17)

	k := FFTKernel()
	mod, err := d.Build(k)
	if err != nil {
		return abort(d, "FFT", metric, err), nil
	}
	inRe, err := allocWriteF(d, re)
	if err != nil {
		return abort(d, "FFT", metric, err), nil
	}
	inIm, err := allocWriteF(d, im)
	if err != nil {
		return abort(d, "FFT", metric, err), nil
	}
	outRe, err := allocZero(d, batch*fftN)
	if err != nil {
		return abort(d, "FFT", metric, err), nil
	}
	outIm, err := allocZero(d, batch*fftN)
	if err != nil {
		return abort(d, "FFT", metric, err), nil
	}

	d.ResetTimer()
	if err := d.Launch(mod, "forward", sim.Dim3{X: batch, Y: 1}, sim.Dim3{X: fftThreads, Y: 1},
		B(inRe), B(inIm), B(outRe), B(outIm)); err != nil {
		return abort(d, "FFT", metric, err), nil
	}
	kernelSecs := d.KernelTime()

	gotRe, err := readF32(d, outRe, batch*fftN)
	if err != nil {
		return abort(d, "FFT", metric, err), nil
	}
	gotIm, err := readF32(d, outIm, batch*fftN)
	if err != nil {
		return abort(d, "FFT", metric, err), nil
	}
	correct := true
	for bi := 0; bi < batch && correct; bi++ {
		wr, wi := fftRef(re[bi*fftN:(bi+1)*fftN], im[bi*fftN:(bi+1)*fftN])
		for i := 0; i < fftN; i++ {
			if !f32eq(gotRe[bi*fftN+i], wr[i], 2e-2) || !f32eq(gotIm[bi*fftN+i], wi[i], 2e-2) {
				correct = false
				break
			}
		}
	}

	flops := 5 * float64(batch*fftN) * fftStages
	return result(d, "FFT", metric, flops/kernelSecs/1e9, correct), nil
}
