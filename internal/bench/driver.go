package bench

import (
	"gpucmp/internal/arch"
	"gpucmp/internal/cuda"
	"gpucmp/internal/kir"
	"gpucmp/internal/opencl"
	"gpucmp/internal/perfmodel"
	"gpucmp/internal/ptx"
	"gpucmp/internal/sim"
)

// CUDADriver adapts a cuda.Context to the Driver interface.
type CUDADriver struct {
	Ctx *cuda.Context

	// built records every kernel Build compiled, in source order, so
	// KernelReports can attach the compiler story to the benchmark result.
	built []*ptx.Kernel
}

// NewCUDADriver opens a CUDA context on the device.
func NewCUDADriver(a *arch.Device) (*CUDADriver, error) {
	ctx, err := cuda.NewContext(a)
	if err != nil {
		return nil, err
	}
	return &CUDADriver{Ctx: ctx}, nil
}

// Name returns "cuda".
func (d *CUDADriver) Name() string { return "cuda" }

// Arch returns the device description.
func (d *CUDADriver) Arch() *arch.Device { return d.Ctx.Arch() }

// Alloc allocates device memory.
func (d *CUDADriver) Alloc(bytes uint32) (Buf, error) {
	p, err := d.Ctx.Malloc(bytes)
	if err != nil {
		return Buf{}, err
	}
	return Buf{Addr: p.Addr, Size: p.Size}, nil
}

// Write copies host words to the device.
func (d *CUDADriver) Write(dst Buf, words []uint32) error {
	return d.Ctx.MemcpyHtoD(cuda.DevicePtr{Addr: dst.Addr, Size: dst.Size}, words)
}

// Read copies device words to the host.
func (d *CUDADriver) Read(dst []uint32, src Buf) error {
	return d.Ctx.MemcpyDtoH(dst, cuda.DevicePtr{Addr: src.Addr, Size: src.Size})
}

type cudaModule struct{ m *cuda.Module }

func (m cudaModule) Kernel(name string) (*ptx.Kernel, error) { return m.m.Kernel(name) }

// Build compiles KIR kernels with the CUDA front-end.
func (d *CUDADriver) Build(kernels ...*kir.Kernel) (Module, error) {
	m, err := d.Ctx.CompileModule("bench", kernels)
	if err != nil {
		return nil, err
	}
	mod := cudaModule{m: m}
	// Record in the caller's kernel order, which is deterministic (module
	// maps are not).
	for _, src := range kernels {
		pk, err := mod.Kernel(src.Name)
		if err != nil {
			return nil, err
		}
		d.built = append(d.built, pk)
	}
	return mod, nil
}

// Launch runs a kernel.
func (d *CUDADriver) Launch(m Module, kernel string, grid, block sim.Dim3, args ...Arg) error {
	k, err := m.Kernel(kernel)
	if err != nil {
		return err
	}
	cargs := make([]cuda.Arg, len(args))
	for i, a := range args {
		if a.IsBuf {
			cargs[i] = cuda.Ptr(cuda.DevicePtr{Addr: a.Buf.Addr, Size: a.Buf.Size})
		} else {
			cargs[i] = cuda.U32(a.Val)
		}
	}
	return d.Ctx.LaunchKernel(k, grid, block, cargs...)
}

// KernelTime returns simulated kernel-only seconds.
func (d *CUDADriver) KernelTime() float64 { return d.Ctx.KernelTime() }

// Elapsed returns simulated end-to-end seconds.
func (d *CUDADriver) Elapsed() float64 { return d.Ctx.Elapsed() }

// Traces returns launch traces.
func (d *CUDADriver) Traces() []*sim.Trace { return d.Ctx.Traces() }

// ResetTimer clears the clock.
func (d *CUDADriver) ResetTimer() { d.Ctx.ResetTimer() }

// OpenCLDriver adapts an opencl context+queue to the Driver interface.
type OpenCLDriver struct {
	Ctx   *opencl.Context
	Queue *opencl.CommandQueue

	built []*ptx.Kernel // see CUDADriver.built
}

// NewOpenCLDriver opens an OpenCL context on the device.
func NewOpenCLDriver(a *arch.Device) (*OpenCLDriver, error) {
	ctx, err := opencl.CreateContext(&opencl.Device{Arch: a})
	if err != nil {
		return nil, err
	}
	return &OpenCLDriver{Ctx: ctx, Queue: ctx.CreateCommandQueue()}, nil
}

// Name returns "opencl".
func (d *OpenCLDriver) Name() string { return "opencl" }

// Arch returns the device description.
func (d *OpenCLDriver) Arch() *arch.Device { return d.Ctx.Arch() }

// Alloc allocates a buffer.
func (d *OpenCLDriver) Alloc(bytes uint32) (Buf, error) {
	b, err := d.Ctx.CreateBuffer(bytes)
	if err != nil {
		return Buf{}, err
	}
	return Buf{Addr: b.Addr, Size: b.Size}, nil
}

// Write copies host words into a buffer.
func (d *OpenCLDriver) Write(dst Buf, words []uint32) error {
	return d.Queue.EnqueueWriteBuffer(opencl.Buffer{Addr: dst.Addr, Size: dst.Size}, words)
}

// Read copies a buffer back to the host.
func (d *OpenCLDriver) Read(dst []uint32, src Buf) error {
	return d.Queue.EnqueueReadBuffer(dst, opencl.Buffer{Addr: src.Addr, Size: src.Size})
}

type clModule struct{ p *opencl.Program }

func (m clModule) Kernel(name string) (*ptx.Kernel, error) {
	k, err := m.p.CreateKernel(name)
	if err != nil {
		return nil, err
	}
	return k.PTX(), nil
}

// Build compiles KIR kernels with the OpenCL front-end.
func (d *OpenCLDriver) Build(kernels ...*kir.Kernel) (Module, error) {
	p := d.Ctx.CreateProgram(kernels...)
	if err := p.Build(); err != nil {
		return nil, err
	}
	mod := clModule{p: p}
	for _, src := range kernels {
		pk, err := mod.Kernel(src.Name)
		if err != nil {
			return nil, err
		}
		d.built = append(d.built, pk)
	}
	return mod, nil
}

// Launch converts grid x block to NDRange global/local sizes and enqueues.
func (d *OpenCLDriver) Launch(m Module, kernel string, grid, block sim.Dim3, args ...Arg) error {
	cm := m.(clModule)
	k, err := cm.p.CreateKernel(kernel)
	if err != nil {
		return err
	}
	for i, a := range args {
		if a.IsBuf {
			if err := k.SetArgBuffer(i, opencl.Buffer{Addr: a.Buf.Addr, Size: a.Buf.Size}); err != nil {
				return err
			}
		} else if err := k.SetArgU32(i, a.Val); err != nil {
			return err
		}
	}
	global := sim.Dim3{X: grid.X * block.X, Y: grid.Y * block.Y}
	_, err = d.Queue.EnqueueNDRangeKernel(k, global, block)
	return err
}

// KernelTime returns simulated kernel-only seconds.
func (d *OpenCLDriver) KernelTime() float64 { return d.Queue.KernelTime() }

// Elapsed returns simulated end-to-end seconds.
func (d *OpenCLDriver) Elapsed() float64 { return d.Queue.Elapsed() }

// Traces returns launch traces.
func (d *OpenCLDriver) Traces() []*sim.Trace { return d.Queue.Traces() }

// ResetTimer clears the clock.
func (d *OpenCLDriver) ResetTimer() { d.Queue.ResetTimer() }

// NewDriver opens a driver by toolchain name.
func NewDriver(toolchain string, a *arch.Device) (Driver, error) {
	if toolchain == "cuda" {
		return NewCUDADriver(a)
	}
	return NewOpenCLDriver(a)
}

// SimDevice exposes the simulated device underneath a driver — the seam
// the scheduler's watchdog uses to cancel a runaway kernel (sim.Device.
// Cancel) and the fault injector hooks into. Returns nil for drivers that
// do not wrap a simulated device.
func SimDevice(d Driver) *sim.Device {
	switch dd := d.(type) {
	case *CUDADriver:
		return dd.Ctx.Device()
	case *OpenCLDriver:
		return dd.Ctx.Device()
	default:
		return nil
	}
}

// Breakdowns exposes the per-launch timing decompositions of a driver.
func Breakdowns(d Driver) []perfmodel.Breakdown {
	switch dd := d.(type) {
	case *CUDADriver:
		return dd.Ctx.Breakdowns()
	case *OpenCLDriver:
		return dd.Queue.Breakdowns()
	default:
		return nil
	}
}

// TransferSeconds exposes the host<->device copy time a driver has
// accumulated since its last ResetTimer. Zero for drivers that do not
// track transfers.
func TransferSeconds(d Driver) float64 {
	switch dd := d.(type) {
	case *CUDADriver:
		return dd.Ctx.TransferTime()
	case *OpenCLDriver:
		return dd.Queue.TransferTime()
	default:
		return 0
	}
}

// ExecSeconds sums the per-launch execution time excluding launch overhead
// — the event-timer view (CL_PROFILING_COMMAND_START to _END) that the
// synthetic peak probes report.
func ExecSeconds(d Driver) float64 {
	sum := 0.0
	for _, b := range Breakdowns(d) {
		sum += b.Total - b.Launch
	}
	return sum
}
