package bench

import (
	"gpucmp/internal/kir"
	"gpucmp/internal/sim"
	"gpucmp/internal/workload"
)

// SPMVScalarKernel builds the CSR-scalar kernel: one thread per row.
// useTexture routes the x-vector gather through the texture cache (the
// CUDA implementation's native choice, Fig. 4).
func SPMVScalarKernel(useTexture bool) *kir.Kernel {
	b := kir.NewKernel("spmv_csr_scalar")
	vals := b.GlobalBuffer("vals", kir.F32)
	cols := b.GlobalBuffer("cols", kir.U32)
	rowPtr := b.GlobalBuffer("rowPtr", kir.U32)
	var x kir.Buf
	if useTexture {
		x = b.TexBuffer("x", kir.F32)
	} else {
		x = b.GlobalBuffer("x", kir.F32)
	}
	y := b.GlobalBuffer("y", kir.F32)
	rows := b.ScalarParam("rows", kir.U32)

	r := b.Declare("r", b.GlobalIDX())
	b.If(kir.Lt(r, rows), func() {
		sum := b.Declare("sum", kir.F(0))
		start := b.Declare("start", b.Load(rowPtr, r))
		end := b.Declare("end", b.Load(rowPtr, kir.Add(r, kir.U(1))))
		b.For("jj", start, end, kir.U(1), func(jj kir.Expr) {
			b.Assign(sum, kir.Add(sum, kir.Mul(b.Load(vals, jj), b.Load(x, b.Load(cols, jj)))))
		})
		b.Store(y, r, sum)
	})
	return b.MustBuild()
}

// SPMVVectorKernel builds the CSR-vector kernel: one 32-wide "warp" of
// work-items cooperates on each row, with a warp-synchronous shared-memory
// reduction. This is the warp-oriented optimisation Section V shows
// collapsing on the CPU device, where most of the 32 lanes idle.
func SPMVVectorKernel(useTexture bool) *kir.Kernel {
	b := kir.NewKernel("spmv_csr_vector")
	vals := b.GlobalBuffer("vals", kir.F32)
	cols := b.GlobalBuffer("cols", kir.U32)
	rowPtr := b.GlobalBuffer("rowPtr", kir.U32)
	var x kir.Buf
	if useTexture {
		x = b.TexBuffer("x", kir.F32)
	} else {
		x = b.GlobalBuffer("x", kir.F32)
	}
	y := b.GlobalBuffer("y", kir.F32)
	rows := b.ScalarParam("rows", kir.U32)
	part := b.SharedArray("part", kir.F32, 128)
	b.AssumeWarpWidth(32)

	tid := kir.Bi(kir.TidX)
	gid := b.Declare("gid", b.GlobalIDX())
	row := b.Declare("row", kir.Shr(gid, kir.U(5))) // gid / 32
	lane := b.Declare("lane", kir.And(gid, kir.U(31)))
	b.If(kir.Lt(row, rows), func() {
		sum := b.Declare("sum", kir.F(0))
		start := b.Declare("start", kir.Add(b.Load(rowPtr, row), lane))
		end := b.Declare("end", b.Load(rowPtr, kir.Add(row, kir.U(1))))
		b.For("jj", start, end, kir.U(32), func(jj kir.Expr) {
			b.Assign(sum, kir.Add(sum, kir.Mul(b.Load(vals, jj), b.Load(x, b.Load(cols, jj)))))
		})
		b.Store(part, tid, sum)
		// Warp-synchronous tree reduction over the 32 lanes (no barriers:
		// correct only within one hardware warp).
		for stride := uint32(16); stride >= 1; stride /= 2 {
			b.If(kir.Lt(lane, kir.U(stride)), func() {
				b.Store(part, tid, kir.Add(b.Load(part, tid), b.Load(part, kir.Add(tid, kir.U(stride)))))
			})
		}
		b.If(kir.Eq(lane, kir.U(0)), func() {
			b.Store(y, row, b.Load(part, tid))
		})
	})
	return b.MustBuild()
}

// spmvRef computes the reference product.
func spmvRef(m *workload.CSR, x []float32) []float32 {
	y := make([]float32, m.Rows)
	for r := 0; r < m.Rows; r++ {
		var sum float32
		for jj := m.RowPtr[r]; jj < m.RowPtr[r+1]; jj++ {
			sum += m.Values[jj] * x[m.ColIdx[jj]]
		}
		y[r] = sum
	}
	return y
}

// RunSPMV measures sparse matrix-vector throughput in GFlops/sec: 2 flops
// per stored element (Table II).
func RunSPMV(d Driver, cfg Config) (*Result, error) {
	const metric = "GFlops/sec"
	rows := cfg.scale(16384)
	mtx := workload.RandomCSR(rows, rows, 8, 29)
	x := workload.NewRNG(31).Floats(rows, 0, 1)

	var k *kir.Kernel
	if cfg.VectorSPMV {
		k = SPMVVectorKernel(cfg.UseTexture)
	} else {
		k = SPMVScalarKernel(cfg.UseTexture)
	}
	mod, err := d.Build(k)
	if err != nil {
		return abort(d, "SPMV", metric, err), nil
	}
	vb, err := allocWriteF(d, mtx.Values)
	if err != nil {
		return abort(d, "SPMV", metric, err), nil
	}
	cb, _ := allocWrite(d, mtx.ColIdx)
	rb, _ := allocWrite(d, mtx.RowPtr)
	xb, _ := allocWriteF(d, x)
	yb, err := allocZero(d, rows)
	if err != nil {
		return abort(d, "SPMV", metric, err), nil
	}

	d.ResetTimer()
	block := 128
	threads := rows
	kernelName := "spmv_csr_scalar"
	if cfg.VectorSPMV {
		threads = rows * 32
		kernelName = "spmv_csr_vector"
	}
	grid := sim.Dim3{X: (threads + block - 1) / block, Y: 1}
	if err := d.Launch(mod, kernelName, grid, sim.Dim3{X: block, Y: 1},
		B(vb), B(cb), B(rb), B(xb), B(yb), V(uint32(rows))); err != nil {
		return abort(d, "SPMV", metric, err), nil
	}
	kernelSecs := d.KernelTime()

	got, err := readF32(d, yb, rows)
	if err != nil {
		return abort(d, "SPMV", metric, err), nil
	}
	want := spmvRef(mtx, x)
	correct := true
	for i := range want {
		if !f32eq(got[i], want[i], 1e-3) {
			correct = false
			break
		}
	}

	flops := 2 * float64(mtx.NNZ())
	return result(d, "SPMV", metric, flops/kernelSecs/1e9, correct), nil
}
