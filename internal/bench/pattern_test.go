package bench

import (
	"testing"

	"gpucmp/internal/arch"
	"gpucmp/internal/compiler"
	"gpucmp/internal/pattern"
)

// gpuDevices are the paper's three GPUs — the devices the pattern parity
// acceptance gate covers.
func gpuDevices() []*arch.Device {
	return []*arch.Device{arch.GTX480(), arch.GTX280(), arch.HD5870()}
}

// TestPatternParityBitIdentical is the in-tree parity gate: on every GPU
// device, every pattern-portable benchmark's canonical lowering must
// reproduce the hand-written kernels' output bit for bit through the full
// compiler+simulator stack.
func TestPatternParityBitIdentical(t *testing.T) {
	cfg := Config{Scale: 64}
	for _, name := range PatternBenchNames() {
		for _, a := range gpuDevices() {
			toolchains := []string{"opencl"}
			if a.Vendor == "NVIDIA" {
				toolchains = append(toolchains, "cuda")
			}
			for _, tc := range toolchains {
				name, a, tc := name, a, tc
				t.Run(name+"/"+a.Name+"/"+tc, func(t *testing.T) {
					t.Parallel()
					hand, pat, err := PatternParity(tc, a, name, cfg)
					if err != nil {
						t.Fatal(err)
					}
					if len(hand) != len(pat) {
						t.Fatalf("output sizes differ: hand %d, pattern %d", len(hand), len(pat))
					}
					for i := range hand {
						if hand[i] != pat[i] {
							t.Fatalf("word %d: hand %#x, pattern %#x", i, hand[i], pat[i])
						}
					}
				})
			}
		}
	}
}

// TestPatternBenchRunsThroughDriver checks the Config.Pattern seam end to
// end: each pattern benchmark runs through the ordinary Run* entry point
// and passes its own correctness check, at the canonical schedule and at
// one non-canonical schedule from the rule space.
func TestPatternBenchRunsThroughDriver(t *testing.T) {
	for _, name := range PatternBenchNames() {
		space := PatternSpace(name)
		if len(space) < 2 {
			t.Fatalf("%s: rule space has %d schedules", name, len(space))
		}
		for _, mangle := range []string{space[0], space[len(space)-1]} {
			name, mangle := name, mangle
			t.Run(name+"/"+mangle, func(t *testing.T) {
				t.Parallel()
				d, err := NewDriver("opencl", arch.GTX480())
				if err != nil {
					t.Fatal(err)
				}
				spec, err := SpecByName(name)
				if err != nil {
					t.Fatal(err)
				}
				res, err := spec.Run(d, Config{Scale: 64, Pattern: mangle})
				if err != nil {
					t.Fatal(err)
				}
				if res.Err != nil {
					t.Fatalf("pattern run aborted: %v", res.Err)
				}
				if !res.Correct {
					t.Fatal("pattern run produced wrong output")
				}
			})
		}
	}
}

// TestPatternBenchRejectsBadSchedules: a malformed or inapplicable mangle
// must surface as an ABT result, not a panic or a silent hand-path run.
func TestPatternBenchRejectsBadSchedules(t *testing.T) {
	d, err := NewDriver("opencl", arch.GTX480())
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunReduce(d, Config{Scale: 64, Pattern: "not-a-mangle"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Err == nil {
		t.Fatal("bad mangle should abort the run")
	}
	// Reduce rejects coarsening; a structurally valid but inapplicable
	// schedule must abort too.
	res, err = RunReduce(d, Config{Scale: 64, Pattern: "b256.c2.u0.f1.r1.t0.k0"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Err == nil {
		t.Fatal("inapplicable schedule should abort the run")
	}
}

// TestPatternSchedulesDoNotAliasInCompileCache pins the cache-key story:
// the schedule mangle is part of every generated kernel's name (and
// therefore its formatted source, the compile-cache key), so re-running a
// schedule hits the cache while a different schedule misses.
func TestPatternSchedulesDoNotAliasInCompileCache(t *testing.T) {
	compiler.ResetCompileCache()
	defer compiler.ResetCompileCache()

	run := func(mangle string) {
		t.Helper()
		d, err := NewDriver("opencl", arch.GTX480())
		if err != nil {
			t.Fatal(err)
		}
		res, err := RunReduce(d, Config{Scale: 256, Pattern: mangle})
		if err != nil {
			t.Fatal(err)
		}
		if res.Err != nil {
			t.Fatalf("%s: %v", mangle, res.Err)
		}
	}

	space := PatternSpace("Reduce")
	a, b := space[0], space[len(space)-1]

	run(a)
	_, missesAfterA := compiler.CompileCacheStats()
	run(a)
	hits, misses := compiler.CompileCacheStats()
	if misses != missesAfterA {
		t.Fatalf("re-running schedule %s missed the compile cache (misses %d -> %d)", a, missesAfterA, misses)
	}
	if hits == 0 {
		t.Fatalf("re-running schedule %s produced no cache hits", a)
	}
	run(b)
	_, missesAfterB := compiler.CompileCacheStats()
	if missesAfterB == missesAfterA {
		t.Fatalf("schedules %s and %s aliased in the compile cache", a, b)
	}
}

// TestPatternProgramsValidate: the seam's five programs are structurally
// valid and their schedule spaces all contain the canonical schedule.
func TestPatternProgramsValidate(t *testing.T) {
	for _, name := range PatternBenchNames() {
		p, ok := PatternProgram(name)
		if !ok {
			t.Fatalf("%s: no program", name)
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		canon, ok := PatternCanonical(name)
		if !ok {
			t.Fatalf("%s: no canonical schedule", name)
		}
		space := PatternSpace(name)
		if len(space) == 0 || space[0] != canon {
			t.Fatalf("%s: space %v does not start with canonical %s", name, space, canon)
		}
		if !IsPatternBench(name) {
			t.Fatalf("%s: IsPatternBench false", name)
		}
		if _, err := pattern.ParseSchedule(canon); err != nil {
			t.Fatalf("%s: canonical mangle unparseable: %v", name, err)
		}
	}
	if IsPatternBench("FFT") {
		t.Fatal("FFT is not pattern-portable")
	}
}
