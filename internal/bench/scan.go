package bench

import (
	"gpucmp/internal/kir"
	"gpucmp/internal/sim"
	"gpucmp/internal/workload"
)

const scanBlock = 256

// scanBlockKernel builds the work-efficient Blelloch exclusive scan over
// one 256-element tile per work-group, emitting each group's total into
// blockSums.
func scanBlockKernel() *kir.Kernel {
	b := kir.NewKernel("scanBlock")
	in := b.GlobalBuffer("in", kir.U32)
	out := b.GlobalBuffer("out", kir.U32)
	sums := b.GlobalBuffer("sums", kir.U32)
	tmp := b.SharedArray("tmp", kir.U32, scanBlock)
	tid := kir.Bi(kir.TidX)

	gid := b.Declare("gid", b.GlobalIDX())
	b.Store(tmp, tid, b.Load(in, gid))
	b.Barrier()

	// Up-sweep: 8 rounds, d = 128 >> p, offset = 1 << p.
	b.For("p", kir.U(0), kir.U(8), kir.U(1), func(p kir.Expr) {
		dd := kir.Shr(kir.U(scanBlock/2), p)
		off := kir.Shl(kir.U(1), p)
		b.If(kir.Lt(tid, dd), func() {
			ai := b.Declare("ai", kir.Sub(kir.Mul(off, kir.Add(kir.Mul(tid, kir.U(2)), kir.U(1))), kir.U(1)))
			bi := b.Declare("bi", kir.Sub(kir.Mul(off, kir.Add(kir.Mul(tid, kir.U(2)), kir.U(2))), kir.U(1)))
			b.Store(tmp, bi, kir.Add(b.Load(tmp, bi), b.Load(tmp, ai)))
		})
		b.Barrier()
	})
	b.If(kir.Eq(tid, kir.U(0)), func() {
		b.Store(sums, kir.Bi(kir.CtaidX), b.Load(tmp, kir.U(scanBlock-1)))
		b.Store(tmp, kir.U(scanBlock-1), kir.U(0))
	})
	b.Barrier()
	// Down-sweep: d = 1 << q, offset = 128 >> q.
	b.For("q", kir.U(0), kir.U(8), kir.U(1), func(q kir.Expr) {
		dd := kir.Shl(kir.U(1), q)
		off := kir.Shr(kir.U(scanBlock/2), q)
		b.If(kir.Lt(tid, dd), func() {
			ai := b.Declare("ai", kir.Sub(kir.Mul(off, kir.Add(kir.Mul(tid, kir.U(2)), kir.U(1))), kir.U(1)))
			bi := b.Declare("bi", kir.Sub(kir.Mul(off, kir.Add(kir.Mul(tid, kir.U(2)), kir.U(2))), kir.U(1)))
			t := b.Declare("t", b.Load(tmp, ai))
			b.Store(tmp, ai, b.Load(tmp, bi))
			b.Store(tmp, bi, kir.Add(b.Load(tmp, bi), t))
		})
		b.Barrier()
	})
	b.Store(out, gid, b.Load(tmp, tid))
	return b.MustBuild()
}

// scanSumsKernel scans the per-block sums with one thread (the sums array
// is tiny; this mirrors the small second-level pass of multi-level scans).
func scanSumsKernel() *kir.Kernel {
	b := kir.NewKernel("scanSums")
	sums := b.GlobalBuffer("sums", kir.U32)
	n := b.ScalarParam("n", kir.U32)
	gid := b.Declare("gid", b.GlobalIDX())
	b.If(kir.Eq(gid, kir.U(0)), func() {
		acc := b.Declare("acc", kir.U(0))
		b.For("i", kir.U(0), n, kir.U(1), func(i kir.Expr) {
			v := b.Declare("v", b.Load(sums, i))
			b.Store(sums, i, acc)
			b.Assign(acc, kir.Add(acc, v))
		})
	})
	return b.MustBuild()
}

// scanAddKernel adds each group's scanned base to its tile.
func scanAddKernel() *kir.Kernel {
	b := kir.NewKernel("uniformAdd")
	out := b.GlobalBuffer("out", kir.U32)
	sums := b.GlobalBuffer("sums", kir.U32)
	gid := b.Declare("gid", b.GlobalIDX())
	b.Store(out, gid, kir.Add(b.Load(out, gid), b.Load(sums, kir.Bi(kir.CtaidX))))
	return b.MustBuild()
}

// RunScan measures exclusive prefix-sum throughput in MElements/sec
// (Table II) using the three-kernel multi-level scan.
func RunScan(d Driver, cfg Config) (*Result, error) {
	if cfg.Pattern != "" {
		return runPatternScan(d, cfg)
	}
	const metric = "MElements/sec"
	n := cfg.scale(256 * 1024)
	n = (n / scanBlock) * scanBlock
	if n < scanBlock {
		n = scanBlock
	}
	groups := n / scanBlock
	keys := workload.NewRNG(47).Keys(n, 1000)

	mod, err := d.Build(scanBlockKernel(), scanSumsKernel(), scanAddKernel())
	if err != nil {
		return abort(d, "Scan", metric, err), nil
	}
	inBuf, err := allocWrite(d, keys)
	if err != nil {
		return abort(d, "Scan", metric, err), nil
	}
	outBuf, _ := allocZero(d, n)
	sumBuf, err := allocZero(d, groups)
	if err != nil {
		return abort(d, "Scan", metric, err), nil
	}

	d.ResetTimer()
	if err := d.Launch(mod, "scanBlock", sim.Dim3{X: groups, Y: 1}, sim.Dim3{X: scanBlock, Y: 1},
		B(inBuf), B(outBuf), B(sumBuf)); err != nil {
		return abort(d, "Scan", metric, err), nil
	}
	if err := d.Launch(mod, "scanSums", sim.Dim3{X: 1, Y: 1}, sim.Dim3{X: 1, Y: 1},
		B(sumBuf), V(uint32(groups))); err != nil {
		return abort(d, "Scan", metric, err), nil
	}
	if err := d.Launch(mod, "uniformAdd", sim.Dim3{X: groups, Y: 1}, sim.Dim3{X: scanBlock, Y: 1},
		B(outBuf), B(sumBuf)); err != nil {
		return abort(d, "Scan", metric, err), nil
	}
	kernelSecs := d.KernelTime()

	got, err := readWords(d, outBuf, n)
	if err != nil {
		return abort(d, "Scan", metric, err), nil
	}
	correct := true
	var acc uint32
	for i, k := range keys {
		if got[i] != acc {
			correct = false
			break
		}
		acc += k
	}

	return result(d, "Scan", metric, float64(n)/kernelSecs/1e6, correct), nil
}
