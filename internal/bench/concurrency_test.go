package bench

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"gpucmp/internal/arch"
)

// TestConcurrentLaunchesAreDeterministic runs the same kernel from many
// goroutines — each on a fresh simulated device of the same family — and
// asserts the results and per-launch Trace counters are bit-identical to a
// sequential baseline. This is the determinism contract the scheduler's
// result cache and singleflight dedup rest on; run it under -race to also
// prove the launches share no mutable state.
func TestConcurrentLaunchesAreDeterministic(t *testing.T) {
	const goroutines = 16
	cfg := Config{Scale: 16}

	cases := []struct {
		benchmark string
		toolchain string
		device    func() *arch.Device
	}{
		{"Reduce", "cuda", arch.GTX480},
		{"Reduce", "opencl", arch.GTX480},
		{"TranP", "opencl", arch.HD5870},
	}
	for _, tc := range cases {
		t.Run(fmt.Sprintf("%s/%s/%s", tc.benchmark, tc.toolchain, tc.device().Name), func(t *testing.T) {
			spec, err := SpecByName(tc.benchmark)
			if err != nil {
				t.Fatal(err)
			}
			run := func() *Result {
				d, err := NewDriver(tc.toolchain, tc.device())
				if err != nil {
					t.Error(err)
					return nil
				}
				res, err := spec.Run(d, cfg)
				if err != nil {
					t.Error(err)
					return nil
				}
				return res
			}

			want := run() // sequential baseline
			if want == nil {
				t.FailNow()
			}

			got := make([]*Result, goroutines)
			var wg sync.WaitGroup
			for i := range got {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					got[i] = run()
				}(i)
			}
			wg.Wait()

			for i, res := range got {
				if res == nil {
					t.Fatalf("goroutine %d failed", i)
				}
				if res.Value != want.Value || res.KernelSeconds != want.KernelSeconds ||
					res.EndToEndSeconds != want.EndToEndSeconds || res.Correct != want.Correct {
					t.Errorf("goroutine %d result differs from sequential:\n got: %+v\nwant: %+v", i, res, want)
				}
				if len(res.Traces) != len(want.Traces) {
					t.Fatalf("goroutine %d: %d traces, want %d", i, len(res.Traces), len(want.Traces))
				}
				for j, tr := range res.Traces {
					wt := want.Traces[j]
					if tr.Summary() != wt.Summary() {
						t.Errorf("goroutine %d launch %d trace differs:\n got: %s\nwant: %s", i, j, tr.Summary(), wt.Summary())
					}
					if tr.Mem != wt.Mem {
						t.Errorf("goroutine %d launch %d memory counters differ:\n got: %+v\nwant: %+v", i, j, tr.Mem, wt.Mem)
					}
					if !reflect.DeepEqual(tr.Dyn, wt.Dyn) {
						t.Errorf("goroutine %d launch %d dynamic instruction mix differs", i, j)
					}
				}
			}
		})
	}
}
