package bench

import (
	"testing"

	"gpucmp/internal/arch"
	"gpucmp/internal/compiler"
	"gpucmp/internal/kir"
	"gpucmp/internal/ptx"
	"gpucmp/internal/sim"
	"gpucmp/internal/workload"
)

// TestDisassemblyRoundTripsAllKernels serialises every benchmark kernel
// under both front-ends through the textual PTX form and requires an exact
// round trip — the disassembly doubles as a compiled-kernel format.
func TestDisassemblyRoundTripsAllKernels(t *testing.T) {
	kernels := []*kir.Kernel{
		SobelKernel(true), SobelKernel(false),
		TranPKernel(false), TranPKernel(true),
		ReduceKernel(),
		FFTKernel(),
		MDKernel(true), MDKernel(false),
		SPMVScalarKernel(true), SPMVScalarKernel(false), SPMVVectorKernel(false),
		St2DKernel(),
		DXTCKernel(),
		MxMKernel(),
		FDTDKernel(true, true), FDTDKernel(false, true),
		scanBlockKernel(), scanSumsKernel(), scanAddKernel(),
		radixCountKernel(), radixScatterKernel(),
		stnwLocalKernel(), stnwGlobalKernel(),
		bfsVisitKernel(), bfsUpdateKernel(),
		maxFlopsKernel(true, 4), maxFlopsKernel(false, 4),
		deviceMemoryKernel(4),
	}
	for _, src := range kernels {
		for _, p := range []compiler.Personality{compiler.CUDA(), compiler.OpenCL()} {
			pk, err := compiler.Compile(src, p)
			if err != nil {
				t.Fatalf("%s/%s: compile: %v", src.Name, p.Name, err)
			}
			text := pk.Disassemble()
			parsed, err := ptx.Parse(text)
			if err != nil {
				t.Fatalf("%s/%s: parse: %v", src.Name, p.Name, err)
			}
			if len(parsed.Instrs) != len(pk.Instrs) {
				t.Fatalf("%s/%s: instr count %d vs %d", src.Name, p.Name, len(parsed.Instrs), len(pk.Instrs))
			}
			for i := range pk.Instrs {
				if parsed.Instrs[i] != pk.Instrs[i] {
					t.Fatalf("%s/%s: instr %d differs:\n%v\n%v",
						src.Name, p.Name, i, parsed.Instrs[i], pk.Instrs[i])
				}
			}
			if again := parsed.Disassemble(); again != text {
				t.Fatalf("%s/%s: disassembly not a fixpoint", src.Name, p.Name)
			}
		}
	}
}

// TestHostExecutorAgreesWithSimulator runs the FFT forward kernel through
// the kir host reference executor and through the compile+simulate
// pipeline; outputs must agree bit-for-bit. This ties the three execution
// paths (host IR interpretation, CUDA compilation, OpenCL compilation)
// to one semantics on a real benchmark kernel.
func TestHostExecutorAgreesWithSimulator(t *testing.T) {
	const batch = 4
	k := FFTKernel()
	re, im := workload.SignalBatch(batch, fftN, 99)

	// Host reference.
	hostRe := append([]uint32(nil), f32Words(re)...)
	hostIm := append([]uint32(nil), f32Words(im)...)
	outRe := make([]uint32, batch*fftN)
	outIm := make([]uint32, batch*fftN)
	if err := kir.Run(k, kir.RunConfig{
		GridX: batch, GridY: 1, BlockX: fftThreads, BlockY: 1,
		Buffers: map[string][]uint32{
			"inRe": hostRe, "inIm": hostIm, "outRe": outRe, "outIm": outIm,
		},
		Scalars: map[string]uint32{},
	}); err != nil {
		t.Fatal(err)
	}

	for _, tc := range []string{"cuda", "opencl"} {
		d, err := NewDriver(tc, arch.GTX480())
		if err != nil {
			t.Fatal(err)
		}
		mod, err := d.Build(k)
		if err != nil {
			t.Fatal(err)
		}
		bre, _ := allocWriteF(d, re)
		bim, _ := allocWriteF(d, im)
		bor, _ := allocZero(d, batch*fftN)
		boi, _ := allocZero(d, batch*fftN)
		if err := d.Launch(mod, "forward", sim.Dim3{X: batch, Y: 1}, sim.Dim3{X: fftThreads, Y: 1},
			B(bre), B(bim), B(bor), B(boi)); err != nil {
			t.Fatal(err)
		}
		gotRe, err := readWords(d, bor, batch*fftN)
		if err != nil {
			t.Fatal(err)
		}
		gotIm, err := readWords(d, boi, batch*fftN)
		if err != nil {
			t.Fatal(err)
		}
		for i := range outRe {
			if gotRe[i] != outRe[i] || gotIm[i] != outIm[i] {
				t.Fatalf("%s: bit mismatch with host executor at %d", tc, i)
			}
		}
	}
}
