package bench

import (
	"fmt"
	"testing"

	"gpucmp/internal/arch"
	"gpucmp/internal/ptx"
)

func TestDebugFDTD(t *testing.T) {
	for _, ua := range []bool{true, false} {
		d, _ := NewCUDADriver(arch.GTX280())
		r, err := RunFDTD(d, Config{Scale: 4, UnrollA: ua, UnrollB: true})
		if err != nil || r.Err != nil {
			t.Fatal(err, r.Err)
		}
		tr := r.Traces[0]
		bd := Breakdowns(d)[0]
		fmt.Printf("unrollA=%v val=%.1f dynTotal=%d bra=%d setp=%d regsGroups=%d %s\n",
			ua, r.Value, tr.Dyn.Total, tr.Dyn.Get(ptx.OpBra, ptx.SpaceNone), tr.Dyn.Get(ptx.OpSetp, ptx.SpaceNone), tr.ResidentGroups, bd)
		fmt.Printf("  ldglobal=%d trans=%d local=%d lAcc=%d const=%d arith=%d mov=%d\n",
			tr.Dyn.Get(ptx.OpLd, ptx.SpaceGlobal), tr.Mem.GlobalLoadTrans, tr.Mem.LocalTrans, tr.Mem.LocalAccesses, tr.Mem.ConstAccesses, tr.Dyn.Class(ptx.ClassArithmetic), tr.Dyn.Get(ptx.OpMov, ptx.SpaceNone))
	}
}
