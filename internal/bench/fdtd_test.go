package bench

import (
	"fmt"
	"testing"

	"gpucmp/internal/arch"
)

// TestFDTDAgainstReference sweeps FDTD over several grid sizes (Scale
// divides the paper's 96x96 plane), all four unroll-point placements
// (Fig. 6/7), and both toolchains. RunFDTD checks the interior of every
// computed z-plane against the pure-Go stencil fdtdRef; Correct=false is
// the Table VI "FL" state and fails the test, as does any abort.
func TestFDTDAgainstReference(t *testing.T) {
	drivers := []struct {
		name string
		mk   func(*arch.Device) (Driver, error)
	}{
		{"cuda", func(a *arch.Device) (Driver, error) { return NewCUDADriver(a) }},
		{"opencl", func(a *arch.Device) (Driver, error) { return NewOpenCLDriver(a) }},
	}
	scales := []int{8, 4, 2} // 16x16, 24x24 and 48x48 planes
	unrolls := []struct{ a, b bool }{
		{false, false}, {true, false}, {false, true}, {true, true},
	}

	for _, drv := range drivers {
		for _, scale := range scales {
			for _, u := range unrolls {
				name := fmt.Sprintf("%s/scale%d/unrollA=%v/unrollB=%v", drv.name, scale, u.a, u.b)
				t.Run(name, func(t *testing.T) {
					t.Parallel()
					d, err := drv.mk(arch.GTX280())
					if err != nil {
						t.Fatal(err)
					}
					r, err := RunFDTD(d, Config{Scale: scale, UnrollA: u.a, UnrollB: u.b})
					if err != nil {
						t.Fatal(err)
					}
					if r.Err != nil {
						t.Fatalf("FDTD aborted (%s): %v", r.Status(), r.Err)
					}
					if !r.Correct {
						t.Fatalf("FDTD output diverges from fdtdRef (%s)", r.Status())
					}
					if r.Value <= 0 {
						t.Fatalf("non-positive throughput %v %s", r.Value, r.Metric)
					}
				})
			}
		}
	}
}

// TestFDTDUnrollChangesSchedule: the unroll pragmas must actually change
// the generated code — same answers, different instruction schedules. The
// paper's Fig. 6/7 effect depends on this.
func TestFDTDUnrollChangesSchedule(t *testing.T) {
	counts := map[bool]int64{}
	for _, ua := range []bool{false, true} {
		d, err := NewCUDADriver(arch.GTX280())
		if err != nil {
			t.Fatal(err)
		}
		r, err := RunFDTD(d, Config{Scale: 4, UnrollA: ua, UnrollB: true})
		if err != nil || r.Err != nil {
			t.Fatal(err, r.Err)
		}
		if !r.Correct {
			t.Fatalf("unrollA=%v: incorrect output", ua)
		}
		if len(r.Traces) == 0 {
			t.Fatal("no trace recorded")
		}
		counts[ua] = r.Traces[0].Dyn.Total
	}
	if counts[false] == counts[true] {
		t.Fatalf("unroll point a had no effect on the dynamic instruction count (%d)", counts[false])
	}
}

// TestFDTDRefInterior: sanity-check the reference itself — a constant
// field is a fixpoint of the stencil when the coefficients sum to 1, and
// the halo (outside the interior) is always passed through untouched.
func TestFDTDRefInterior(t *testing.T) {
	const w, h, zdim = 24, 24, 16
	var sum float32
	for i, c := range fdtdCoeffs {
		sum += c
		if i > 0 {
			sum += 5 * c // each non-centre weight hits 6 neighbours (2 per axis)
		}
	}
	in := make([]float32, w*h*zdim)
	for i := range in {
		in[i] = 2.0
	}
	out := fdtdRef(in, w, h, zdim)
	for i := range out {
		want := in[i]
		x, y, z := i%w, (i/w)%h, i/(w*h)
		interior := x >= fdtdRadius && x < w-fdtdRadius &&
			y >= fdtdRadius && y < h-fdtdRadius &&
			z >= fdtdRadius && z < zdim-fdtdRadius-1
		if interior {
			want = 2.0 * sum
		}
		if !f32eq(out[i], want, 1e-5) {
			t.Fatalf("out[%d] (x=%d y=%d z=%d interior=%v) = %v, want %v",
				i, x, y, z, interior, out[i], want)
		}
	}
}
