package bench

import (
	"gpucmp/internal/kir"
	"gpucmp/internal/sim"
	"gpucmp/internal/workload"
)

const mxmTile = 16

// MxMKernel builds the shared-memory tiled SGEMM (C = A*B, square n).
func MxMKernel() *kir.Kernel {
	b := kir.NewKernel("sgemm")
	a := b.GlobalBuffer("A", kir.F32)
	bb := b.GlobalBuffer("B", kir.F32)
	c := b.GlobalBuffer("C", kir.F32)
	n := b.ScalarParam("n", kir.U32)
	as := b.SharedArray("As", kir.F32, mxmTile*mxmTile)
	bs := b.SharedArray("Bs", kir.F32, mxmTile*mxmTile)

	tx := kir.Bi(kir.TidX)
	ty := kir.Bi(kir.TidY)
	row := b.Declare("row", b.GlobalIDY())
	col := b.Declare("col", b.GlobalIDX())
	acc := b.Declare("acc", kir.F(0))
	tiles := b.Declare("tiles", kir.Div(n, kir.U(mxmTile)))
	b.For("t", kir.U(0), tiles, kir.U(1), func(t kir.Expr) {
		b.Store(as, kir.Add(kir.Mul(ty, kir.U(mxmTile)), tx),
			b.Load(a, kir.Add(kir.Mul(row, n), kir.Add(kir.Mul(t, kir.U(mxmTile)), tx))))
		b.Store(bs, kir.Add(kir.Mul(ty, kir.U(mxmTile)), tx),
			b.Load(bb, kir.Add(kir.Mul(kir.Add(kir.Mul(t, kir.U(mxmTile)), ty), n), col)))
		b.Barrier()
		b.For("k", kir.U(0), kir.U(mxmTile), kir.U(1), func(k kir.Expr) {
			b.Assign(acc, kir.Add(acc, kir.Mul(
				b.Load(as, kir.Add(kir.Mul(ty, kir.U(mxmTile)), k)),
				b.Load(bs, kir.Add(kir.Mul(k, kir.U(mxmTile)), tx)))))
		})
		b.Barrier()
	})
	b.Store(c, kir.Add(kir.Mul(row, n), col), acc)
	return b.MustBuild()
}

// mxmRef computes the reference product with the same tile-ordered float
// accumulation as the kernel (k-major within the row).
func mxmRef(a, bm []float32, n int) []float32 {
	c := make([]float32, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var acc float32
			for k := 0; k < n; k++ {
				acc += a[i*n+k] * bm[k*n+j]
			}
			c[i*n+j] = acc
		}
	}
	return c
}

// RunMxM measures dense matrix multiplication in GFlops/sec (Table II).
func RunMxM(d Driver, cfg Config) (*Result, error) {
	if cfg.Pattern != "" {
		return runPatternMxM(d, cfg)
	}
	const metric = "GFlops/sec"
	n := cfg.scale(256)
	if n < mxmTile {
		n = mxmTile
	}
	n = (n / mxmTile) * mxmTile

	rng := workload.NewRNG(41)
	av := rng.Floats(n*n, -1, 1)
	bv := rng.Floats(n*n, -1, 1)

	k := MxMKernel()
	mod, err := d.Build(k)
	if err != nil {
		return abort(d, "MxM", metric, err), nil
	}
	ab, err := allocWriteF(d, av)
	if err != nil {
		return abort(d, "MxM", metric, err), nil
	}
	bbuf, _ := allocWriteF(d, bv)
	cb, err := allocZero(d, n*n)
	if err != nil {
		return abort(d, "MxM", metric, err), nil
	}

	d.ResetTimer()
	block := sim.Dim3{X: mxmTile, Y: mxmTile}
	grid := sim.Dim3{X: n / mxmTile, Y: n / mxmTile}
	if err := d.Launch(mod, "sgemm", grid, block, B(ab), B(bbuf), B(cb), V(uint32(n))); err != nil {
		return abort(d, "MxM", metric, err), nil
	}
	kernelSecs := d.KernelTime()

	got, err := readF32(d, cb, n*n)
	if err != nil {
		return abort(d, "MxM", metric, err), nil
	}
	want := mxmRef(av, bv, n)
	correct := true
	for i := range want {
		if !f32eq(got[i], want[i], 2e-2) {
			correct = false
			break
		}
	}

	flops := 2 * float64(n) * float64(n) * float64(n)
	return result(d, "MxM", metric, flops/kernelSecs/1e9, correct), nil
}
