package bench

import (
	"errors"
	"testing"

	"gpucmp/internal/arch"
	"gpucmp/internal/opencl"
)

// testCfg returns a fast configuration that keeps each benchmark's native
// implementation choices for the toolchain.
func testCfg(toolchain string, scale int) Config {
	c := NativeConfig(toolchain)
	c.Scale = scale
	return c
}

// TestAllBenchmarksCorrectOnNVIDIA runs every registered benchmark with
// both toolchains on both NVIDIA GPUs at reduced scale and requires correct
// results everywhere.
func TestAllBenchmarksCorrectOnNVIDIA(t *testing.T) {
	for _, devArch := range []*arch.Device{arch.GTX280(), arch.GTX480()} {
		for _, tc := range []string{"cuda", "opencl"} {
			for _, spec := range Registry() {
				spec := spec
				t.Run(devArch.Name+"/"+tc+"/"+spec.Name, func(t *testing.T) {
					d, err := NewDriver(tc, devArch)
					if err != nil {
						t.Fatalf("driver: %v", err)
					}
					res, err := spec.Run(d, testCfg(tc, 4))
					if err != nil {
						t.Fatalf("run: %v", err)
					}
					if res.Err != nil {
						t.Fatalf("benchmark aborted: %v", res.Err)
					}
					if !res.Correct {
						t.Fatal("benchmark produced wrong results")
					}
					if res.Value <= 0 {
						t.Fatalf("metric value %g not positive", res.Value)
					}
					if res.KernelSeconds <= 0 {
						t.Fatal("no kernel time recorded")
					}
					if res.Metric != spec.Metric {
						t.Fatalf("metric %q, want %q", res.Metric, spec.Metric)
					}
				})
			}
		}
	}
}

// TestCUDAUnavailableOffNVIDIA: CUDA contexts must refuse non-NVIDIA
// devices (why Table VI is OpenCL-only).
func TestCUDAUnavailableOffNVIDIA(t *testing.T) {
	for _, a := range []*arch.Device{arch.HD5870(), arch.Intel920(), arch.CellBE()} {
		if _, err := NewCUDADriver(a); err == nil {
			t.Errorf("%s: CUDA context should be refused", a.Name)
		}
	}
}

// TestRdxSWavefrontFailure: the radix sort must complete-but-fail on
// 64-wide wavefront devices (Table VI "FL") while staying correct on
// 32-wide NVIDIA parts.
func TestRdxSWavefrontFailure(t *testing.T) {
	for _, tt := range []struct {
		dev     *arch.Device
		correct bool
	}{
		{arch.GTX280(), true},
		{arch.GTX480(), true},
		{arch.HD5870(), false},
		{arch.Intel920(), false},
	} {
		d, err := NewOpenCLDriver(tt.dev)
		if err != nil {
			t.Fatalf("%s: %v", tt.dev.Name, err)
		}
		res, err := RunRdxS(d, testCfg("opencl", 4))
		if err != nil {
			t.Fatalf("%s: %v", tt.dev.Name, err)
		}
		if res.Err != nil {
			t.Fatalf("%s: unexpected abort: %v", tt.dev.Name, res.Err)
		}
		if res.Correct != tt.correct {
			t.Errorf("%s: correct=%v, want %v (status %s)", tt.dev.Name, res.Correct, tt.correct, res.Status())
		}
	}
}

// TestCellAborts: FFT, DXTC, RdxS and STNW must abort with
// CL_OUT_OF_RESOURCES on the Cell/BE, everything else must run (Table VI).
func TestCellAborts(t *testing.T) {
	abtSet := map[string]bool{"FFT": true, "DXTC": true, "RdxS": true, "STNW": true}
	for _, spec := range Registry() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			d, err := NewOpenCLDriver(arch.CellBE())
			if err != nil {
				t.Fatalf("driver: %v", err)
			}
			res, err := spec.Run(d, testCfg("opencl", 8))
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			if abtSet[spec.Name] {
				if res.Err == nil {
					t.Fatalf("expected ABT on Cell/BE, got status %s", res.Status())
				}
				if !errors.Is(res.Err, opencl.ErrOutOfResources) {
					t.Fatalf("expected CL_OUT_OF_RESOURCES, got %v", res.Err)
				}
			} else {
				if res.Err != nil {
					t.Fatalf("unexpected abort: %v", res.Err)
				}
				if !res.Correct {
					t.Fatal("wrong results on Cell/BE")
				}
			}
		})
	}
}

// TestHD5870RunsEverythingExceptRdxS: Table VI row 1.
func TestHD5870Portability(t *testing.T) {
	for _, spec := range Registry() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			d, err := NewOpenCLDriver(arch.HD5870())
			if err != nil {
				t.Fatalf("driver: %v", err)
			}
			res, err := spec.Run(d, testCfg("opencl", 8))
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			if res.Err != nil {
				t.Fatalf("unexpected abort: %v", res.Err)
			}
			wantCorrect := spec.Name != "RdxS"
			if res.Correct != wantCorrect {
				t.Errorf("correct=%v, want %v", res.Correct, wantCorrect)
			}
		})
	}
}

// TestNativeConfigChoices documents the per-toolchain implementation
// choices the paper describes.
func TestNativeConfigChoices(t *testing.T) {
	cu := NativeConfig("cuda")
	cl := NativeConfig("opencl")
	if !cu.UseTexture || cl.UseTexture {
		t.Error("texture memory is native to the CUDA MD/SPMV only")
	}
	if cu.UseConstant || !cl.UseConstant {
		t.Error("constant memory is native to the OpenCL Sobel only")
	}
	if !cu.UnrollA || cl.UnrollA {
		t.Error("pragma unroll at point a is native to the CUDA FDTD only")
	}
	if !cu.UnrollB || !cl.UnrollB {
		t.Error("both FDTD implementations carry the pragma at point b")
	}
}

// TestSpecLookup checks the registry.
func TestSpecLookup(t *testing.T) {
	if len(Registry()) != 16 {
		t.Fatalf("registry has %d entries, want 16", len(Registry()))
	}
	if _, err := SpecByName("FFT"); err != nil {
		t.Error(err)
	}
	if _, err := SpecByName("nope"); err == nil {
		t.Error("unknown benchmark should fail lookup")
	}
}

// TestResultStatus covers the Table VI status strings.
func TestResultStatus(t *testing.T) {
	if (&Result{Correct: true}).Status() != "OK" {
		t.Error("OK status wrong")
	}
	if (&Result{Correct: false}).Status() != "FL" {
		t.Error("FL status wrong")
	}
	if (&Result{Err: errors.New("x")}).Status() != "ABT" {
		t.Error("ABT status wrong")
	}
}

// TestTranPNaiveFasterOnCPU: explicit local memory is pure overhead on the
// implicitly-cached CPU device (Section V), while GPUs need the tile.
func TestTranPNaiveFasterOnCPU(t *testing.T) {
	run := func(a *arch.Device, naive bool) float64 {
		d, err := NewOpenCLDriver(a)
		if err != nil {
			t.Fatal(err)
		}
		res, err := RunTranP(d, Config{Scale: 2, NaiveTranspose: naive})
		if err != nil || res.Err != nil {
			t.Fatal(err, res.Err)
		}
		if !res.Correct {
			t.Fatal("transpose wrong")
		}
		return res.Value
	}
	cpu := arch.Intel920()
	if naive, tiled := run(cpu, true), run(cpu, false); naive <= tiled {
		t.Errorf("CPU: naive %.3f GB/s should beat tiled %.3f GB/s", naive, tiled)
	}
	gpu := arch.GTX280()
	if naive, tiled := run(gpu, true), run(gpu, false); tiled <= naive {
		t.Errorf("GPU: tiled %.3f GB/s should beat naive %.3f GB/s", tiled, naive)
	}
}

// TestBandwidthScaleInvariance: the DeviceMemory probe reports roughly the
// same achieved bandwidth regardless of problem size (it measures the
// machine, not the workload).
func TestBandwidthScaleInvariance(t *testing.T) {
	run := func(scale int) float64 {
		d, err := NewOpenCLDriver(arch.GTX480())
		if err != nil {
			t.Fatal(err)
		}
		res, err := RunDeviceMemory(d, Config{Scale: scale})
		if err != nil || res.Err != nil {
			t.Fatal(err, res.Err)
		}
		return res.Value
	}
	a, b := run(2), run(8)
	ratio := a / b
	if ratio < 0.85 || ratio > 1.18 {
		t.Errorf("bandwidth should be scale-invariant: %.1f vs %.1f GB/s (ratio %.2f)", a, b, ratio)
	}
}
