package bench

import (
	"gpucmp/internal/kir"
	"gpucmp/internal/sim"
	"gpucmp/internal/workload"
)

const (
	fdtdRadius  = 4
	fdtdBlock   = 8                        // 8x8 thread blocks
	fdtdTileDim = fdtdBlock + 2*fdtdRadius // 16x16 shared tile with halo
	fdtdUnrollA = 9                        // "#pragma unroll 9" at the z loop (point a)
)

// fdtdCoeffs are the finite-difference weights (centre + per-distance).
var fdtdCoeffs = []float32{0.30, 0.11, 0.06, 0.04, 0.02}

// FDTDKernel builds the finite-difference time-domain kernel in the NSDK
// FDTD3d shape: a 2-D thread grid marches through the z-planes keeping the
// z-neighbourhood in a per-thread register pipeline (local array) and the
// xy-plane in a shared halo tile. unrollA/unrollB place "#pragma unroll"
// at the paper's two unroll points (Fig. 6/7): point a is the
// runtime-bounded z loop (factor 9), point b is the radius loop.
func FDTDKernel(unrollA, unrollB bool) *kir.Kernel {
	b := kir.NewKernel("fdtd")
	in := b.GlobalBuffer("in", kir.F32)
	out := b.GlobalBuffer("out", kir.F32)
	coef := b.ConstBuffer("coef", kir.F32)
	w := b.ScalarParam("w", kir.U32)
	h := b.ScalarParam("h", kir.U32)
	dimz := b.ScalarParam("dimz", kir.U32)
	queue := b.LocalArray("queue", kir.F32, 2*fdtdRadius+1)
	tile := b.SharedArray("tile", kir.F32, fdtdTileDim*fdtdTileDim)

	tx := kir.Bi(kir.TidX)
	ty := kir.Bi(kir.TidY)
	x := b.Declare("x", b.GlobalIDX())
	y := b.Declare("y", b.GlobalIDY())
	lin := b.Declare("lin", kir.Add(kir.Mul(ty, kir.U(fdtdBlock)), tx))
	plane := b.Declare("plane", kir.Mul(w, h))
	base := b.Declare("basexy", kir.Add(kir.Mul(y, w), x))

	// clampW/clampH fold an unsigned coordinate (wrapped when negative)
	// back into the image; halo loads of border blocks read clamped texels
	// whose results the interior guard never consumes.
	clamp := func(v kir.Expr, limit kir.Expr) kir.Expr {
		big := kir.Ge(v, limit)
		neg := kir.Ge(v, kir.U(1<<31))
		return kir.Select(big, kir.Select(neg, kir.U(0), kir.Sub(limit, kir.U(1))), v)
	}

	// Prime the z pipeline with planes 0..2R (the register queue is
	// explicitly unrolled in the source, as in NSDK FDTD3d).
	b.ForUnroll("q", kir.U(0), kir.U(2*fdtdRadius+1), kir.U(1), kir.UnrollFull, func(q kir.Expr) {
		b.Store(queue, q, b.Load(in, kir.Add(base, kir.Mul(q, plane))))
	})

	inside := kir.LAnd(
		kir.LAnd(kir.Ge(x, kir.U(fdtdRadius)), kir.Lt(x, kir.Sub(w, kir.U(fdtdRadius)))),
		kir.LAnd(kir.Ge(y, kir.U(fdtdRadius)), kir.Lt(y, kir.Sub(h, kir.U(fdtdRadius)))))

	ua, ub := 0, 0
	if unrollA {
		ua = fdtdUnrollA
	}
	if unrollB {
		ub = kir.UnrollFull
	}
	// Point a: step through the xy-planes.
	b.ForUnroll("iz", kir.U(0), dimz, kir.U(1), ua, func(iz kir.Expr) {
		z := b.Declare("z", kir.Add(iz, kir.U(fdtdRadius)))
		zoff := b.Declare("zoff", kir.Mul(z, plane))

		// Cooperative halo-tile load: 256 texels, 4 per thread.
		b.For("t", kir.U(0), kir.U(fdtdTileDim*fdtdTileDim/(fdtdBlock*fdtdBlock)), kir.U(1), func(t kir.Expr) {
			li := b.Declare("li", kir.Add(lin, kir.Mul(t, kir.U(fdtdBlock*fdtdBlock))))
			lx := b.Declare("lx", kir.And(li, kir.U(fdtdTileDim-1)))
			ly := b.Declare("ly", kir.Shr(li, kir.U(4)))
			gx := b.Declare("gx", clamp(kir.Sub(kir.Add(kir.Mul(kir.Bi(kir.CtaidX), kir.U(fdtdBlock)), lx), kir.U(fdtdRadius)), w))
			gy := b.Declare("gy", clamp(kir.Sub(kir.Add(kir.Mul(kir.Bi(kir.CtaidY), kir.U(fdtdBlock)), ly), kir.U(fdtdRadius)), h))
			b.Store(tile, li, b.Load(in, kir.Add(kir.Add(kir.Mul(gy, w), gx), zoff)))
		})
		b.Barrier()

		b.If(inside, func() {
			val := b.Declare("val", kir.Mul(b.Load(coef, kir.U(0)), b.Load(queue, kir.U(fdtdRadius))))
			cx := kir.Add(tx, kir.U(fdtdRadius))
			cy := kir.Add(ty, kir.U(fdtdRadius))
			// Point b: the radius loop.
			b.ForUnroll("i", kir.U(1), kir.U(fdtdRadius+1), kir.U(1), ub, func(i kir.Expr) {
				zpair := kir.Add(b.Load(queue, kir.Sub(kir.U(fdtdRadius), i)),
					b.Load(queue, kir.Add(kir.U(fdtdRadius), i)))
				xpair := kir.Add(
					b.Load(tile, kir.Add(kir.Mul(cy, kir.U(fdtdTileDim)), kir.Sub(cx, i))),
					b.Load(tile, kir.Add(kir.Mul(cy, kir.U(fdtdTileDim)), kir.Add(cx, i))))
				ypair := kir.Add(
					b.Load(tile, kir.Add(kir.Mul(kir.Sub(cy, i), kir.U(fdtdTileDim)), cx)),
					b.Load(tile, kir.Add(kir.Mul(kir.Add(cy, i), kir.U(fdtdTileDim)), cx)))
				b.Assign(val, kir.Add(val, kir.Mul(b.Load(coef, i),
					kir.Add(zpair, kir.Add(xpair, ypair)))))
			})
			b.Store(out, kir.Add(base, zoff), val)
		})
		b.Barrier()

		// Advance the z pipeline (explicitly unrolled in the source).
		b.ForUnroll("q", kir.U(0), kir.U(2*fdtdRadius), kir.U(1), kir.UnrollFull, func(q kir.Expr) {
			b.Store(queue, q, b.Load(queue, kir.Add(q, kir.U(1))))
		})
		b.Store(queue, kir.U(2*fdtdRadius),
			b.Load(in, kir.Add(base, kir.Mul(kir.Add(z, kir.U(fdtdRadius+1)), plane))))
	})
	return b.MustBuild()
}

// fdtdRef applies one reference step over the interior.
func fdtdRef(in []float32, w, h, zdim int) []float32 {
	out := make([]float32, len(in))
	copy(out, in)
	plane := w * h
	for z := fdtdRadius; z < zdim-fdtdRadius-1; z++ {
		for y := fdtdRadius; y < h-fdtdRadius; y++ {
			for x := fdtdRadius; x < w-fdtdRadius; x++ {
				base := y*w + x
				val := fdtdCoeffs[0] * in[base+z*plane]
				for i := 1; i <= fdtdRadius; i++ {
					zp := in[base+(z-i)*plane] + in[base+(z+i)*plane]
					xp := in[base-i+z*plane] + in[base+i+z*plane]
					yp := in[base-i*w+z*plane] + in[base+i*w+z*plane]
					val += fdtdCoeffs[i] * (zp + (xp + yp))
				}
				out[base+z*plane] = val
			}
		}
	}
	return out
}

// RunFDTD measures FDTD throughput in MPoints/sec (Table II) with the
// unroll-point placement selected by cfg.UnrollA / cfg.UnrollB.
func RunFDTD(d Driver, cfg Config) (*Result, error) {
	const metric = "MPoints/sec"
	w := cfg.scale(96)
	h := cfg.scale(96)
	if w < 4*fdtdRadius {
		w, h = 4*fdtdRadius, 4*fdtdRadius
	}
	w, h = (w/fdtdBlock)*fdtdBlock, (h/fdtdBlock)*fdtdBlock
	dimz := 32
	zdim := dimz + 2*fdtdRadius + 1 // padded input depth
	vol := workload.NewRNG(43).Floats(w*h*zdim, -1, 1)

	k := FDTDKernel(cfg.UnrollA, cfg.UnrollB)
	mod, err := d.Build(k)
	if err != nil {
		return abort(d, "FDTD", metric, err), nil
	}
	inBuf, err := allocWriteF(d, vol)
	if err != nil {
		return abort(d, "FDTD", metric, err), nil
	}
	outBuf, err := allocWriteF(d, vol)
	if err != nil {
		return abort(d, "FDTD", metric, err), nil
	}
	coefBuf, err := allocWriteF(d, fdtdCoeffs)
	if err != nil {
		return abort(d, "FDTD", metric, err), nil
	}

	d.ResetTimer()
	block := sim.Dim3{X: fdtdBlock, Y: fdtdBlock}
	grid := sim.Dim3{X: w / fdtdBlock, Y: h / fdtdBlock}
	if err := d.Launch(mod, "fdtd", grid, block,
		B(inBuf), B(outBuf), B(coefBuf), V(uint32(w)), V(uint32(h)), V(uint32(dimz))); err != nil {
		return abort(d, "FDTD", metric, err), nil
	}
	kernelSecs := d.KernelTime()

	got, err := readF32(d, outBuf, w*h*zdim)
	if err != nil {
		return abort(d, "FDTD", metric, err), nil
	}
	want := fdtdRef(vol, w, h, zdim)
	correct := true
	for z := fdtdRadius; z < fdtdRadius+dimz && correct; z++ {
		for y := fdtdRadius; y < h-fdtdRadius; y++ {
			for x := fdtdRadius; x < w-fdtdRadius; x++ {
				i := z*w*h + y*w + x
				if !f32eq(got[i], want[i], 1e-3) {
					correct = false
					break
				}
			}
		}
	}

	points := float64(w * h * dimz)
	return result(d, "FDTD", metric, points/kernelSecs/1e6, correct), nil
}
