package bench

import (
	"gpucmp/internal/kir"
	"gpucmp/internal/sim"
	"gpucmp/internal/workload"
)

const tileDim = 16

// TranPKernel builds the tiled matrix transpose. The shared-memory tile is
// padded to 17 columns to avoid bank conflicts on the transposed read.
// naive skips the tile entirely (the variant that is faster on the CPU
// device, Section V: explicit local memory is pure overhead when all
// global memory is implicitly cached).
func TranPKernel(naive bool) *kir.Kernel {
	b := kir.NewKernel("transpose")
	in := b.GlobalBuffer("in", kir.F32)
	out := b.GlobalBuffer("out", kir.F32)
	n := b.ScalarParam("n", kir.U32)

	if naive {
		x := b.Declare("x", b.GlobalIDX())
		y := b.Declare("y", b.GlobalIDY())
		b.Store(out, kir.Add(kir.Mul(x, n), y), b.Load(in, kir.Add(kir.Mul(y, n), x)))
		return b.MustBuild()
	}

	tile := b.SharedArray("tile", kir.F32, tileDim*(tileDim+1))
	tx := kir.Bi(kir.TidX)
	ty := kir.Bi(kir.TidY)
	x := b.Declare("x", b.GlobalIDX())
	y := b.Declare("y", b.GlobalIDY())
	b.Store(tile, kir.Add(kir.Mul(ty, kir.U(tileDim+1)), tx), b.Load(in, kir.Add(kir.Mul(y, n), x)))
	b.Barrier()
	xo := b.Declare("xo", kir.Add(kir.Mul(kir.Bi(kir.CtaidY), kir.U(tileDim)), tx))
	yo := b.Declare("yo", kir.Add(kir.Mul(kir.Bi(kir.CtaidX), kir.U(tileDim)), ty))
	b.Store(out, kir.Add(kir.Mul(yo, n), xo), b.Load(tile, kir.Add(kir.Mul(tx, kir.U(tileDim+1)), ty)))
	return b.MustBuild()
}

// RunTranP measures matrix transposition bandwidth in GB/sec (Table II).
func RunTranP(d Driver, cfg Config) (*Result, error) {
	const metric = "GB/sec"
	n := cfg.scale(1024)
	if n < tileDim {
		n = tileDim
	}
	n = (n / tileDim) * tileDim

	in := workload.NewRNG(7).Floats(n*n, 0, 1)
	k := TranPKernel(cfg.NaiveTranspose)
	mod, err := d.Build(k)
	if err != nil {
		return abort(d, "TranP", metric, err), nil
	}
	inBuf, err := allocWriteF(d, in)
	if err != nil {
		return abort(d, "TranP", metric, err), nil
	}
	outBuf, err := allocZero(d, n*n)
	if err != nil {
		return abort(d, "TranP", metric, err), nil
	}

	d.ResetTimer()
	block := sim.Dim3{X: tileDim, Y: tileDim}
	grid := sim.Dim3{X: n / tileDim, Y: n / tileDim}
	if err := d.Launch(mod, "transpose", grid, block, B(inBuf), B(outBuf), V(uint32(n))); err != nil {
		return abort(d, "TranP", metric, err), nil
	}

	got, err := readF32(d, outBuf, n*n)
	if err != nil {
		return abort(d, "TranP", metric, err), nil
	}
	correct := true
	for y := 0; y < n && correct; y++ {
		for x := 0; x < n; x++ {
			if got[x*n+y] != in[y*n+x] {
				correct = false
				break
			}
		}
	}
	bytes := float64(2*n*n) * 4
	res := result(d, "TranP", metric, bytes/d.KernelTime()/1e9, correct)
	return res, nil
}
