package bench

import (
	"encoding/json"
	"errors"
)

// resultJSON is the wire shape of a Result: the tagged fields plus the
// abort error flattened to a string and the Table VI status precomputed,
// so scripted consumers never reimplement Status().
type resultJSON struct {
	Benchmark string  `json:"benchmark"`
	Toolchain string  `json:"toolchain"`
	Device    string  `json:"device"`
	Metric    string  `json:"metric"`
	Value     float64 `json:"value,omitempty"`

	KernelSeconds   float64 `json:"kernel_seconds,omitempty"`
	EndToEndSeconds float64 `json:"end_to_end_seconds,omitempty"`
	TransferSeconds float64 `json:"transfer_seconds,omitempty"`

	Transfer *TransferParams `json:"transfer,omitempty"`

	Correct bool   `json:"correct"`
	Status  string `json:"status"`
	Error   string `json:"error,omitempty"`

	Kernels []KernelReport `json:"kernels,omitempty"`
}

// MarshalJSON encodes the result with Err as a plain string and a
// derived "status" field (OK/FL/ABT). Traces are not serialised.
func (r *Result) MarshalJSON() ([]byte, error) {
	out := resultJSON{
		Benchmark:       r.Benchmark,
		Toolchain:       r.Toolchain,
		Device:          r.Device,
		Metric:          r.Metric,
		Value:           r.Value,
		KernelSeconds:   r.KernelSeconds,
		EndToEndSeconds: r.EndToEndSeconds,
		TransferSeconds: r.TransferSeconds,
		Transfer:        r.Transfer,
		Correct:         r.Correct,
		Status:          r.Status(),
		Kernels:         r.Kernels,
	}
	if r.Err != nil {
		out.Error = r.Err.Error()
	}
	return json.Marshal(out)
}

// UnmarshalJSON is the inverse of MarshalJSON up to error identity: a
// non-empty "error" field is restored as an opaque error value, and the
// redundant "status" field is ignored (Status() rederives it).
func (r *Result) UnmarshalJSON(data []byte) error {
	var in resultJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return err
	}
	*r = Result{
		Benchmark:       in.Benchmark,
		Toolchain:       in.Toolchain,
		Device:          in.Device,
		Metric:          in.Metric,
		Value:           in.Value,
		KernelSeconds:   in.KernelSeconds,
		EndToEndSeconds: in.EndToEndSeconds,
		TransferSeconds: in.TransferSeconds,
		Transfer:        in.Transfer,
		Correct:         in.Correct,
		Kernels:         in.Kernels,
	}
	if in.Error != "" {
		r.Err = errors.New(in.Error)
	}
	return nil
}
