package bench

import (
	"gpucmp/internal/kir"
	"gpucmp/internal/sim"
	"gpucmp/internal/workload"
)

// sobelFilterX is the 3x3 Sobel operator in the X direction.
var sobelFilterX = []float32{-1, 0, 1, -2, 0, 2, -1, 0, 1}

// SobelKernel builds the Sobel-X kernel. constFilter selects where the
// filter coefficients live: the OpenCL implementation of the paper keeps
// them in constant memory, the CUDA one reads them from global memory —
// the difference behind Fig. 8 and the Sobel outlier of Fig. 3.
func SobelKernel(constFilter bool) *kir.Kernel {
	b := kir.NewKernel("sobel")
	img := b.GlobalBuffer("img", kir.F32)
	var filt kir.Buf
	if constFilter {
		filt = b.ConstBuffer("filt", kir.F32)
	} else {
		filt = b.GlobalBuffer("filt", kir.F32)
	}
	out := b.GlobalBuffer("out", kir.F32)
	w := b.ScalarParam("w", kir.U32)
	h := b.ScalarParam("h", kir.U32)

	x := b.Declare("x", b.GlobalIDX())
	y := b.Declare("y", b.GlobalIDY())
	inside := kir.LAnd(
		kir.LAnd(kir.Ge(x, kir.U(1)), kir.Lt(x, kir.Sub(w, kir.U(1)))),
		kir.LAnd(kir.Ge(y, kir.U(1)), kir.Lt(y, kir.Sub(h, kir.U(1)))))
	b.If(inside, func() {
		sum := b.Declare("sum", kir.F(0))
		b.ForUnroll("fy", kir.U(0), kir.U(3), kir.U(1), kir.UnrollFull, func(fy kir.Expr) {
			b.ForUnroll("fx", kir.U(0), kir.U(3), kir.U(1), kir.UnrollFull, func(fx kir.Expr) {
				row := kir.Sub(kir.Add(y, fy), kir.U(1))
				col := kir.Sub(kir.Add(x, fx), kir.U(1))
				pix := b.Load(img, kir.Add(kir.Mul(row, w), col))
				coef := b.Load(filt, kir.Add(kir.Mul(fy, kir.U(3)), fx))
				b.Assign(sum, kir.Add(sum, kir.Mul(pix, coef)))
			})
		})
		b.Store(out, kir.Add(kir.Mul(y, w), x), sum)
	})
	return b.MustBuild()
}

// sobelRef computes the host reference.
func sobelRef(img []float32, w, h int) []float32 {
	out := make([]float32, w*h)
	for y := 1; y < h-1; y++ {
		for x := 1; x < w-1; x++ {
			var sum float32
			for fy := 0; fy < 3; fy++ {
				for fx := 0; fx < 3; fx++ {
					sum += img[(y+fy-1)*w+(x+fx-1)] * sobelFilterX[fy*3+fx]
				}
			}
			out[y*w+x] = sum
		}
	}
	return out
}

// RunSobel measures the Sobel benchmark (Table II metric: seconds). The
// variant is selected by cfg.UseConstant.
func RunSobel(d Driver, cfg Config) (*Result, error) {
	if cfg.Pattern != "" {
		return runPatternSobel(d, cfg)
	}
	const metric = "sec"
	w := cfg.scale(1024)
	h := cfg.scale(1024)
	if w < 16 {
		w, h = 16, 16
	}
	img := workload.GrayImage(w, h, 11)

	k := SobelKernel(cfg.UseConstant)
	mod, err := d.Build(k)
	if err != nil {
		return abort(d, "Sobel", metric, err), nil
	}
	imgBuf, err := allocWriteF(d, img)
	if err != nil {
		return abort(d, "Sobel", metric, err), nil
	}
	filtBuf, err := allocWriteF(d, sobelFilterX)
	if err != nil {
		return abort(d, "Sobel", metric, err), nil
	}
	outBuf, err := allocZero(d, w*h)
	if err != nil {
		return abort(d, "Sobel", metric, err), nil
	}

	d.ResetTimer()
	block := sim.Dim3{X: 16, Y: 16}
	grid := sim.Dim3{X: (w + 15) / 16, Y: (h + 15) / 16}
	if err := d.Launch(mod, "sobel", grid, block,
		B(imgBuf), B(filtBuf), B(outBuf), V(uint32(w)), V(uint32(h))); err != nil {
		return abort(d, "Sobel", metric, err), nil
	}

	got, err := readF32(d, outBuf, w*h)
	if err != nil {
		return abort(d, "Sobel", metric, err), nil
	}
	want := sobelRef(img, w, h)
	correct := true
	for i := range want {
		if !f32eq(got[i], want[i], 1e-4) {
			correct = false
			break
		}
	}
	res := result(d, "Sobel", metric, 0, correct)
	res.Value = res.KernelSeconds
	return res, nil
}
