package bench

// The kernel-source seam: five paper benchmarks (MxM, Reduce, Scan, St2D,
// Sobel) can run from pattern-generated kernels instead of the frozen
// hand-written ones. Config.Pattern selects the schedule; the canonical
// schedule's lowering mirrors the hand-written kernel's floating-point
// association exactly, so its device output is bitwise identical — the
// parity gate cmd/patternbench enforces. Other schedules are the rewrite
// rules the autotuner searches; each run still passes the benchmark's own
// correctness check against the host reference.

import (
	"fmt"
	"math"

	"gpucmp/internal/kir"
	"gpucmp/internal/pattern"
	"gpucmp/internal/sim"
	"gpucmp/internal/workload"
)

// patternBenchNames lists the pattern-portable benchmarks in Registry
// order.
var patternBenchNames = []string{"Sobel", "Reduce", "St2D", "Scan", "MxM"}

// PatternBenchNames lists the benchmarks expressible as pattern programs.
func PatternBenchNames() []string {
	out := make([]string, len(patternBenchNames))
	copy(out, patternBenchNames)
	return out
}

// IsPatternBench reports whether the benchmark accepts Config.Pattern.
func IsPatternBench(name string) bool {
	for _, n := range patternBenchNames {
		if n == name {
			return true
		}
	}
	return false
}

func patternAddF() pattern.Fn {
	return pattern.Fn{
		Params: []pattern.FnParam{{Name: "a", T: kir.F32}, {Name: "b", T: kir.F32}},
		Body:   kir.Add(pattern.X("a", kir.F32), pattern.X("b", kir.F32)),
	}
}

func patternAddU() pattern.Fn {
	return pattern.Fn{
		Params: []pattern.FnParam{{Name: "a", T: kir.U32}, {Name: "b", T: kir.U32}},
		Body:   kir.Add(pattern.X("a", kir.U32), pattern.X("b", kir.U32)),
	}
}

// st2dTaps is the nine-point neighbourhood in the order the St2D element
// function consumes it: centre, the four edge-adjacent cells, the four
// diagonals.
var st2dTaps = []pattern.Tap{
	{DY: 0, DX: 0},
	{DY: -1, DX: 0}, {DY: 1, DX: 0}, {DY: 0, DX: -1}, {DY: 0, DX: 1},
	{DY: -1, DX: -1}, {DY: -1, DX: 1}, {DY: 1, DX: -1}, {DY: 1, DX: 1},
}

// st2dFn reproduces St2DKernel's exact float association:
// 0.25*c + (0.15*((n+s)+(w+e))) + (0.05*((nw+ne)+(sw+se))), combined as
// (centre + adj) + diag.
func st2dFn() pattern.Fn {
	params := make([]pattern.FnParam, 9)
	t := make([]kir.Expr, 9)
	for i := range params {
		name := fmt.Sprintf("t%d", i)
		params[i] = pattern.FnParam{Name: name, T: kir.F32}
		t[i] = pattern.X(name, kir.F32)
	}
	centre := kir.Mul(kir.F(st2dWc), t[0])
	adj := kir.Mul(kir.F(st2dWa), kir.Add(kir.Add(t[1], t[2]), kir.Add(t[3], t[4])))
	diag := kir.Mul(kir.F(st2dWd), kir.Add(kir.Add(t[5], t[6]), kir.Add(t[7], t[8])))
	return pattern.Fn{Params: params, Body: kir.Add(kir.Add(centre, adj), diag)}
}

// sobelTaps is the 3x3 neighbourhood in the fy-major order SobelKernel's
// unrolled loops visit it.
func sobelTaps() []pattern.Tap {
	taps := make([]pattern.Tap, 0, 9)
	for fy := -1; fy <= 1; fy++ {
		for fx := -1; fx <= 1; fx++ {
			taps = append(taps, pattern.Tap{DY: fy, DX: fx})
		}
	}
	return taps
}

// sobelFn reproduces SobelKernel's accumulation: sum = 0; sum += pix*coef
// in fy-major tap order.
func sobelFn() pattern.Fn {
	params := make([]pattern.FnParam, 0, 18)
	for _, base := range []string{"t", "c"} {
		for i := 0; i < 9; i++ {
			params = append(params, pattern.FnParam{Name: fmt.Sprintf("%s%d", base, i), T: kir.F32})
		}
	}
	body := kir.Expr(kir.F(0))
	for i := 0; i < 9; i++ {
		body = kir.Add(body, kir.Mul(
			pattern.X(fmt.Sprintf("t%d", i), kir.F32),
			pattern.X(fmt.Sprintf("c%d", i), kir.F32)))
	}
	return pattern.Fn{Params: params, Body: body}
}

// PatternProgram returns the pattern program behind a benchmark, or false
// when the benchmark is not pattern-portable.
func PatternProgram(name string) (pattern.Program, bool) {
	switch name {
	case "MxM":
		return &pattern.MatMulProg{Name: "mxm"}, true
	case "Reduce":
		return &pattern.ReduceProg{Name: "reduce", Root: pattern.In("in", kir.F32),
			Combine: patternAddF(), Identity: math.Float32bits(0)}, true
	case "Scan":
		return &pattern.ScanProg{Name: "scan", Input: "in", Elem: kir.U32,
			Combine: patternAddU(), Identity: 0}, true
	case "St2D":
		return &pattern.Stencil2DProg{Name: "st2d", Input: "in", Taps: st2dTaps, Fn: st2dFn()}, true
	case "Sobel":
		return &pattern.Stencil2DProg{Name: "sobel", Input: "img", Taps: sobelTaps(),
			Coeffs: sobelFilterX, Fn: sobelFn()}, true
	default:
		return nil, false
	}
}

// PatternShape mirrors each hand-written Run*'s problem-size computation,
// so hand and pattern variants always process identical data.
func PatternShape(name string, cfg Config) (pattern.Shape, bool) {
	switch name {
	case "MxM":
		n := cfg.scale(256)
		if n < mxmTile {
			n = mxmTile
		}
		n = (n / mxmTile) * mxmTile
		return pattern.Shape{N: n}, true
	case "Reduce":
		n := cfg.scale(1 << 20)
		if n < reduceBlock {
			n = reduceBlock
		}
		return pattern.Shape{N: n}, true
	case "Scan":
		n := cfg.scale(256 * 1024)
		n = (n / scanBlock) * scanBlock
		if n < scanBlock {
			n = scanBlock
		}
		return pattern.Shape{N: n}, true
	case "St2D":
		w := cfg.scale(512)
		h := cfg.scale(512)
		if w < 32 {
			w, h = 32, 32
		}
		return pattern.Shape{W: w, H: h}, true
	case "Sobel":
		w := cfg.scale(1024)
		h := cfg.scale(1024)
		if w < 16 {
			w, h = 16, 16
		}
		return pattern.Shape{W: w, H: h}, true
	default:
		return pattern.Shape{}, false
	}
}

// PatternSpace enumerates the schedule mangles the autotuner searches for
// a benchmark (canonical first).
func PatternSpace(name string) []string {
	p, ok := PatternProgram(name)
	if !ok {
		return nil
	}
	space := pattern.Space(p)
	out := make([]string, len(space))
	for i, s := range space {
		out[i] = s.Mangle()
	}
	return out
}

// PatternCanonical returns the canonical schedule mangle for a benchmark.
func PatternCanonical(name string) (string, bool) {
	p, ok := PatternProgram(name)
	if !ok {
		return "", false
	}
	return pattern.Canonical(p).Mangle(), true
}

// patternLower parses cfg.Pattern and lowers the benchmark's program.
func patternLower(name string, cfg Config) (*pattern.Lowered, error) {
	p, ok := PatternProgram(name)
	if !ok {
		return nil, fmt.Errorf("bench: %s has no pattern program", name)
	}
	s, err := pattern.ParseSchedule(cfg.Pattern)
	if err != nil {
		return nil, err
	}
	shape, _ := PatternShape(name, cfg)
	return pattern.Lower(p, s, shape)
}

// allocLoweredBufs allocates and fills every buffer of a lowered program:
// inputs from the caller's data, coefficient tables from their pinned
// contents, the output from outInit (or zero), temps zeroed.
func allocLoweredBufs(d Driver, l *pattern.Lowered, inputs map[string][]uint32, outInit []uint32) (map[string]Buf, error) {
	bufs := map[string]Buf{}
	for _, bs := range l.Bufs {
		words := make([]uint32, bs.Words)
		switch bs.Role {
		case pattern.RoleInput:
			src := inputs[bs.Name]
			if len(src) < bs.Words {
				return nil, fmt.Errorf("bench: pattern input %q has %d words, need %d", bs.Name, len(src), bs.Words)
			}
			copy(words, src)
		case pattern.RoleCoeff:
			copy(words, bs.Init)
		case pattern.RoleOutput:
			if outInit != nil {
				if len(outInit) != bs.Words {
					return nil, fmt.Errorf("bench: pattern out init has %d words, need %d", len(outInit), bs.Words)
				}
				copy(words, outInit)
			}
		}
		b, err := allocWrite(d, words)
		if err != nil {
			return nil, err
		}
		bufs[bs.Name] = b
	}
	return bufs, nil
}

// runPatternMxM is the pattern path of RunMxM: same data, same reference
// check, same metric, pattern-generated kernels.
func runPatternMxM(d Driver, cfg Config) (*Result, error) {
	const metric = "GFlops/sec"
	l, err := patternLower("MxM", cfg)
	if err != nil {
		return abort(d, "MxM", metric, err), nil
	}
	n := l.Shape.N
	rng := workload.NewRNG(41)
	av := rng.Floats(n*n, -1, 1)
	bv := rng.Floats(n*n, -1, 1)

	mod, err := d.Build(l.Kernels...)
	if err != nil {
		return abort(d, "MxM", metric, err), nil
	}
	bufs, err := allocLoweredBufs(d, l, map[string][]uint32{"A": f32Words(av), "B": f32Words(bv)}, nil)
	if err != nil {
		return abort(d, "MxM", metric, err), nil
	}
	d.ResetTimer()
	for _, ln := range l.Launches {
		if err := launchOne(d, mod, bufs, ln); err != nil {
			return abort(d, "MxM", metric, err), nil
		}
	}
	kernelSecs := d.KernelTime()

	got, err := readF32(d, bufs[l.Out], n*n)
	if err != nil {
		return abort(d, "MxM", metric, err), nil
	}
	want := mxmRef(av, bv, n)
	correct := true
	for i := range want {
		if !f32eq(got[i], want[i], 2e-2) {
			correct = false
			break
		}
	}
	flops := 2 * float64(n) * float64(n) * float64(n)
	return result(d, "MxM", metric, flops/kernelSecs/1e9, correct), nil
}

// runPatternReduce is the pattern path of RunReduce.
func runPatternReduce(d Driver, cfg Config) (*Result, error) {
	const metric = "GB/sec"
	l, err := patternLower("Reduce", cfg)
	if err != nil {
		return abort(d, "Reduce", metric, err), nil
	}
	n := l.Shape.N
	in := workload.NewRNG(13).Floats(n, 0, 1)

	mod, err := d.Build(l.Kernels...)
	if err != nil {
		return abort(d, "Reduce", metric, err), nil
	}
	bufs, err := allocLoweredBufs(d, l, map[string][]uint32{"in": f32Words(in)}, nil)
	if err != nil {
		return abort(d, "Reduce", metric, err), nil
	}
	d.ResetTimer()
	for _, ln := range l.Launches {
		if err := launchOne(d, mod, bufs, ln); err != nil {
			return abort(d, "Reduce", metric, err), nil
		}
	}
	kernelSecs := d.KernelTime()

	groups := l.Buf(l.Out).Words
	partials, err := readF32(d, bufs[l.Out], groups)
	if err != nil {
		return abort(d, "Reduce", metric, err), nil
	}
	var got float64
	for _, p := range partials {
		got += float64(p)
	}
	var want float64
	for _, v := range in {
		want += float64(v)
	}
	diff := got - want
	if diff < 0 {
		diff = -diff
	}
	correct := diff <= 1e-3*(1+want)
	return result(d, "Reduce", metric, float64(n)*4/kernelSecs/1e9, correct), nil
}

// runPatternScan is the pattern path of RunScan.
func runPatternScan(d Driver, cfg Config) (*Result, error) {
	const metric = "MElements/sec"
	l, err := patternLower("Scan", cfg)
	if err != nil {
		return abort(d, "Scan", metric, err), nil
	}
	n := l.Shape.N
	keys := workload.NewRNG(47).Keys(n, 1000)

	mod, err := d.Build(l.Kernels...)
	if err != nil {
		return abort(d, "Scan", metric, err), nil
	}
	bufs, err := allocLoweredBufs(d, l, map[string][]uint32{"in": keys}, nil)
	if err != nil {
		return abort(d, "Scan", metric, err), nil
	}
	d.ResetTimer()
	for _, ln := range l.Launches {
		if err := launchOne(d, mod, bufs, ln); err != nil {
			return abort(d, "Scan", metric, err), nil
		}
	}
	kernelSecs := d.KernelTime()

	got, err := readWords(d, bufs[l.Out], n)
	if err != nil {
		return abort(d, "Scan", metric, err), nil
	}
	correct := true
	var acc uint32
	for i, k := range keys {
		if got[i] != acc {
			correct = false
			break
		}
		acc += k
	}
	return result(d, "Scan", metric, float64(n)/kernelSecs/1e6, correct), nil
}

// runPatternSt2D is the pattern path of RunSt2D: the single-step stencil
// lowering is ping-ponged the same four steps as the hand-written runner.
func runPatternSt2D(d Driver, cfg Config) (*Result, error) {
	const metric = "sec"
	const steps = 4
	l, err := patternLower("St2D", cfg)
	if err != nil {
		return abort(d, "St2D", metric, err), nil
	}
	w, h := l.Shape.W, l.Shape.H
	img := workload.GrayImage(w, h, 37)

	mod, err := d.Build(l.Kernels...)
	if err != nil {
		return abort(d, "St2D", metric, err), nil
	}
	// Both buffers seeded with the image so borders pass through, exactly
	// like the hand-written runner.
	bufA, err := allocWriteF(d, img)
	if err != nil {
		return abort(d, "St2D", metric, err), nil
	}
	bufB, err := allocWriteF(d, img)
	if err != nil {
		return abort(d, "St2D", metric, err), nil
	}

	d.ResetTimer()
	ln := l.Launches[0]
	src, dst := bufA, bufB
	for s := 0; s < steps; s++ {
		bufs := map[string]Buf{"in": src, "out": dst}
		if err := launchOne(d, mod, bufs, ln); err != nil {
			return abort(d, "St2D", metric, err), nil
		}
		src, dst = dst, src
	}
	kernelSecs := d.KernelTime()

	got, err := readF32(d, src, w*h)
	if err != nil {
		return abort(d, "St2D", metric, err), nil
	}
	want := img
	for s := 0; s < steps; s++ {
		want = st2dRef(want, w, h)
	}
	correct := true
	for i := range want {
		if !f32eq(got[i], want[i], 1e-3) {
			correct = false
			break
		}
	}
	return result(d, "St2D", metric, kernelSecs, correct), nil
}

// runPatternSobel is the pattern path of RunSobel. The schedule's
// ConstCoeff flag is the pattern-layer spelling of cfg.UseConstant.
func runPatternSobel(d Driver, cfg Config) (*Result, error) {
	const metric = "sec"
	l, err := patternLower("Sobel", cfg)
	if err != nil {
		return abort(d, "Sobel", metric, err), nil
	}
	w, h := l.Shape.W, l.Shape.H
	img := workload.GrayImage(w, h, 11)

	mod, err := d.Build(l.Kernels...)
	if err != nil {
		return abort(d, "Sobel", metric, err), nil
	}
	bufs, err := allocLoweredBufs(d, l, map[string][]uint32{"img": f32Words(img)}, nil)
	if err != nil {
		return abort(d, "Sobel", metric, err), nil
	}
	d.ResetTimer()
	for _, ln := range l.Launches {
		if err := launchOne(d, mod, bufs, ln); err != nil {
			return abort(d, "Sobel", metric, err), nil
		}
	}

	got, err := readF32(d, bufs[l.Out], w*h)
	if err != nil {
		return abort(d, "Sobel", metric, err), nil
	}
	want := sobelRef(img, w, h)
	correct := true
	for i := range want {
		if !f32eq(got[i], want[i], 1e-4) {
			correct = false
			break
		}
	}
	res := result(d, "Sobel", metric, 0, correct)
	res.Value = res.KernelSeconds
	return res, nil
}

// launchOne runs one launch of a lowered program on the driver.
func launchOne(d Driver, mod Module, bufs map[string]Buf, ln pattern.Launch) error {
	args := make([]Arg, len(ln.Args))
	for i, a := range ln.Args {
		if a.IsVal {
			args[i] = V(a.Val)
		} else {
			b, ok := bufs[a.Buf]
			if !ok {
				return fmt.Errorf("bench: pattern launch %s references unknown buffer %q", ln.Kernel, a.Buf)
			}
			args[i] = B(b)
		}
	}
	return d.Launch(mod, ln.Kernel,
		sim.Dim3{X: ln.GridX, Y: ln.GridY},
		sim.Dim3{X: ln.BlockX, Y: ln.BlockY}, args...)
}
