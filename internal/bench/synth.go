package bench

import (
	"gpucmp/internal/arch"
	"gpucmp/internal/kir"
	"gpucmp/internal/sim"
)

// maxFlopsKernel builds the SHOC MaxFlops probe. On GT200 the paper
// measures peak with interleaved mul+mad chains (the dual-issue pipes must
// both be fed for R=3 in Eq. (3)); on everything else a pure mad chain
// reaches peak. rounds is the number of fully unrolled 16-operation
// groups.
func maxFlopsKernel(interleaved bool, rounds int) *kir.Kernel {
	b := kir.NewKernel("maxflops")
	out := b.GlobalBuffer("out", kir.F32)
	gid := b.Declare("gid", b.GlobalIDX())
	a := b.Declare("a", kir.Add(kir.CastTo(kir.F32, gid), kir.F(0.5)))
	c := b.Declare("c", kir.F(0.999))
	s := b.Declare("s", kir.F(1.000001))
	m := b.Declare("m", kir.F(1.5))
	b.ForUnroll("r", kir.U(0), kir.U(uint32(rounds)), kir.U(1), kir.UnrollFull, func(r kir.Expr) {
		for i := 0; i < 8; i++ {
			// mad: a = a*s + c
			b.Assign(a, kir.Add(kir.Mul(a, s), c))
			if interleaved {
				// independent mul chain co-issues on the GT200 SFU pipe
				b.Assign(m, kir.Mul(m, s))
			}
		}
	})
	if interleaved {
		b.Assign(a, kir.Add(a, m))
	}
	b.Store(out, gid, a)
	return b.MustBuild()
}

// RunMaxFlops measures achieved peak arithmetic throughput (Fig. 2),
// reported in GFlops/sec from the event-timer execution time.
func RunMaxFlops(d Driver, cfg Config) (*Result, error) {
	const metric = "GFlops/sec"
	interleaved := d.Arch().Microarch == arch.GT200
	rounds := 48
	threads := cfg.scale(32768)
	block := 256
	if threads < block {
		block = threads
	}

	k := maxFlopsKernel(interleaved, rounds)
	mod, err := d.Build(k)
	if err != nil {
		return abort(d, "MaxFlops", metric, err), nil
	}
	out, err := allocZero(d, threads)
	if err != nil {
		return abort(d, "MaxFlops", metric, err), nil
	}
	d.ResetTimer()
	grid := sim.Dim3{X: (threads + block - 1) / block, Y: 1}
	if err := d.Launch(mod, "maxflops", grid, sim.Dim3{X: block, Y: 1}, B(out)); err != nil {
		return abort(d, "MaxFlops", metric, err), nil
	}
	// Flops: each mad is 2 flops; each interleaved mul adds 1.
	perThread := float64(rounds * 8 * 2)
	if interleaved {
		perThread += float64(rounds * 8)
	}
	flops := perThread * float64(threads)
	secs := ExecSeconds(d)
	res := result(d, "MaxFlops", metric, flops/secs/1e9, true)
	return res, nil
}

// deviceMemoryKernel builds the SHOC DeviceMemory coalesced-read probe:
// each work-item strides through global memory accumulating, so every warp
// access is perfectly coalesced and the kernel is bandwidth-bound.
func deviceMemoryKernel(iters int) *kir.Kernel {
	b := kir.NewKernel("readGlobalMemoryCoalesced")
	data := b.GlobalBuffer("data", kir.F32)
	out := b.GlobalBuffer("out", kir.F32)
	stride := b.ScalarParam("stride", kir.U32)
	gid := b.Declare("gid", b.GlobalIDX())
	s := b.Declare("s", kir.F(0))
	idx := b.Declare("idx", gid)
	b.ForUnroll("i", kir.U(0), kir.U(uint32(iters)), kir.U(1), kir.UnrollFull, func(i kir.Expr) {
		b.Assign(s, kir.Add(s, b.Load(data, idx)))
		b.Assign(idx, kir.Add(idx, stride))
	})
	b.Store(out, gid, s)
	return b.MustBuild()
}

// RunDeviceMemory measures achieved global-memory read bandwidth (Fig. 1)
// with work-group size 256, the configuration the paper fixes.
func RunDeviceMemory(d Driver, cfg Config) (*Result, error) {
	const metric = "GB/sec"
	const iters = 32
	threads := cfg.scale(256 * 1024)
	block := 256
	if threads < block {
		block = threads
	}
	words := threads * iters

	k := deviceMemoryKernel(iters)
	mod, err := d.Build(k)
	if err != nil {
		return abort(d, "DeviceMemory", metric, err), nil
	}
	data, err := allocZero(d, words)
	if err != nil {
		return abort(d, "DeviceMemory", metric, err), nil
	}
	out, err := allocZero(d, threads)
	if err != nil {
		return abort(d, "DeviceMemory", metric, err), nil
	}
	d.ResetTimer()
	grid := sim.Dim3{X: (threads + block - 1) / block, Y: 1}
	if err := d.Launch(mod, "readGlobalMemoryCoalesced", grid, sim.Dim3{X: block, Y: 1},
		B(data), B(out), V(uint32(threads))); err != nil {
		return abort(d, "DeviceMemory", metric, err), nil
	}
	bytes := float64(words) * 4
	secs := ExecSeconds(d)
	return result(d, "DeviceMemory", metric, bytes/secs/1e9, true), nil
}
