// Package arch describes the processor architectures the paper measures:
// the NVIDIA GTX280 (GT200) and GTX480 (Fermi) GPUs, the ATI Radeon HD5870
// (Cypress), the Intel Core i7 920 CPU, and the Cell Broadband Engine.
//
// A Device is a pure description: published specifications (Table IV of the
// paper), micro-architectural features that the paper's analysis hinges on
// (texture cache, constant cache, the Fermi L1/L2 hierarchy, warp versus
// wavefront width), and calibrated timing constants consumed by the
// performance model. The package has no dependencies so that every other
// layer of the simulator can import it.
package arch

import "fmt"

// Kind classifies a device the way OpenCL device types do.
type Kind int

const (
	// KindGPU is a discrete graphics processor.
	KindGPU Kind = iota
	// KindCPU is a general-purpose multi-core processor.
	KindCPU
	// KindAccelerator is a dedicated offload processor (the Cell/BE SPEs).
	KindAccelerator
)

// String returns the OpenCL-style name of the device kind.
func (k Kind) String() string {
	switch k {
	case KindGPU:
		return "GPU"
	case KindCPU:
		return "CPU"
	case KindAccelerator:
		return "ACCELERATOR"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Microarch identifies the micro-architecture family, which controls which
// caches exist and how global-memory transactions are formed.
type Microarch int

const (
	// GT200 is the GTX280 generation: no general-purpose cache for global
	// memory, a read-only constant cache, and a read-only texture cache.
	GT200 Microarch = iota
	// Fermi is the GTX480 generation: true L1/L2 cache hierarchy in front
	// of global memory in addition to the constant and texture paths.
	Fermi
	// Cypress is the ATI HD5870 generation (VLIW5, 64-wide wavefronts).
	Cypress
	// Nehalem is the Intel i7 920 (large coherent caches, SSE lanes).
	Nehalem
	// CellBE is the Cell Broadband Engine (SPEs with 256 KiB local store).
	CellSPU
)

// String returns the family name.
func (m Microarch) String() string {
	switch m {
	case GT200:
		return "GT200"
	case Fermi:
		return "Fermi"
	case Cypress:
		return "Cypress"
	case Nehalem:
		return "Nehalem"
	case CellSPU:
		return "Cell/BE"
	default:
		return fmt.Sprintf("Microarch(%d)", int(m))
	}
}

// Device is a full description of one execution platform. The spec fields
// mirror Table IV of the paper; the limit fields bound occupancy and decide
// the CL_OUT_OF_RESOURCES failures of Table VI; the Timing field holds the
// calibrated constants used by the performance model.
type Device struct {
	Name      string
	Vendor    string
	Kind      Kind
	Microarch Microarch

	// Compute resources (Table IV).
	ComputeUnits       int // streaming multiprocessors / SIMD engines / cores
	CoresPerUnit       int // scalar cores ("CUDA cores") per compute unit
	ProcessingElements int // total ALU lanes where it differs from cores (HD5870: 1600)
	CoreClockMHz       float64
	MemClockMHz        float64
	MemoryBusBits      int     // MIW in the paper
	MemoryGB           float64 // device memory capacity

	// OpsPerCorePerCycle is R in Eq. (3): the maximum floating-point
	// operations one scalar core retires per cycle. It is 3 on GT200
	// (dual-issued mul+mad) and 2 on Fermi (FMA).
	OpsPerCorePerCycle float64

	// SIMDWidth is the hardware scheduling width: a warp (32) on NVIDIA
	// parts, a wavefront (64) under the AMD APP implementation (both the
	// HD5870 and the CPU device), and the SPU vector width on Cell.
	SIMDWidth int

	// Feature flags driving the paper's per-benchmark analyses.
	HasTextureCache  bool // GT200/Fermi/Cypress texture path
	HasConstantCache bool // broadcast constant cache
	HasL1L2          bool // Fermi-style general-purpose cache hierarchy
	ImplicitlyCached bool // CPU-like: all global memory behind coherent caches
	// UnifiedLocalStore marks devices where one on-chip store must hold
	// both shared memory and every work-item's local memory (the Cell/BE
	// SPE local store) — the mechanism behind CL_OUT_OF_RESOURCES aborts.
	UnifiedLocalStore bool

	// Resource limits per compute unit; these bound occupancy and trigger
	// build/launch failures when exceeded.
	SharedMemPerUnit  int // bytes of shared/local memory per compute unit
	RegistersPerUnit  int // 32-bit registers per compute unit
	MaxWorkGroupSize  int
	MaxGroupsPerUnit  int
	MaxThreadsPerUnit int // resident-thread limit per compute unit
	SharedMemBanks    int // shared-memory banks (16 on GT200, 32 on Fermi)
	GlobalSegmentSize int // bytes per global-memory transaction segment

	Timing Timing

	// Transfer describes the host link the device's buffers travel over.
	// The D-Wave comparison argument (PAPERS.md, arXiv:1005.2581) is that
	// device rankings are meaningless unless this cost is counted, so it is
	// a per-device property: each testbed of the paper had its own host
	// board, and the CPU device has no PCIe link at all.
	Transfer Transfer
}

// Transfer holds the calibrated host<->device link parameters used for
// transfer-inclusive accounting. For discrete GPUs this is the effective
// PCIe throughput of the testbed's host board; for the CPU device it is a
// cache-hierarchy copy (OpenCL CPU buffers are host-resident); for the
// Cell/BE it is the XDR DMA path through the element interconnect.
type Transfer struct {
	// PCIeGBps is the effective host<->device bandwidth in GB/s.
	PCIeGBps float64
	// LatencyS is the fixed per-transfer link latency in seconds (DMA
	// setup, doorbell, completion interrupt), on top of whatever the
	// runtime adds host-side.
	LatencyS float64
}

// TransferTime returns the link-only time to move n bytes: the fixed
// per-transfer latency plus the bandwidth term. Runtime (toolchain)
// overheads are added by perfmodel.TransferTimeOn.
func (d *Device) TransferTime(bytes int64) float64 {
	return d.Transfer.LatencyS + float64(bytes)/(d.Transfer.PCIeGBps*1e9)
}

// TheoreticalPeakBandwidth implements Eq. (2) of the paper:
//
//	TP_BW = MC * (MIW/8) * 2 * 1e-9  [GB/s]
//
// with MC in Hz (the paper quotes the effective double-data-rate clock as
// MemClockMHz*1e6, doubled once more for the DDR transfer).
func (d *Device) TheoreticalPeakBandwidth() float64 {
	return d.MemClockMHz * 1e6 * float64(d.MemoryBusBits/8) * 2 * 1e-9
}

// TheoreticalPeakFLOPS implements Eq. (3) of the paper:
//
//	TP_FLOPS = CC * #Cores * R * 1e-9  [GFlops/s]
//
// For devices that expose more processing elements than "cores" (HD5870),
// the processing-element count is used, matching vendor peak figures.
func (d *Device) TheoreticalPeakFLOPS() float64 {
	cores := d.ComputeUnits * d.CoresPerUnit
	if d.ProcessingElements > cores {
		cores = d.ProcessingElements
	}
	return d.CoreClockMHz * 1e6 * float64(cores) * d.OpsPerCorePerCycle * 1e-9
}

// TotalCores returns the scalar core count (#Cores in Table IV).
func (d *Device) TotalCores() int { return d.ComputeUnits * d.CoresPerUnit }

// String returns "Name (Microarch)".
func (d *Device) String() string { return fmt.Sprintf("%s (%s)", d.Name, d.Microarch) }

// Timing holds the calibrated machine constants consumed by the performance
// model. All rates are per compute unit unless stated otherwise.
type Timing struct {
	// IssueCycles maps an instruction cost class to the number of core
	// cycles one warp-wide instruction occupies an issue port.
	IssueALU float64 // add/sub/mov/logic/shift/setp/selp/cvt
	IssueMul float64 // mul/mad/fma
	IssueDiv float64 // div, transcendental
	IssueMem float64 // address generation cost of a ld/st
	IssueBar float64 // barrier
	IssueBra float64 // branch

	// Memory-system constants.
	GlobalLatency  float64 // cycles for an uncached global access
	L1Latency      float64 // cycles for an L1/texture/constant hit
	L2Latency      float64 // cycles for an L2 hit (Fermi only)
	SharedLatency  float64 // cycles for a conflict-free shared access
	ConstBroadcast float64 // cycles for a constant-cache broadcast hit

	// MemoryParallelism is the number of outstanding memory requests one
	// warp keeps in flight (MLP); together with the resident-warp count it
	// decides how much latency the machine hides.
	MemoryParallelism float64

	// SustainedBWFraction is the fraction of TheoreticalPeakBandwidth a
	// perfectly coalesced stream actually sustains (device+driver losses).
	SustainedBWFraction float64
	// SustainedIssueFraction is the fraction of TheoreticalPeakFLOPS a
	// pure-ALU kernel actually sustains.
	SustainedIssueFraction float64

	// KernelLaunchBase is the device-side cost in seconds of dispatching
	// one kernel (the runtime adds its own queueing overhead on top).
	KernelLaunchBase float64
}

// Validate reports an error if the description is internally inconsistent.
// It is used by tests and by NewContext-style constructors in the runtimes.
func (d *Device) Validate() error {
	switch {
	case d.Name == "":
		return fmt.Errorf("arch: device has no name")
	case d.ComputeUnits <= 0:
		return fmt.Errorf("arch: %s: ComputeUnits must be positive", d.Name)
	case d.CoreClockMHz <= 0 || d.MemClockMHz <= 0:
		return fmt.Errorf("arch: %s: clocks must be positive", d.Name)
	case d.SIMDWidth <= 0:
		return fmt.Errorf("arch: %s: SIMDWidth must be positive", d.Name)
	case d.MaxWorkGroupSize <= 0:
		return fmt.Errorf("arch: %s: MaxWorkGroupSize must be positive", d.Name)
	case d.MaxThreadsPerUnit < d.MaxWorkGroupSize:
		return fmt.Errorf("arch: %s: MaxThreadsPerUnit below MaxWorkGroupSize", d.Name)
	case d.SharedMemPerUnit < 0 || d.RegistersPerUnit < 0:
		return fmt.Errorf("arch: %s: negative resource limits", d.Name)
	case d.Timing.SustainedBWFraction <= 0 || d.Timing.SustainedBWFraction > 1:
		return fmt.Errorf("arch: %s: SustainedBWFraction out of (0,1]", d.Name)
	case d.Timing.SustainedIssueFraction <= 0 || d.Timing.SustainedIssueFraction > 1:
		return fmt.Errorf("arch: %s: SustainedIssueFraction out of (0,1]", d.Name)
	case d.Transfer.PCIeGBps <= 0:
		return fmt.Errorf("arch: %s: Transfer.PCIeGBps must be positive", d.Name)
	case d.Transfer.LatencyS < 0:
		return fmt.Errorf("arch: %s: negative Transfer.LatencyS", d.Name)
	}
	return nil
}
