package arch

// Platform is one of the paper's experimental testbeds (Table III): a host
// CPU with one attached device and the toolchain versions installed on it.
type Platform struct {
	Name        string
	HostCPU     string
	Device      *Device
	GCCVersion  string
	CUDAVersion string // empty when CUDA is unavailable on the testbed
	APPVersion  string // empty when the AMD APP SDK is not installed
}

// HasCUDA reports whether the testbed can run CUDA programs.
func (p *Platform) HasCUDA() bool { return p.CUDAVersion != "" }

// Saturn is the GTX480 testbed.
func Saturn() *Platform {
	return &Platform{
		Name:        "Saturn",
		HostCPU:     "Intel(R) Core(TM) i7 CPU 920@2.67GHz",
		Device:      GTX480(),
		GCCVersion:  "4.4.1",
		CUDAVersion: "3.2",
	}
}

// Dutijc is the GTX280 testbed.
func Dutijc() *Platform {
	return &Platform{
		Name:        "Dutijc",
		HostCPU:     "Intel(R) Core(TM) i7 CPU 920@2.67GHz",
		Device:      GTX280(),
		GCCVersion:  "4.4.3",
		CUDAVersion: "3.2",
	}
}

// Jupiter is the HD5870 testbed (OpenCL only, via APP 2.2).
func Jupiter() *Platform {
	return &Platform{
		Name:       "Jupiter",
		HostCPU:    "Intel(R) Core(TM) i7 CPU 920@2.67GHz",
		Device:     HD5870(),
		GCCVersion: "4.4.1",
		APPVersion: "2.2",
	}
}

// Testbeds returns the three platforms of Table III.
func Testbeds() []*Platform { return []*Platform{Saturn(), Dutijc(), Jupiter()} }
