package arch

import (
	"fmt"
	"strings"
)

// The five devices of the paper. Spec columns come from Table IV; the CPU
// and Cell/BE figures come from the respective vendor datasheets (the paper
// uses them only as OpenCL portability targets, Table VI). Timing constants
// are calibrated as described in DESIGN.md §4: sustained-fraction targets
// reproduce the paper's achieved/theoretical peak ratios, and cache
// parameters reproduce the sign and rough size of each analysed gap.

// GTX480 returns the NVIDIA GeForce GTX480 (Fermi) description, the GPU of
// the "Saturn" testbed.
func GTX480() *Device {
	return &Device{
		Name:               "GeForce GTX480",
		Vendor:             "NVIDIA",
		Kind:               KindGPU,
		Microarch:          Fermi,
		ComputeUnits:       15, // 15 SMs x 32 cores = 480 (Table IV counts 60 "compute units" of 8)
		CoresPerUnit:       32,
		CoreClockMHz:       1401,
		MemClockMHz:        1848,
		MemoryBusBits:      384,
		MemoryGB:           1.5,
		OpsPerCorePerCycle: 2, // FMA
		SIMDWidth:          32,
		HasTextureCache:    true,
		HasConstantCache:   true,
		HasL1L2:            true,
		SharedMemPerUnit:   48 * 1024,
		RegistersPerUnit:   32768,
		MaxWorkGroupSize:   1024,
		MaxGroupsPerUnit:   8,
		MaxThreadsPerUnit:  1536,
		SharedMemBanks:     32,
		GlobalSegmentSize:  128,
		Timing: Timing{
			IssueALU:       1, // 2 schedulers x 16-core groups retire one warp-op per cycle
			IssueMul:       1,
			IssueDiv:       8,
			IssueMem:       2,
			IssueBar:       8,
			IssueBra:       8, // redirect + refetch stall
			GlobalLatency:  400,
			L1Latency:      30,
			L2Latency:      120,
			SharedLatency:  4,
			ConstBroadcast: 4,

			MemoryParallelism:      6,
			SustainedBWFraction:    0.877, // paper: OpenCL reaches 87.7% of TP_BW
			SustainedIssueFraction: 0.977, // paper: 97.7% of TP_FLOPS
			KernelLaunchBase:       1e-6,
		},
		// Saturn testbed: PCIe 2.0 x16, ~70% of the 8 GB/s wire rate.
		Transfer: Transfer{PCIeGBps: 5.6, LatencyS: 8e-6},
	}
}

// GTX280 returns the NVIDIA GeForce GTX280 (GT200) description, the GPU of
// the "Dutijc" testbed.
func GTX280() *Device {
	return &Device{
		Name:               "GeForce GTX280",
		Vendor:             "NVIDIA",
		Kind:               KindGPU,
		Microarch:          GT200,
		ComputeUnits:       30, // 30 SMs x 8 cores = 240
		CoresPerUnit:       8,
		CoreClockMHz:       1296,
		MemClockMHz:        1107,
		MemoryBusBits:      512,
		MemoryGB:           1,
		OpsPerCorePerCycle: 3, // dual-issued MUL alongside MAD
		SIMDWidth:          32,
		HasTextureCache:    true,
		HasConstantCache:   true,
		HasL1L2:            false,
		SharedMemPerUnit:   16 * 1024,
		RegistersPerUnit:   16384,
		MaxWorkGroupSize:   512,
		MaxGroupsPerUnit:   8,
		MaxThreadsPerUnit:  1024,
		SharedMemBanks:     16,
		GlobalSegmentSize:  64,
		Timing: Timing{
			IssueALU:       4,
			IssueMul:       4,
			IssueDiv:       16,
			IssueMem:       4,
			IssueBar:       12,
			IssueBra:       8, // redirect + refetch stall on GT200
			GlobalLatency:  550,
			L1Latency:      40, // texture/constant cache hit
			L2Latency:      0,  // no L2
			SharedLatency:  4,
			ConstBroadcast: 4,

			MemoryParallelism:      4,
			SustainedBWFraction:    0.686, // paper: OpenCL reaches 68.6% of TP_BW
			SustainedIssueFraction: 0.715, // paper: 71.5% of TP_FLOPS
			KernelLaunchBase:       1.5e-6,
		},
		// Dutijc testbed: PCIe 2.0 x16 behind an older northbridge.
		Transfer: Transfer{PCIeGBps: 5.0, LatencyS: 10e-6},
	}
}

// HD5870 returns the ATI Radeon HD5870 (Cypress) description, the GPU of
// the "Jupiter" testbed. It runs under the AMD APP OpenCL implementation
// with 64-wide wavefronts, which is what breaks warp-size-32 assumptions
// (the RdxS "FL" entries of Table VI).
func HD5870() *Device {
	return &Device{
		Name:               "Radeon HD5870",
		Vendor:             "AMD",
		Kind:               KindGPU,
		Microarch:          Cypress,
		ComputeUnits:       20,
		CoresPerUnit:       16, // 16 VLIW5 units per SIMD engine => 320 "cores"
		ProcessingElements: 1600,
		CoreClockMHz:       850,
		MemClockMHz:        1200,
		MemoryBusBits:      256,
		MemoryGB:           1,
		OpsPerCorePerCycle: 2,
		SIMDWidth:          64, // wavefront
		HasTextureCache:    true,
		HasConstantCache:   true,
		HasL1L2:            false,
		SharedMemPerUnit:   32 * 1024,
		RegistersPerUnit:   16384,
		MaxWorkGroupSize:   256,
		MaxGroupsPerUnit:   8,
		MaxThreadsPerUnit:  1536,
		SharedMemBanks:     32,
		GlobalSegmentSize:  64,
		Timing: Timing{
			IssueALU:       4,
			IssueMul:       4,
			IssueDiv:       16,
			IssueMem:       4,
			IssueBar:       12,
			IssueBra:       20, // clause-switch overhead on VLIW
			GlobalLatency:  500,
			L1Latency:      40,
			SharedLatency:  4,
			ConstBroadcast: 4,

			MemoryParallelism:      4,
			SustainedBWFraction:    0.72,
			SustainedIssueFraction: 0.60, // VLIW packing losses on scalar kernels
			KernelLaunchBase:       2e-6,
		},
		// Jupiter testbed: PCIe 2.0 x16; the APP runtime staged every copy
		// through a pinned bounce buffer, costing bandwidth and latency.
		Transfer: Transfer{PCIeGBps: 4.4, LatencyS: 12e-6},
	}
}

// Intel920 returns the Intel Core i7 920 description. As in the paper it is
// exposed as an OpenCL CPU device through the AMD APP implementation, hence
// the 64-wide logical wavefront. All global memory sits behind the coherent
// cache hierarchy, so explicit local memory is pure overhead (the TranP
// analysis of Section V).
func Intel920() *Device {
	return &Device{
		Name:               "Intel Core i7 920",
		Vendor:             "Intel",
		Kind:               KindCPU,
		Microarch:          Nehalem,
		ComputeUnits:       4, // physical cores
		CoresPerUnit:       4, // SSE lanes
		CoreClockMHz:       2670,
		MemClockMHz:        533, // DDR3-1066, triple channel
		MemoryBusBits:      192,
		MemoryGB:           6,
		OpsPerCorePerCycle: 2,  // mul+add pipes
		SIMDWidth:          64, // AMD APP CPU wavefront
		HasTextureCache:    false,
		HasConstantCache:   false,
		HasL1L2:            true,
		ImplicitlyCached:   true,
		SharedMemPerUnit:   32 * 1024,
		RegistersPerUnit:   65536,
		MaxWorkGroupSize:   1024,
		MaxGroupsPerUnit:   16,
		MaxThreadsPerUnit:  1024,
		SharedMemBanks:     1, // no banking: local memory is ordinary cached RAM
		GlobalSegmentSize:  64,
		Timing: Timing{
			IssueALU:       8, // software-pipelined work-item loop per lane batch
			IssueMul:       8,
			IssueDiv:       24,
			IssueMem:       8,
			IssueBar:       200, // a CPU barrier is a real synchronisation
			IssueBra:       4,
			GlobalLatency:  12, // cache hit in the common case
			L1Latency:      4,
			L2Latency:      40,
			SharedLatency:  30, // "local memory" = extra copy through RAM
			ConstBroadcast: 4,

			MemoryParallelism:      8,
			SustainedBWFraction:    0.60,
			SustainedIssueFraction: 0.15, // OpenCL work-item emulation overhead
			KernelLaunchBase:       4e-6,
		},
		// No PCIe link at all: an OpenCL CPU buffer is host memory, so a
		// "transfer" is a cache-hierarchy memcpy. This asymmetry is what
		// flips transfer-bound rankings (EXPERIMENTS.md).
		Transfer: Transfer{PCIeGBps: 16.0, LatencyS: 2e-6},
	}
}

// CellBE returns the Cell Broadband Engine description (IBM OpenCL). The
// deliberately small per-unit resource limits reproduce the Table VI "ABT"
// failures: kernels whose register or local-memory footprint exceeds an SPE
// local store abort with CL_OUT_OF_RESOURCES at enqueue time.
func CellBE() *Device {
	return &Device{
		Name:               "Cell Broadband Engine",
		Vendor:             "IBM",
		Kind:               KindAccelerator,
		Microarch:          CellSPU,
		ComputeUnits:       8, // SPEs
		CoresPerUnit:       4, // SPU vector lanes
		CoreClockMHz:       3200,
		MemClockMHz:        1600, // XDR, 25.6 GB/s with the 64-bit interface
		MemoryBusBits:      64,
		MemoryGB:           1,
		OpsPerCorePerCycle: 2,
		SIMDWidth:          4,
		HasTextureCache:    false,
		HasConstantCache:   false,
		HasL1L2:            false,
		UnifiedLocalStore:  true,
		SharedMemPerUnit:   7936, // local store left for data after code, stack and runtime
		RegistersPerUnit:   16384,
		MaxWorkGroupSize:   256,
		MaxGroupsPerUnit:   1,
		MaxThreadsPerUnit:  256,
		SharedMemBanks:     1,
		GlobalSegmentSize:  128, // DMA granule
		Timing: Timing{
			IssueALU:       2,
			IssueMul:       2,
			IssueDiv:       14,
			IssueMem:       6,
			IssueBar:       100,
			IssueBra:       18,  // no branch prediction on the SPU
			GlobalLatency:  700, // DMA from XDR
			L1Latency:      6,   // local store
			SharedLatency:  6,
			ConstBroadcast: 6,

			MemoryParallelism:      2,
			SustainedBWFraction:    0.55,
			SustainedIssueFraction: 0.25,
			KernelLaunchBase:       10e-6,
		},
		// Host PPE to SPE-visible XDR over the element interconnect DMA.
		Transfer: Transfer{PCIeGBps: 2.5, LatencyS: 20e-6},
	}
}

// All returns fresh descriptions of every modelled device in a stable order.
func All() []*Device {
	return []*Device{GTX480(), GTX280(), HD5870(), Intel920(), CellBE()}
}

// Names returns the Name of every modelled device in the All order, for
// CLI flag validation and error messages.
func Names() []string {
	devs := All()
	out := make([]string, len(devs))
	for i, d := range devs {
		out[i] = d.Name
	}
	return out
}

// ByName returns the device with the given Name, or nil.
func ByName(name string) *Device {
	for _, d := range All() {
		if d.Name == name {
			return d
		}
	}
	return nil
}

// Resolve returns the device with the given Name, or an error that
// enumerates every known device — the message CLI `-device` flags and the
// service API print for a typo'd name.
func Resolve(name string) (*Device, error) {
	if d := ByName(name); d != nil {
		return d, nil
	}
	return nil, fmt.Errorf("unknown device %q; known devices: %s", name, strings.Join(Names(), ", "))
}
