package arch

import (
	"math"
	"testing"
)

func almost(t *testing.T, got, want, tol float64, what string) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Errorf("%s = %g, want %g (±%g)", what, got, want, tol)
	}
}

// TestTheoreticalPeaks checks Eq. (2) and Eq. (3) against the values the
// paper derives in Section IV-A: 141.7 and 177.4 GB/s, 933.12 and 1344.96
// GFlops/s for GTX280 and GTX480.
func TestTheoreticalPeaks(t *testing.T) {
	g280, g480 := GTX280(), GTX480()
	almost(t, g280.TheoreticalPeakBandwidth(), 141.7, 0.05, "GTX280 TP_BW")
	almost(t, g480.TheoreticalPeakBandwidth(), 177.4, 0.05, "GTX480 TP_BW")
	almost(t, g280.TheoreticalPeakFLOPS(), 933.12, 0.01, "GTX280 TP_FLOPS")
	almost(t, g480.TheoreticalPeakFLOPS(), 1344.96, 0.01, "GTX480 TP_FLOPS")
}

func TestTableIVCoreCounts(t *testing.T) {
	if got := GTX480().TotalCores(); got != 480 {
		t.Errorf("GTX480 cores = %d, want 480", got)
	}
	if got := GTX280().TotalCores(); got != 240 {
		t.Errorf("GTX280 cores = %d, want 240", got)
	}
	if got := HD5870().TotalCores(); got != 320 {
		t.Errorf("HD5870 cores = %d, want 320", got)
	}
	if got := HD5870().ProcessingElements; got != 1600 {
		t.Errorf("HD5870 PEs = %d, want 1600", got)
	}
}

func TestAllDevicesValidate(t *testing.T) {
	devs := All()
	if len(devs) != 5 {
		t.Fatalf("All() returned %d devices, want 5", len(devs))
	}
	for _, d := range devs {
		if err := d.Validate(); err != nil {
			t.Errorf("%s: %v", d.Name, err)
		}
	}
}

func TestValidateRejectsBrokenDevices(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Device)
	}{
		{"no name", func(d *Device) { d.Name = "" }},
		{"zero units", func(d *Device) { d.ComputeUnits = 0 }},
		{"zero clock", func(d *Device) { d.CoreClockMHz = 0 }},
		{"zero simd", func(d *Device) { d.SIMDWidth = 0 }},
		{"zero wg", func(d *Device) { d.MaxWorkGroupSize = 0 }},
		{"neg shared", func(d *Device) { d.SharedMemPerUnit = -1 }},
		{"threads below wg", func(d *Device) { d.MaxThreadsPerUnit = d.MaxWorkGroupSize - 1 }},
		{"bw frac", func(d *Device) { d.Timing.SustainedBWFraction = 1.5 }},
		{"issue frac", func(d *Device) { d.Timing.SustainedIssueFraction = 0 }},
		{"zero link bw", func(d *Device) { d.Transfer.PCIeGBps = 0 }},
		{"neg link latency", func(d *Device) { d.Transfer.LatencyS = -1e-6 }},
	}
	for _, tc := range cases {
		d := GTX480()
		tc.mutate(d)
		if err := d.Validate(); err == nil {
			t.Errorf("%s: Validate accepted a broken device", tc.name)
		}
	}
}

func TestWavefrontWidths(t *testing.T) {
	// The warp/wavefront split drives the Table VI RdxS failure: NVIDIA
	// parts schedule 32 lanes, everything under AMD APP schedules 64.
	if w := GTX280().SIMDWidth; w != 32 {
		t.Errorf("GTX280 warp = %d, want 32", w)
	}
	if w := GTX480().SIMDWidth; w != 32 {
		t.Errorf("GTX480 warp = %d, want 32", w)
	}
	if w := HD5870().SIMDWidth; w != 64 {
		t.Errorf("HD5870 wavefront = %d, want 64", w)
	}
	if w := Intel920().SIMDWidth; w != 64 {
		t.Errorf("Intel920 wavefront = %d, want 64", w)
	}
}

func TestMicroarchFeatures(t *testing.T) {
	if GTX280().HasL1L2 {
		t.Error("GT200 must not have an L1/L2 hierarchy")
	}
	if !GTX480().HasL1L2 {
		t.Error("Fermi must have an L1/L2 hierarchy")
	}
	if !GTX280().HasConstantCache || !GTX280().HasTextureCache {
		t.Error("GT200 must have constant and texture caches")
	}
	if !Intel920().ImplicitlyCached {
		t.Error("the CPU device must be implicitly cached")
	}
	if CellBE().Kind != KindAccelerator {
		t.Error("Cell/BE must be an accelerator device")
	}
}

func TestByName(t *testing.T) {
	for _, d := range All() {
		got := ByName(d.Name)
		if got == nil || got.Name != d.Name {
			t.Errorf("ByName(%q) failed", d.Name)
		}
	}
	if ByName("no such device") != nil {
		t.Error("ByName of unknown device should be nil")
	}
}

func TestTestbeds(t *testing.T) {
	tb := Testbeds()
	if len(tb) != 3 {
		t.Fatalf("want 3 testbeds, got %d", len(tb))
	}
	if !tb[0].HasCUDA() || !tb[1].HasCUDA() {
		t.Error("Saturn and Dutijc must have CUDA")
	}
	if tb[2].HasCUDA() {
		t.Error("Jupiter must not have CUDA")
	}
	if tb[2].APPVersion != "2.2" {
		t.Errorf("Jupiter APP version = %q, want 2.2", tb[2].APPVersion)
	}
	for _, p := range tb {
		if p.Device == nil {
			t.Errorf("%s has no device", p.Name)
		}
	}
}

func TestTransferParameters(t *testing.T) {
	// The CPU device's buffers are host-resident, so its effective link
	// bandwidth must beat every PCIe-attached device — that asymmetry is
	// the mechanism behind the transfer-inclusive ranking flips.
	cpu := Intel920()
	for _, d := range All() {
		if d.Kind == KindCPU {
			continue
		}
		if d.Transfer.PCIeGBps >= cpu.Transfer.PCIeGBps {
			t.Errorf("%s link %g GB/s >= CPU %g GB/s", d.Name, d.Transfer.PCIeGBps, cpu.Transfer.PCIeGBps)
		}
	}
	// TransferTime = latency + bytes/bandwidth, checked at a round size.
	g := GTX480()
	want := g.Transfer.LatencyS + 1e6/(g.Transfer.PCIeGBps*1e9)
	almost(t, g.TransferTime(1_000_000), want, 1e-12, "GTX480 TransferTime(1MB)")
	// Latency must dominate tiny copies, bandwidth large ones.
	if small := g.TransferTime(4); small < g.Transfer.LatencyS {
		t.Errorf("TransferTime(4) = %g below link latency", small)
	}
}

func TestKindAndMicroarchStrings(t *testing.T) {
	if KindGPU.String() != "GPU" || KindCPU.String() != "CPU" || KindAccelerator.String() != "ACCELERATOR" {
		t.Error("Kind.String mismatch")
	}
	if Fermi.String() != "Fermi" || GT200.String() != "GT200" {
		t.Error("Microarch.String mismatch")
	}
	if Kind(99).String() == "" || Microarch(99).String() == "" {
		t.Error("out-of-range enums must still stringify")
	}
}
