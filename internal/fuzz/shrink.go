package fuzz

// Kernel minimisation: given a failing program and a predicate that
// re-checks the failure, greedily apply semantics-shrinking edits until a
// fixpoint. Each candidate is validated with the kir type checker and the
// uniform-barrier checker before the predicate runs, so the shrinker can
// never "minimise" into an ill-formed kernel. Barriers are never deleted:
// removing one could turn a deterministic kernel into a racy one, whose
// divergence would not replay.

import (
	"gpucmp/internal/kir"
)

// maxShrinkTests bounds how many candidate programs one Shrink call may
// evaluate; each evaluation is a full oracle run, so this caps worst-case
// minimisation cost.
const maxShrinkTests = 3000

// Shrink returns the smallest variant of p (by kernel node count) it can
// find for which interesting still returns true. The input program is not
// modified. interesting must be deterministic.
func Shrink(p *Program, interesting func(*Program) bool) *Program {
	cur := cloneProgram(p)
	budget := maxShrinkTests
	try := func(cand *Program) bool {
		if budget <= 0 {
			return false
		}
		if kir.Check(cand.Kernel) != nil || kir.CheckUniformBarriers(cand.Kernel) != nil {
			return false
		}
		budget--
		return interesting(cand)
	}

	for {
		improved := false

		// Pass 1: delete whole statements, outermost positions first.
		for i := 0; ; i++ {
			cand := cloneProgram(cur)
			applied, found := deleteStmtAt(cand.Kernel, i)
			if !found {
				break
			}
			if applied && try(cand) {
				cur = cand
				improved = true
				i-- // same index now names the next statement
			}
		}

		// Pass 2: unwrap control flow (If -> branch bodies, For -> one
		// trip with the loop variable bound to its initial value).
		for i := 0; ; i++ {
			cand := cloneProgram(cur)
			ok, any := unwrapStmtAt(cand.Kernel, i)
			if !any {
				break
			}
			if ok && try(cand) {
				cur = cand
				improved = true
				i--
			}
		}

		// Pass 3: simplify expressions (replace a subtree with a literal
		// or hoist one of its operands).
		for i := 0; ; i++ {
			n := countExprs(cur.Kernel)
			if i >= n {
				break
			}
			for mode := 0; mode < 3; mode++ {
				cand := cloneProgram(cur)
				if !simplifyExprAt(cand.Kernel, i, mode) {
					continue
				}
				if try(cand) {
					cur = cand
					improved = true
					break
				}
			}
		}

		// Pass 4: shrink the launch and the data.
		if cur.Grid > 1 {
			cand := cloneProgram(cur)
			cand.Grid /= 2
			cand.Buffers[cand.Out] = make([]uint32, cand.Grid*cand.Block)
			if try(cand) {
				cur = cand
				improved = true
			}
		}
		for name := range cur.Buffers {
			if name == cur.Out {
				continue
			}
			if allZero(cur.Buffers[name]) {
				continue
			}
			cand := cloneProgram(cur)
			cand.Buffers[name] = make([]uint32, len(cand.Buffers[name]))
			if try(cand) {
				cur = cand
				improved = true
			}
		}
		for name, v := range cur.Scalars {
			if v == 0 {
				continue
			}
			cand := cloneProgram(cur)
			cand.Scalars[name] = 0
			if try(cand) {
				cur = cand
				improved = true
			}
		}

		if !improved || budget <= 0 {
			return cur
		}
	}
}

func allZero(ws []uint32) bool {
	for _, w := range ws {
		if w != 0 {
			return false
		}
	}
	return true
}

func cloneProgram(p *Program) *Program {
	q := &Program{
		Seed: p.Seed, Grid: p.Grid, Block: p.Block, Out: p.Out,
		Kernel:  cloneKernel(p.Kernel),
		Buffers: map[string][]uint32{},
		Scalars: map[string]uint32{},
	}
	for name, ws := range p.Buffers {
		c := make([]uint32, len(ws))
		copy(c, ws)
		q.Buffers[name] = c
	}
	for name, v := range p.Scalars {
		q.Scalars[name] = v
	}
	return q
}

func cloneKernel(k *kir.Kernel) *kir.Kernel {
	c := &kir.Kernel{
		Name:                k.Name,
		Params:              append([]kir.Param(nil), k.Params...),
		SharedArrays:        append([]kir.Array(nil), k.SharedArrays...),
		LocalArrays:         append([]kir.Array(nil), k.LocalArrays...),
		WarpWidthAssumption: k.WarpWidthAssumption,
		Body:                kir.CloneStmts(k.Body),
	}
	return c
}

// ---- statement-level edits, addressed by pre-order index ----

// deleteStmtAt removes the idx-th statement in pre-order. Barriers are
// never deleted (they still consume an index, so addressing stays
// stable). Returns (applied, found): found is false once idx is past the
// last statement.
func deleteStmtAt(k *kir.Kernel, idx int) (bool, bool) {
	n := 0
	var walk func(stmts *[]kir.Stmt) (bool, bool)
	walk = func(stmts *[]kir.Stmt) (bool, bool) {
		for i := 0; i < len(*stmts); i++ {
			s := (*stmts)[i]
			if n == idx {
				n++
				if _, isBar := s.(*kir.BarrierStmt); isBar {
					return false, true // found but not deletable
				}
				*stmts = append((*stmts)[:i], (*stmts)[i+1:]...)
				return true, true
			}
			n++
			switch s := s.(type) {
			case *kir.IfStmt:
				if app, found := walk(&s.Then); found {
					return app, true
				}
				if app, found := walk(&s.Else); found {
					return app, true
				}
			case *kir.ForStmt:
				if app, found := walk(&s.Body); found {
					return app, true
				}
			}
		}
		return false, false
	}
	app, found := walk(&k.Body)
	return app, found || idx < n
}

// unwrapStmtAt replaces the idx-th statement, when it is an If or a For,
// with its body: the If keeps Then followed by Else; the For keeps one
// trip with the loop variable substituted by its initial value. Returns
// (applied, found): found is false once idx is past the last statement.
func unwrapStmtAt(k *kir.Kernel, idx int) (bool, bool) {
	n := 0
	var walk func(stmts *[]kir.Stmt) (bool, bool)
	walk = func(stmts *[]kir.Stmt) (bool, bool) {
		for i := 0; i < len(*stmts); i++ {
			s := (*stmts)[i]
			if n == idx {
				n++
				switch s := s.(type) {
				case *kir.IfStmt:
					repl := append(append([]kir.Stmt(nil), s.Then...), s.Else...)
					*stmts = append((*stmts)[:i], append(repl, (*stmts)[i+1:]...)...)
					return true, true
				case *kir.ForStmt:
					body := kir.SubstVar(s.Body, s.Var, s.Init)
					*stmts = append((*stmts)[:i], append(body, (*stmts)[i+1:]...)...)
					return true, true
				default:
					return false, true
				}
			}
			n++
			switch s := s.(type) {
			case *kir.IfStmt:
				if app, found := walk(&s.Then); found {
					return app, true
				}
				if app, found := walk(&s.Else); found {
					return app, true
				}
			case *kir.ForStmt:
				if app, found := walk(&s.Body); found {
					return app, true
				}
			}
		}
		return false, false
	}
	app, found := walk(&k.Body)
	return app, found || idx < n
}

// ---- expression-level edits ----

func countExprs(k *kir.Kernel) int {
	n := 0
	visitExprs(k, func(e *kir.Expr) bool { n++; return false })
	return n
}

// visitExprs walks every expression slot in the kernel in pre-order,
// calling f with a pointer to the slot so it can be replaced in place.
// Walking stops when f returns true.
func visitExprs(k *kir.Kernel, f func(e *kir.Expr) bool) {
	var expr func(e *kir.Expr) bool
	expr = func(e *kir.Expr) bool {
		if *e == nil {
			return false
		}
		if f(e) {
			return true
		}
		switch x := (*e).(type) {
		case *kir.Bin:
			return expr(&x.L) || expr(&x.R)
		case *kir.Un:
			return expr(&x.X)
		case *kir.Sel:
			return expr(&x.Cond) || expr(&x.A) || expr(&x.B)
		case *kir.Cast:
			return expr(&x.X)
		case *kir.Load:
			return expr(&x.Index)
		}
		return false
	}
	var stmts func(ss []kir.Stmt) bool
	stmts = func(ss []kir.Stmt) bool {
		for _, s := range ss {
			switch s := s.(type) {
			case *kir.DeclStmt:
				if expr(&s.Init) {
					return true
				}
			case *kir.AssignStmt:
				if expr(&s.Value) {
					return true
				}
			case *kir.StoreStmt:
				// Indices of stores into memory other threads can see are
				// off-limits: rewriting one could break the own-slot
				// discipline and introduce a write-write race, making the
				// shrunk kernel non-deterministic.
				if sp, err := k.SpaceOf(s.Buf); err == nil && sp == kir.Local {
					if expr(&s.Index) {
						return true
					}
				}
				if expr(&s.Value) {
					return true
				}
			case *kir.AtomicStmt:
				if expr(&s.Value) {
					return true
				}
			case *kir.IfStmt:
				if expr(&s.Cond) || stmts(s.Then) || stmts(s.Else) {
					return true
				}
			case *kir.ForStmt:
				if expr(&s.Init) || expr(&s.Limit) || expr(&s.Step) || stmts(s.Body) {
					return true
				}
			}
		}
		return false
	}
	stmts(k.Body)
}

// simplifyExprAt rewrites the idx-th expression slot. Modes: 0 replaces
// the subtree with a literal of its type, 1 hoists its first operand,
// 2 hoists its second operand. Returns whether an edit was applied.
func simplifyExprAt(k *kir.Kernel, idx int, mode int) bool {
	n := 0
	applied := false
	visitExprs(k, func(slot *kir.Expr) bool {
		if n != idx {
			n++
			return false
		}
		n++
		e := *slot
		switch mode {
		case 0:
			if _, isConst := e.(*kir.ConstInt); isConst {
				return true
			}
			if _, isConst := e.(*kir.ConstFloat); isConst {
				return true
			}
			switch e.Type() {
			case kir.U32, kir.I32:
				*slot = &kir.ConstInt{T: e.Type(), V: 1}
			case kir.F32:
				*slot = &kir.ConstFloat{V: 1}
			case kir.Bool:
				*slot = &kir.Bin{Op: kir.OpEq, L: kir.U(0), R: kir.U(0)}
			default:
				return true
			}
			applied = true
		case 1, 2:
			child := hoistable(e, mode == 2)
			if child == nil || !sameKind(child.Type(), e.Type()) {
				return true
			}
			*slot = child
			applied = true
		}
		return true
	})
	return applied
}

// hoistable returns the operand a simplification could promote over e.
func hoistable(e kir.Expr, second bool) kir.Expr {
	switch e := e.(type) {
	case *kir.Bin:
		if second {
			return e.R
		}
		return e.L
	case *kir.Un:
		if second {
			return nil
		}
		return e.X
	case *kir.Sel:
		if second {
			return e.B
		}
		return e.A
	case *kir.Cast:
		if second {
			return nil
		}
		return e.X
	default:
		return nil
	}
}

// sameKind reports whether replacing an expression of type to with one of
// type from preserves well-typedness: exact match, or the interchangeable
// U32/I32 pair.
func sameKind(from, to kir.Type) bool {
	if from == to {
		return true
	}
	isInt := func(t kir.Type) bool { return t == kir.U32 || t == kir.I32 }
	return isInt(from) && isInt(to)
}
