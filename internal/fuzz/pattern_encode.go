package fuzz

// JSON serialisation of pattern fuzz cases for the pinned regression
// corpus (pcorpus/). Like the kernel corpus, each file is self-contained:
// the program AST (the internal/pattern codec), the shape, the inputs, and
// the schedule mangles the case exercises — so a case that once exposed a
// lowering bug replays forever, independent of the generator's evolution.

import (
	"encoding/json"
	"fmt"

	"gpucmp/internal/pattern"
)

type pcaseJSON struct {
	Seed    uint64              `json:"seed"`
	N       int                 `json:"n,omitempty"`
	W       int                 `json:"w,omitempty"`
	H       int                 `json:"h,omitempty"`
	Scheds  []string            `json:"schedules"`
	Bufs    map[string][]uint32 `json:"buffers"`
	OutInit []uint32            `json:"out_init,omitempty"`
	Program json.RawMessage     `json:"program"`
}

// EncodePatternCase renders the case as indented JSON.
func EncodePatternCase(c *PatternCase) ([]byte, error) {
	prog, err := pattern.MarshalProgram(c.Prog)
	if err != nil {
		return nil, err
	}
	pj := pcaseJSON{
		Seed: c.Seed,
		N:    c.Shape.N, W: c.Shape.W, H: c.Shape.H,
		Bufs: c.In.Bufs, OutInit: c.In.OutInit,
		Program: prog,
	}
	for _, s := range c.Scheds {
		pj.Scheds = append(pj.Scheds, s.Mangle())
	}
	return json.MarshalIndent(&pj, "", " ")
}

// DecodePatternCase parses a case written by EncodePatternCase and
// re-validates the program and schedules.
func DecodePatternCase(data []byte) (*PatternCase, error) {
	var pj pcaseJSON
	if err := json.Unmarshal(data, &pj); err != nil {
		return nil, fmt.Errorf("fuzz: pattern corpus decode: %w", err)
	}
	prog, err := pattern.UnmarshalProgram(pj.Program)
	if err != nil {
		return nil, fmt.Errorf("fuzz: pattern corpus program: %w", err)
	}
	c := &PatternCase{
		Seed:  pj.Seed,
		Prog:  prog,
		Shape: pattern.Shape{N: pj.N, W: pj.W, H: pj.H},
		In:    pattern.EvalInputs{Bufs: pj.Bufs, OutInit: pj.OutInit},
	}
	if len(pj.Scheds) == 0 {
		return nil, fmt.Errorf("fuzz: pattern corpus case %d has no schedules", pj.Seed)
	}
	for _, m := range pj.Scheds {
		s, err := pattern.ParseSchedule(m)
		if err != nil {
			return nil, fmt.Errorf("fuzz: pattern corpus case %d: %w", pj.Seed, err)
		}
		c.Scheds = append(c.Scheds, s)
	}
	if c.In.Bufs == nil {
		return nil, fmt.Errorf("fuzz: pattern corpus case %d has no buffers", pj.Seed)
	}
	return c, nil
}
