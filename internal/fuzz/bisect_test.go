package fuzz

import (
	"strings"
	"testing"

	"gpucmp/internal/arch"
	"gpucmp/internal/compiler"
	"gpucmp/internal/ptx"
)

// stClobberPass is a deliberately miscompiling back-end pass: it rewrites
// the value operand of the first global store to a constant. Real
// miscompiles are (by the differential tests) not available on demand, so
// bisection is exercised by injecting a known-bad pass into the pipeline
// and checking the bisector names it.
func stClobberPass() compiler.Pass {
	return compiler.Pass{
		Name:        "st-clobber",
		Description: "corrupt the first global store (test only)",
		Run: func(k *ptx.Kernel, rem *compiler.Remarks) compiler.Counters {
			for i := range k.Instrs {
				if k.Instrs[i].Op == ptx.OpSt && k.Instrs[i].Space == ptx.SpaceGlobal {
					k.Instrs[i].Src[1] = ptx.ImmU(0xdeadbeef)
					return compiler.Counters{Rewritten: 1}
				}
			}
			return compiler.Counters{}
		},
	}
}

func TestBisectFindsInjectedPass(t *testing.T) {
	p := Generate(1, DefaultConfig())
	a := arch.GTX280()
	cfg := compiler.Config{
		Personality: compiler.CUDA(),
		Passes:      append(compiler.DefaultPasses(), stClobberPass()),
	}
	rep, err := Bisect(p, cfg, a)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Reproduced {
		t.Fatal("injected miscompile did not reproduce")
	}
	var names []string
	for _, s := range rep.Suspects {
		names = append(names, s.Kind+":"+s.Name)
	}
	if len(rep.Suspects) != 1 || rep.Suspects[0].Kind != "pass" || rep.Suspects[0].Name != "st-clobber" {
		t.Fatalf("suspects = %v, want exactly pass:st-clobber\n%s", names, rep)
	}
	if rep.Trials < 2 {
		t.Errorf("only %d trials recorded", rep.Trials)
	}
	if out := rep.String(); !strings.Contains(out, "st-clobber") {
		t.Errorf("report does not name the suspect:\n%s", out)
	}
}

func TestBisectCleanConfigDoesNotReproduce(t *testing.T) {
	p := Generate(2, DefaultConfig())
	rep, err := Bisect(p, compiler.Config{Personality: compiler.OpenCL()}, arch.GTX280())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Reproduced {
		t.Fatalf("clean config reported as diverging:\n%s", rep)
	}
	if len(rep.Suspects) != 0 {
		t.Errorf("suspects on a clean config: %v", rep.Suspects)
	}
	if !strings.Contains(rep.String(), "did not reproduce") {
		t.Errorf("report should state non-reproduction:\n%s", rep)
	}
}

func TestBisectDivergenceRoutesByToolchain(t *testing.T) {
	p := Generate(3, DefaultConfig())
	if _, err := BisectDivergence(p, &Divergence{Toolchain: "weird", Device: arch.GTX280().Name}); err == nil {
		t.Error("unknown toolchain accepted")
	}
	if _, err := BisectDivergence(p, &Divergence{Toolchain: "cuda", Device: "no-such-device"}); err == nil {
		t.Error("unknown device accepted")
	}
	rep, err := BisectDivergence(p, &Divergence{Seed: p.Seed, Toolchain: "cuda", Device: arch.GTX280().Name})
	if err != nil {
		t.Fatal(err)
	}
	// The stock compiler agrees with the reference, so the "divergence"
	// must fail to reproduce rather than invent suspects.
	if rep.Reproduced {
		t.Errorf("stock compiler reported as miscompiling:\n%s", rep)
	}
}
