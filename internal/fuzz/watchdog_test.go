package fuzz

// The hang corpus: corpus/hangs/ stores deliberately non-terminating
// kernels (corpusFiles skips subdirectories, so the replay oracle never
// runs them as regressions). These tests pin the two defences against such
// kernels: the generator's static loop guard, and the step-budget watchdog
// that converts a runaway execution into a typed error on both the
// interpreter and the simulator paths.

import (
	"errors"
	"os"
	"testing"

	"gpucmp/internal/arch"
	"gpucmp/internal/kir"
	"gpucmp/internal/sim"
)

func hangProgram(t *testing.T) *Program {
	t.Helper()
	data, err := os.ReadFile("corpus/hangs/hang0.json")
	if err != nil {
		t.Fatal(err)
	}
	p, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestHangCorpusTrippedByGuard(t *testing.T) {
	p := hangProgram(t)
	if err := CheckBoundedLoops(p.Kernel); err == nil {
		t.Fatal("CheckBoundedLoops accepted the step-0 hang kernel")
	}
}

func TestGeneratedKernelsPassLoopGuard(t *testing.T) {
	for seed := uint64(0); seed < 50; seed++ {
		p := Generate(seed, DefaultConfig()) // Generate itself panics on a guard violation
		if err := CheckBoundedLoops(p.Kernel); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

// TestReferenceWatchdogOnHang: the interpreter kills the hang kernel at
// its step budget and surfaces a typed kir.ErrWatchdog.
func TestReferenceWatchdogOnHang(t *testing.T) {
	p := hangProgram(t)
	_, err := Reference(p)
	if !errors.Is(err, kir.ErrWatchdog) {
		t.Fatalf("Reference(hang) = %v, want kir.ErrWatchdog", err)
	}
}

// TestCompiledWatchdogOnHang: both compiled personalities are killed by
// the device step budget and surface a typed sim.ErrWatchdog.
func TestCompiledWatchdogOnHang(t *testing.T) {
	p := hangProgram(t)
	for _, pers := range Toolchains() {
		_, _, err := RunCompiled(p, pers, arch.GTX480())
		if !errors.Is(err, sim.ErrWatchdog) {
			t.Fatalf("%s: RunCompiled(hang) = %v, want sim.ErrWatchdog", pers.Name, err)
		}
	}
}
