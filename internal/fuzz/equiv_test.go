package fuzz

// Engine-equivalence gate: every optimised interpreter (the predecoded
// fast engine and the fused/block-compiled threaded engine) must be
// observationally indistinguishable from the retained reference engine.
// Every corpus program — including the hang corpus, which exercises the
// watchdog — replays on all engines across every device and both compiler
// personalities, and everything observable must match bit for bit: the
// dynamic trace, the entire allocated global memory and constant segment
// contents, and the error taxonomy (identical strings sequentially,
// identical error class in parallel, where which compute unit's error
// surfaces first is a legitimate race).

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"gpucmp/internal/arch"
	"gpucmp/internal/compiler"
	"gpucmp/internal/kir"
	"gpucmp/internal/ptx"
	"gpucmp/internal/sim"
)

// equivEngines is the set of optimised engines checked against the
// reference; extending the taxonomy means adding a line here and nothing
// else.
var equivEngines = []sim.Engine{sim.EngineFast, sim.EngineThreaded}

// equivCorpusFiles returns every corpus program, including the hang
// corpus that the ordinary replay test skips.
func equivCorpusFiles(t *testing.T) []string {
	t.Helper()
	files := corpusFiles(t)
	hangs, err := os.ReadDir(filepath.Join("corpus", "hangs"))
	if err != nil {
		t.Fatalf("reading hang corpus: %v", err)
	}
	n := 0
	for _, e := range hangs {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".json") {
			files = append(files, filepath.Join("corpus", "hangs", e.Name()))
			n++
		}
	}
	if n == 0 {
		t.Fatal("hang corpus is empty")
	}
	return files
}

// equivRun is one engine execution: the trace, a dump of all observable
// device memory, and the launch error.
type equivRun struct {
	trace  *sim.Trace
	global []uint32
	err    error
}

// runEngineK stages and launches one corpus program the way the oracle
// does (fuzz.Execute), but on a device with explicit engine/parallelism
// knobs, and dumps the whole allocated global memory afterwards so stores
// outside the nominal output buffer are compared too.
func runEngineK(t *testing.T, p *Program, pk *ptx.Kernel, a *arch.Device, engine sim.Engine, parallel bool, budget uint64) *equivRun {
	t.Helper()
	dev, err := sim.NewDevice(a)
	if err != nil {
		t.Fatal(err)
	}
	dev.Engine = engine
	dev.Reference = engine == sim.EngineReference
	dev.Parallel = parallel
	dev.StepBudget = budget
	var args []uint32
	for _, prm := range p.Kernel.Params {
		if !prm.Buffer {
			args = append(args, p.Scalars[prm.Name])
			continue
		}
		data := p.Buffers[prm.Name]
		if prm.Space == kir.Const {
			off, err := dev.ConstAlloc(uint32(4 * len(data)))
			if err != nil {
				t.Fatal(err)
			}
			if err := dev.ConstWrite(off, data); err != nil {
				t.Fatal(err)
			}
			args = append(args, off)
			continue
		}
		addr, err := dev.Global.Alloc(uint32(4 * len(data)))
		if err != nil {
			t.Fatal(err)
		}
		if err := dev.Global.WriteWords(addr, data); err != nil {
			t.Fatal(err)
		}
		args = append(args, addr)
	}
	r := &equivRun{}
	r.trace, r.err = dev.Launch(pk, sim.Dim3{X: p.Grid, Y: 1}, sim.Dim3{X: p.Block, Y: 1}, args)
	r.global = make([]uint32, dev.Global.InUse()/4)
	if err := dev.Global.ReadWords(0, r.global); err != nil {
		t.Fatal(err)
	}
	return r
}

func equivBudget(path string) uint64 {
	if strings.Contains(path, "hangs") {
		// Hang programs run straight into the budget; a small shared budget
		// keeps the replay fast, and the watchdog verdict is identical for
		// both engines at any common value.
		return 1 << 18
	}
	return 1 << 22
}

// TestCorpusEngineEquivalence replays the full corpus sequentially on
// every engine and requires strict equality with the reference: traces,
// memory, and error strings.
func TestCorpusEngineEquivalence(t *testing.T) {
	for _, path := range equivCorpusFiles(t) {
		path := path
		t.Run(filepath.Base(path), func(t *testing.T) {
			t.Parallel()
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			p, err := Decode(data)
			if err != nil {
				t.Fatal(err)
			}
			budget := equivBudget(path)
			for _, pers := range Toolchains() {
				pk, err := compiler.Compile(p.Kernel, pers)
				if err != nil {
					t.Fatal(err)
				}
				for _, a := range arch.All() {
					ref := runEngineK(t, p, pk, a, sim.EngineReference, false, budget)
					for _, eng := range equivEngines {
						got := runEngineK(t, p, pk, a, eng, false, budget)
						label := pers.Name + "/" + a.Name + "/" + eng.String()
						switch {
						case ref.err != nil && got.err != nil:
							if ref.err.Error() != got.err.Error() {
								t.Fatalf("%s: error mismatch:\nreference: %v\n%s: %v", label, ref.err, eng, got.err)
							}
						case (ref.err == nil) != (got.err == nil):
							t.Fatalf("%s: reference err=%v, %s err=%v", label, ref.err, eng, got.err)
						default:
							if !reflect.DeepEqual(ref.trace, got.trace) {
								t.Fatalf("%s: trace mismatch:\nreference: %s\n%s: %s",
									label, ref.trace.Summary(), eng, got.trace.Summary())
							}
						}
						if !reflect.DeepEqual(ref.global, got.global) {
							for i := range ref.global {
								if ref.global[i] != got.global[i] {
									t.Fatalf("%s: global memory differs at word %d: reference %#x, %s %#x",
										label, i, ref.global[i], eng, got.global[i])
								}
							}
						}
					}
				}
			}
		})
	}
}

// TestCorpusEngineEquivalenceParallel replays the corpus with each
// optimised engine's parallel compute units against the sequential
// reference. Successful launches must still match bit for bit (per-CU
// statistic shards merge in a fixed order, so parallelism is invisible);
// failing launches must fail in the same error class (which compute
// unit's error surfaces first is a race once sibling cancellation is in
// play).
func TestCorpusEngineEquivalenceParallel(t *testing.T) {
	for _, path := range equivCorpusFiles(t) {
		path := path
		t.Run(filepath.Base(path), func(t *testing.T) {
			t.Parallel()
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			p, err := Decode(data)
			if err != nil {
				t.Fatal(err)
			}
			budget := equivBudget(path)
			for _, pers := range Toolchains() {
				pk, err := compiler.Compile(p.Kernel, pers)
				if err != nil {
					t.Fatal(err)
				}
				for _, a := range arch.All() {
					ref := runEngineK(t, p, pk, a, sim.EngineReference, false, budget)
					for _, eng := range equivEngines {
						got := runEngineK(t, p, pk, a, eng, true, budget)
						label := pers.Name + "/" + a.Name + "/" + eng.String()
						switch {
						case ref.err != nil && got.err != nil:
							if errors.Is(ref.err, sim.ErrWatchdog) != errors.Is(got.err, sim.ErrWatchdog) {
								t.Fatalf("%s: error class mismatch:\nreference: %v\n%s: %v", label, ref.err, eng, got.err)
							}
						case (ref.err == nil) != (got.err == nil):
							t.Fatalf("%s: reference err=%v, %s err=%v", label, ref.err, eng, got.err)
						default:
							if !reflect.DeepEqual(ref.trace, got.trace) {
								t.Fatalf("%s: trace mismatch:\nreference: %s\n%s: %s",
									label, ref.trace.Summary(), eng, got.trace.Summary())
							}
							if !reflect.DeepEqual(ref.global, got.global) {
								t.Fatalf("%s: global memory differs", label)
							}
						}
					}
				}
			}
		})
	}
}
