package fuzz

import (
	"bytes"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"testing"

	"gpucmp/internal/pattern"
)

// TestPatternFreshSeedsAllDevices is the pattern-DSL acceptance sweep:
// freshly generated combinator programs, each lowered at several schedules
// from its rule space, compiled with both personalities, executed on every
// modelled device, and diffed bit-for-bit against the schedule-aware
// evaluator.
func TestPatternFreshSeedsAllDevices(t *testing.T) {
	seeds := 60
	if testing.Short() {
		seeds = 10
	}
	var (
		mu         sync.Mutex
		executions int
		skipped    int
	)
	jobs := make(chan uint64)
	var wg sync.WaitGroup
	for w := 0; w < runtime.NumCPU(); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for seed := range jobs {
				c := GenPatternCase(seed)
				res, err := CheckPattern(c, nil)
				mu.Lock()
				if err != nil {
					t.Errorf("seed %d: %v", seed, err)
				} else {
					executions += res.Executions
					skipped += len(res.Skipped)
					if res.Failure != nil {
						t.Errorf("%v", res.Failure)
					}
				}
				mu.Unlock()
			}
		}()
	}
	for seed := uint64(1); seed <= uint64(seeds); seed++ {
		jobs <- seed
	}
	close(jobs)
	wg.Wait()
	if executions == 0 {
		t.Fatal("no executions completed")
	}
	t.Logf("%d seeds, %d executions, %d skipped launches", seeds, executions, skipped)
}

// TestGenPatternCaseDeterministic: the same seed must yield a
// byte-identical case, or corpus seeds and CI campaigns would not replay.
func TestGenPatternCaseDeterministic(t *testing.T) {
	for seed := uint64(1); seed <= 20; seed++ {
		a, err := EncodePatternCase(GenPatternCase(seed))
		if err != nil {
			t.Fatal(err)
		}
		b, err := EncodePatternCase(GenPatternCase(seed))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Fatalf("seed %d: two generations differ", seed)
		}
	}
}

// TestGenPatternCoversEveryKind: the seed stream must exercise all five
// program kinds, or a lowering path could silently lose fuzz coverage.
func TestGenPatternCoversEveryKind(t *testing.T) {
	seen := map[pattern.Kind]bool{}
	for seed := uint64(1); seed <= 60; seed++ {
		seen[GenPatternCase(seed).Prog.Kind()] = true
	}
	for _, k := range []pattern.Kind{pattern.KindMap, pattern.KindReduce, pattern.KindScan, pattern.KindStencil2D, pattern.KindMatMul} {
		if !seen[k] {
			t.Errorf("60 seeds never generated a %s program", k)
		}
	}
}

func pcorpusFiles(t *testing.T) []string {
	t.Helper()
	ents, err := os.ReadDir("pcorpus")
	if err != nil {
		t.Fatalf("reading pcorpus dir: %v", err)
	}
	var files []string
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".json") {
			files = append(files, filepath.Join("pcorpus", e.Name()))
		}
	}
	if len(files) == 0 {
		t.Fatal("pcorpus directory is empty")
	}
	return files
}

// TestPatternCorpusReplay: every pinned pattern case replays through the
// full oracle on every device as part of plain `go test`.
func TestPatternCorpusReplay(t *testing.T) {
	for _, path := range pcorpusFiles(t) {
		path := path
		t.Run(filepath.Base(path), func(t *testing.T) {
			t.Parallel()
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			c, err := DecodePatternCase(data)
			if err != nil {
				t.Fatal(err)
			}
			res, err := CheckPattern(c, nil)
			if err != nil {
				t.Fatal(err)
			}
			if res.Failure != nil {
				t.Fatalf("pattern corpus regression: %v", res.Failure)
			}
			if res.Executions == 0 {
				t.Fatal("no executions completed")
			}
		})
	}
}

// TestPatternCorpusEncodingStable: stored files must be exactly what
// EncodePatternCase emits for them today.
func TestPatternCorpusEncodingStable(t *testing.T) {
	for _, path := range pcorpusFiles(t) {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		c, err := DecodePatternCase(data)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		out, err := EncodePatternCase(c)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		if strings.TrimRight(string(data), "\n") != string(out) {
			t.Errorf("%s: re-encoding differs from the stored file; regenerate with PCORPUS_WRITE=1", path)
		}
	}
}

// TestRegeneratePatternCorpus rewrites pcorpus/ from fixed seeds when
// PCORPUS_WRITE is set; otherwise it only documents the procedure.
func TestRegeneratePatternCorpus(t *testing.T) {
	if os.Getenv("PCORPUS_WRITE") == "" {
		t.Skip("set PCORPUS_WRITE=1 to rewrite pcorpus/ from the pinned seed list")
	}
	// At least one seed per kind (1,23 scan; 2,5 map; 3,7 reduce; 4 matmul;
	// 16 stencil2d); keep this list stable so corpus diffs stay reviewable.
	seeds := []uint64{1, 2, 3, 4, 5, 7, 16, 23}
	if err := os.MkdirAll("pcorpus", 0o755); err != nil {
		t.Fatal(err)
	}
	for _, seed := range seeds {
		c := GenPatternCase(seed)
		data, err := EncodePatternCase(c)
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join("pcorpus", c.Prog.ProgName()+".json")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%s)", path, c.Prog.Kind())
	}
}

// TestLaunchProgramBridgesToShrinker: a lowered pattern kernel wraps into
// a fuzz.Program whose reference execution reproduces the evaluator, and
// the existing shrinker accepts it — the path a real pattern divergence
// would take to minimisation.
func TestLaunchProgramBridgesToShrinker(t *testing.T) {
	c := GenPatternCase(3) // any 1-D case works; seed 3 is a reduce
	var oneD *PatternCase
	for seed := uint64(1); seed <= 40; seed++ {
		c = GenPatternCase(seed)
		if c.Prog.Kind() == pattern.KindReduce {
			oneD = c
			break
		}
	}
	if oneD == nil {
		t.Fatal("no reduce case in the first 40 seeds")
	}
	s := oneD.Scheds[0]
	l, err := pattern.Lower(oneD.Prog, s, oneD.Shape)
	if err != nil {
		t.Fatal(err)
	}
	want, err := pattern.Eval(oneD.Prog, s, oneD.Shape, oneD.In)
	if err != nil {
		t.Fatal(err)
	}

	last := len(l.Launches) - 1
	p, err := LaunchProgram(l, last, oneD.In, oneD.Seed)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Reference(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("wrapped program output has %d words, evaluator %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("word %d: wrapped program %#x, evaluator %#x", i, got[i], want[i])
		}
	}

	// The shrinker accepts the wrapped program: minimise against "word 0
	// keeps its value" and verify the result still satisfies the predicate.
	target := want[0]
	// Shrink requires a deterministic predicate. Deleting a guard can turn
	// the race-free reduce kernel into one with racing global writes, and
	// this predicate stays sound anyway because kir.Run's turnstile gives
	// every block one fixed sequential interleaving — a racy candidate has
	// a defined, reproducible word 0.
	interesting := func(cand *Program) bool {
		out, err := Reference(cand)
		return err == nil && len(out) > 0 && out[0] == target
	}
	small := Shrink(p, interesting)
	if !interesting(small) {
		t.Fatal("shrunk program no longer satisfies the predicate")
	}
}
