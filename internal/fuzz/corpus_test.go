package fuzz

// Corpus replay: every program under corpus/ runs through the full
// three-way oracle on every device as part of plain `go test`. Programs
// land here either hand-picked for feature coverage or minimised from a
// past divergence; a regression in any layer of the pipeline fails this
// test with the stored kernel attached.

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func corpusFiles(t *testing.T) []string {
	t.Helper()
	ents, err := os.ReadDir("corpus")
	if err != nil {
		t.Fatalf("reading corpus dir: %v", err)
	}
	var files []string
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".json") {
			files = append(files, filepath.Join("corpus", e.Name()))
		}
	}
	if len(files) == 0 {
		t.Fatal("corpus directory is empty")
	}
	return files
}

func TestCorpusReplay(t *testing.T) {
	for _, path := range corpusFiles(t) {
		path := path
		t.Run(filepath.Base(path), func(t *testing.T) {
			t.Parallel()
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			p, err := Decode(data)
			if err != nil {
				t.Fatal(err)
			}
			res, err := Check(p, nil)
			if err != nil {
				t.Fatal(err)
			}
			if res.Divergence != nil {
				t.Fatalf("corpus regression:\n%s", res.Divergence.Error())
			}
			if res.Executions == 0 {
				t.Fatal("no executions completed")
			}
		})
	}
}

// TestCorpusEncodingStable: stored corpus files must be exactly what
// Encode emits for them today, so `kfuzz -dump` output and checked-in
// files never drift apart.
func TestCorpusEncodingStable(t *testing.T) {
	for _, path := range corpusFiles(t) {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		p, err := Decode(data)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		out, err := Encode(p)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		if strings.TrimRight(string(data), "\n") != string(out) {
			t.Errorf("%s: re-encoding differs from the stored file; regenerate with kfuzz -dump", path)
		}
	}
}
