// Package fuzz is the differential kernel fuzzer: a seeded, deterministic
// generator of well-typed KIR programs plus a three-way oracle that runs
// each program through the reference interpreter (kir.Run) and through both
// compiler personalities on the SIMT simulator, on every modelled device,
// and diffs the output buffers bit-for-bit. The paper's central assumption —
// that CUDA and OpenCL kernels with the same source semantics compute the
// same values, and only the toolchain and architecture differ (Section
// IV-B4) — is only reproducible if this holds for our stack; the fuzzer is
// the standing correctness gate that enforces it.
//
// Generated kernels are schedule-independent by construction: barriers are
// emitted only at top level (kir.CheckUniformBarriers verifies this),
// shared-memory writes in one barrier interval touch only the writing
// thread's own slot, and reads of other threads' slots happen only in a
// later interval. Global stores go only to the thread's own out[gid] slot.
// Under these rules the interpreter, both personalities, and every warp
// width must agree exactly.
package fuzz

import (
	"fmt"

	"gpucmp/internal/kir"
	"gpucmp/internal/workload"
)

// Features toggles the kernel-language surface the generator draws from.
type Features struct {
	I32        bool // signed arithmetic alongside unsigned
	F32        bool // float arithmetic and conversions
	ConstBuf   bool // a constant-space input buffer
	TexBuf     bool // a texture-space input buffer
	Shared     bool // shared-memory tiles with publish/barrier/consume phases
	Reduction  bool // an atomics-free shared-memory tree reduction
	LocalArray bool // a per-thread local array
	Loops      bool // data-dependent bounded loops, with unroll pragmas
}

// AllFeatures enables everything.
func AllFeatures() Features {
	return Features{I32: true, F32: true, ConstBuf: true, TexBuf: true,
		Shared: true, Reduction: true, LocalArray: true, Loops: true}
}

// GenConfig bounds one generated program.
type GenConfig struct {
	Block     int // threads per 1-D block; must be a power of two ≤ 256
	Grid      int // number of blocks
	BufLen    int // words in the global input buffer
	MaxPhases int // barrier-separated program phases
	MaxStmts  int // random statements per phase
	MaxDepth  int // expression tree depth
	Features  Features
}

// DefaultConfig fits every modelled device: 64-thread blocks stay inside
// the HD5870/Cell work-group limit of 256 and the Cell SPE local store.
func DefaultConfig() GenConfig {
	return GenConfig{
		Block:     64,
		Grid:      2,
		BufLen:    256,
		MaxPhases: 3,
		MaxStmts:  4,
		MaxDepth:  3,
		Features:  AllFeatures(),
	}
}

const (
	coefLen = 16 // constant-buffer words
	texLen  = 64 // texture-buffer words
	locLen  = 4  // per-thread local array words
)

// Generate builds the deterministic random program for one seed. The same
// (seed, cfg) pair always yields the same kernel and the same input data.
func Generate(seed uint64, cfg GenConfig) *Program {
	if cfg.Block <= 0 || cfg.Block&(cfg.Block-1) != 0 {
		panic(fmt.Sprintf("fuzz: Generate: block %d is not a power of two", cfg.Block))
	}
	g := &gen{
		cfg:  cfg,
		r:    workload.NewRNG(seed*0x9e3779b97f4a7c15 + 0x2545f4914f6cdd1d),
		varT: map[string]kir.Type{},
	}
	g.b = kir.NewKernel(fmt.Sprintf("fz%d", seed))
	g.in = g.b.GlobalBuffer("in", kir.U32)
	g.out = g.b.GlobalBuffer("out", kir.U32)
	if cfg.Features.ConstBuf && g.r.Intn(2) == 0 {
		g.coef = g.b.ConstBuffer("coef", kir.U32)
		g.hasCoef = true
	}
	if cfg.Features.TexBuf && g.r.Intn(2) == 0 {
		g.tex = g.b.TexBuffer("tex", kir.U32)
		g.hasTex = true
	}
	g.b.ScalarParam("s", kir.U32)
	if cfg.Features.Shared && g.r.Intn(3) != 0 {
		g.sh = g.b.SharedArray("sh", kir.U32, cfg.Block)
		g.hasShared = true
	}
	if cfg.Features.LocalArray && g.r.Intn(2) == 0 {
		g.loc = g.b.LocalArray("loc", kir.U32, locLen)
		g.hasLocal = true
	}

	g.declare("gid", g.b.GlobalIDX())
	if g.hasLocal {
		// Initialise every local slot so no path reads uninitialised memory.
		for i := 0; i < locLen; i++ {
			g.b.Store(g.loc, kir.U(uint32(i)), g.intExpr(1, kir.U32))
		}
	}

	phases := 1 + g.r.Intn(cfg.MaxPhases)
	for p := 0; p < phases; p++ {
		n := 1 + g.r.Intn(cfg.MaxStmts)
		for i := 0; i < n; i++ {
			g.stmt(2)
		}
		if g.hasShared && g.r.Intn(2) == 0 {
			g.publish()
		}
	}
	if g.hasShared && cfg.Features.Reduction && g.r.Intn(2) == 0 {
		g.reduction()
	}
	g.finalStore()

	k, err := g.b.Build()
	if err != nil {
		panic(fmt.Sprintf("fuzz: seed %d generated an invalid kernel: %v", seed, err))
	}
	if err := kir.CheckUniformBarriers(k); err != nil {
		panic(fmt.Sprintf("fuzz: seed %d generated divergent barriers: %v", seed, err))
	}
	if err := CheckBoundedLoops(k); err != nil {
		panic(fmt.Sprintf("fuzz: seed %d generated a non-terminating kernel: %v", seed, err))
	}

	prog := &Program{
		Seed:    seed,
		Kernel:  k,
		Grid:    cfg.Grid,
		Block:   cfg.Block,
		Out:     "out",
		Buffers: map[string][]uint32{},
		Scalars: map[string]uint32{"s": g.r.Uint32()},
	}
	prog.Buffers["in"] = g.words(cfg.BufLen)
	prog.Buffers["out"] = make([]uint32, cfg.Grid*cfg.Block)
	if g.hasCoef {
		prog.Buffers["coef"] = g.words(coefLen)
	}
	if g.hasTex {
		prog.Buffers["tex"] = g.words(texLen)
	}
	return prog
}

type gen struct {
	cfg GenConfig
	r   *workload.RNG
	b   *kir.Builder

	in, out, coef, tex, sh, loc kir.Buf
	hasCoef, hasTex             bool
	hasShared, hasLocal         bool

	intVars []string // declared integer scalars (U32 or I32)
	f32Vars []string
	varT    map[string]kir.Type
	nv      int

	shWritten     bool // a previous barrier interval published shared data
	readSinceBar  bool // this interval read shared memory
	writeSinceBar bool // this interval wrote shared memory
}

func (g *gen) words(n int) []uint32 {
	out := make([]uint32, n)
	for i := range out {
		out[i] = g.r.Uint32()
	}
	return out
}

func (g *gen) declare(name string, init kir.Expr) {
	g.b.Declare(name, init)
	t := init.Type()
	g.varT[name] = t
	if t == kir.F32 {
		g.f32Vars = append(g.f32Vars, name)
	} else {
		g.intVars = append(g.intVars, name)
	}
}

func (g *gen) fresh() string {
	g.nv++
	return fmt.Sprintf("v%d", g.nv)
}

func (g *gen) intType() kir.Type {
	if g.cfg.Features.I32 && g.r.Intn(3) == 0 {
		return kir.I32
	}
	return kir.U32
}

func (g *gen) ref(name string) kir.Expr {
	return &kir.VarRef{Name: name, T: g.varT[name]}
}

// barrier emits a work-group barrier and resets the interval bookkeeping.
func (g *gen) barrier() {
	g.b.Barrier()
	if g.writeSinceBar {
		g.shWritten = true
	}
	g.readSinceBar = false
	g.writeSinceBar = false
}

// shReadable reports whether a shared load is race-free right now: an
// earlier interval published data and this interval has not written.
func (g *gen) shReadable() bool {
	return g.hasShared && g.shWritten && !g.writeSinceBar
}

// ownSlot returns a bijective per-thread shared-memory index, so parallel
// publishes never collide.
func (g *gen) ownSlot() kir.Expr {
	tid := kir.Bi(kir.TidX)
	n := uint32(g.cfg.Block)
	switch g.r.Intn(3) {
	case 0:
		return tid
	case 1:
		return kir.Rem(kir.Add(tid, kir.U(1+g.r.Uint32()%(n-1))), kir.U(n))
	default:
		return kir.Xor(tid, kir.U(g.r.Uint32()%n)) // block is a power of two
	}
}

// publish writes this thread's slot and closes the interval with a
// barrier. If the current interval already consumed shared data, a barrier
// separates the reads from the write.
func (g *gen) publish() {
	if g.readSinceBar {
		g.barrier()
	}
	g.writeSinceBar = true // no shared loads inside the published value
	val := g.intExpr(g.cfg.MaxDepth, kir.U32)
	g.b.Store(g.sh, g.ownSlot(), val)
	g.barrier()
}

// reduction emits an atomics-free shared-memory tree reduction: publish,
// then log2(block) rounds of "if (tid < stride) sh[tid] ⊕= sh[tid+stride]"
// with a top-level barrier between rounds. Every thread then reads the
// root. The combining operators are associative and commutative over u32,
// so the result is independent of both schedule and warp width.
func (g *gen) reduction() {
	if g.readSinceBar || g.writeSinceBar {
		g.barrier()
	}
	g.writeSinceBar = true
	g.b.Store(g.sh, kir.Bi(kir.TidX), g.intExpr(g.cfg.MaxDepth, kir.U32))
	g.barrier()

	ops := []kir.BinOp{kir.OpAdd, kir.OpXor, kir.OpAnd, kir.OpOr, kir.OpMin, kir.OpMax}
	op := ops[g.r.Intn(len(ops))]
	tid := kir.Bi(kir.TidX)
	for stride := g.cfg.Block / 2; stride >= 1; stride /= 2 {
		g.b.If(kir.Lt(tid, kir.U(uint32(stride))), func() {
			a := &kir.Load{Buf: g.sh.Name(), Index: kir.Bi(kir.TidX), T: kir.U32}
			bb := &kir.Load{Buf: g.sh.Name(), Index: kir.Add(kir.Bi(kir.TidX), kir.U(uint32(stride))), T: kir.U32}
			g.b.Store(g.sh, kir.Bi(kir.TidX), &kir.Bin{Op: op, L: a, R: bb})
		})
		g.b.Barrier()
	}
	g.shWritten = true
	g.readSinceBar, g.writeSinceBar = false, false

	name := "red" + g.fresh()
	g.readSinceBar = true
	g.declare(name, &kir.Load{Buf: g.sh.Name(), Index: kir.U(0), T: kir.U32})
}

// finalStore writes a mix of every live scalar to out[gid], so nothing the
// kernel computed is dead code.
func (g *gen) finalStore() {
	var acc kir.Expr = g.ref("gid")
	for _, v := range g.intVars {
		if v == "gid" {
			continue
		}
		term := g.ref(v)
		if g.varT[v] == kir.I32 {
			term = kir.CastTo(kir.U32, term)
		}
		acc = kir.Xor(kir.Mul(acc, kir.U(0x9e3779b1)), term)
	}
	for _, v := range g.f32Vars {
		acc = kir.Add(acc, kir.CastTo(kir.U32, g.ref(v)))
	}
	g.b.Store(g.out, g.ref("gid"), acc)
	if g.r.Intn(3) == 0 {
		// A conditional overwrite exercises guarded/predicated stores.
		g.b.If(g.cond(1), func() {
			g.b.Store(g.out, g.ref("gid"), g.intExpr(2, kir.U32))
		})
	}
}

// stmt emits one random statement at the current block level. depth bounds
// control-flow nesting.
func (g *gen) stmt(depth int) {
	switch g.r.Intn(8) {
	case 0, 1:
		g.declare(g.fresh(), g.intExpr(g.cfg.MaxDepth, g.intType()))
	case 2:
		if g.cfg.Features.F32 {
			g.declare(g.fresh(), g.f32Expr(g.cfg.MaxDepth))
			return
		}
		g.stmt(depth)
	case 3:
		g.assign()
	case 4:
		if depth > 0 && len(g.intVars) > 1 {
			g.ifStmt(depth)
			return
		}
		g.stmt(0)
	case 5:
		if depth > 0 && g.cfg.Features.Loops && len(g.intVars) > 1 {
			g.forStmt(depth)
			return
		}
		g.stmt(0)
	case 6:
		if g.hasLocal {
			idx := kir.Rem(g.toU32(g.intExpr(2, g.intType())), kir.U(locLen))
			g.b.Store(g.loc, idx, g.intExpr(2, kir.U32))
			return
		}
		g.stmt(0)
	default:
		if g.shReadable() {
			g.readSinceBar = true
			idx := kir.Rem(g.toU32(g.intExpr(2, g.intType())), kir.U(uint32(g.cfg.Block)))
			g.declare(g.fresh(), &kir.Load{Buf: g.sh.Name(), Index: idx, T: kir.U32})
			return
		}
		g.declare(g.fresh(), g.intExpr(g.cfg.MaxDepth, kir.U32))
	}
}

func (g *gen) assign() {
	if g.cfg.Features.F32 && len(g.f32Vars) > 0 && g.r.Intn(3) == 0 {
		name := g.f32Vars[g.r.Intn(len(g.f32Vars))]
		g.b.Assign(g.ref(name), g.f32Expr(g.cfg.MaxDepth))
		return
	}
	// Never reassign gid: out[gid] must remain this thread's own slot or
	// the final stores would race.
	var targets []string
	for _, v := range g.intVars {
		if v != "gid" {
			targets = append(targets, v)
		}
	}
	if len(targets) == 0 {
		return
	}
	name := targets[g.r.Intn(len(targets))]
	g.b.Assign(g.ref(name), g.intExpr(g.cfg.MaxDepth, g.varT[name]))
}

func (g *gen) ifStmt(depth int) {
	cond := g.cond(2)
	if g.r.Intn(2) == 0 {
		g.b.If(cond, func() { g.innerStmts(depth - 1) })
	} else {
		g.b.IfElse(cond,
			func() { g.innerStmts(depth - 1) },
			func() { g.innerStmts(depth - 1) })
	}
}

// forStmt emits a counted loop with a data-dependent but bounded trip
// count, optionally carrying an unroll pragma (the FDTD point-a shape).
func (g *gen) forStmt(depth int) {
	trips := kir.Rem(g.toU32(g.intExpr(1, g.intType())), kir.U(uint32(2+g.r.Intn(6))))
	unroll := 0
	if g.r.Intn(3) == 0 {
		unroll = []int{kir.UnrollFull, 2, 3, 4}[g.r.Intn(4)]
	}
	name := "i" + g.fresh()
	g.b.ForUnroll(name, kir.U(0), trips, kir.U(1), unroll, func(v kir.Expr) {
		g.varT[name] = kir.U32
		g.innerStmts(depth - 1)
		delete(g.varT, name)
	})
}

// innerStmts populates an if/for body with side-effecting statements only
// (assignments and local stores — never declarations, whose scope would end
// with the block, and never barriers).
func (g *gen) innerStmts(depth int) {
	n := 1 + g.r.Intn(2)
	for i := 0; i < n; i++ {
		switch g.r.Intn(4) {
		case 0:
			if g.hasLocal {
				idx := kir.Rem(g.toU32(g.intExpr(1, g.intType())), kir.U(locLen))
				g.b.Store(g.loc, idx, g.intExpr(2, kir.U32))
				continue
			}
			g.assign()
		case 1:
			if depth > 0 && len(g.intVars) > 1 {
				g.ifStmt(depth)
				continue
			}
			g.assign()
		default:
			g.assign()
		}
	}
}

// toU32 coerces an integer expression to U32-typed semantics (a bit-level
// no-op on both pipelines) so Rem-wrapped indices are always in range.
func (g *gen) toU32(e kir.Expr) kir.Expr {
	if e.Type() == kir.U32 {
		return e
	}
	return kir.CastTo(kir.U32, e)
}

// intConsts are the interesting integer boundary values.
var intConsts = []uint32{0, 1, 2, 3, 5, 7, 31, 32, 33, 64, 255, 256, 1024,
	0x7fffffff, 0x80000000, 0xfffffffe, 0xffffffff}

// intLeaf returns an expression of exactly type t.
func (g *gen) intLeaf(t kir.Type) kir.Expr {
	pick := g.r.Intn(10)
	switch {
	case pick < 3:
		c := intConsts[g.r.Intn(len(intConsts))]
		if g.r.Intn(2) == 0 {
			c = g.r.Uint32() % 4096
		}
		return &kir.ConstInt{T: t, V: int64(c)}
	case pick == 3:
		if t == kir.U32 {
			return &kir.ParamRef{Name: "s", T: kir.U32}
		}
		return kir.CastTo(t, &kir.ParamRef{Name: "s", T: kir.U32})
	case pick == 4:
		bis := []kir.BuiltinKind{kir.TidX, kir.NtidX, kir.CtaidX, kir.NctaidX}
		var e kir.Expr = kir.Bi(bis[g.r.Intn(len(bis))])
		if t != kir.U32 {
			e = kir.CastTo(t, e)
		}
		return e
	case pick <= 7:
		// A variable of the exact type, if one exists.
		var match []string
		for _, v := range g.intVars {
			if g.varT[v] == t {
				match = append(match, v)
			}
		}
		if len(match) > 0 {
			return g.ref(match[g.r.Intn(len(match))])
		}
		fallthrough
	default:
		var e kir.Expr = g.ref("gid")
		if t != kir.U32 {
			e = kir.CastTo(t, e)
		}
		return e
	}
}

// load returns a wrapped-index load from one of the read-only buffers (or
// the local array, or readable shared memory).
func (g *gen) load(depth int, t kir.Type) kir.Expr {
	type src struct {
		buf kir.Buf
		n   uint32
	}
	var srcs []src
	srcs = append(srcs, src{g.in, uint32(g.cfg.BufLen)})
	if g.hasCoef {
		srcs = append(srcs, src{g.coef, coefLen})
	}
	if g.hasTex {
		srcs = append(srcs, src{g.tex, texLen})
	}
	if g.hasLocal {
		srcs = append(srcs, src{g.loc, locLen})
	}
	if g.shReadable() {
		srcs = append(srcs, src{g.sh, uint32(g.cfg.Block)})
	}
	s := srcs[g.r.Intn(len(srcs))]
	if g.hasShared && s.buf.Name() == g.sh.Name() {
		g.readSinceBar = true
	}
	idx := kir.Rem(g.toU32(g.intExpr(depth-1, g.intType())), kir.U(s.n))
	var e kir.Expr = &kir.Load{Buf: s.buf.Name(), Index: idx, T: kir.U32}
	if t != kir.U32 {
		e = kir.CastTo(t, e)
	}
	return e
}

// intExpr builds a random integer expression whose semantic type (the type
// of the left operand, as both the interpreter and the compilers resolve
// it) is exactly t.
func (g *gen) intExpr(depth int, t kir.Type) kir.Expr {
	if depth <= 0 {
		return g.intLeaf(t)
	}
	switch g.r.Intn(12) {
	case 0, 1:
		return g.intLeaf(t)
	case 2, 3:
		ops := []kir.BinOp{kir.OpAdd, kir.OpSub, kir.OpMul, kir.OpAnd,
			kir.OpOr, kir.OpXor, kir.OpMin, kir.OpMax}
		return &kir.Bin{Op: ops[g.r.Intn(len(ops))],
			L: g.intExpr(depth-1, t), R: g.intExpr(depth-1, g.intType())}
	case 4:
		op := kir.OpShl
		if g.r.Intn(2) == 0 {
			op = kir.OpShr
		}
		return &kir.Bin{Op: op, L: g.intExpr(depth-1, t),
			R: &kir.ConstInt{T: kir.U32, V: int64(g.r.Intn(33))}}
	case 5:
		// Division and remainder; both pipelines define the zero-divisor
		// case identically, so an unguarded denominator is fair game too.
		op := kir.OpDiv
		if g.r.Intn(2) == 0 {
			op = kir.OpRem
		}
		den := g.intExpr(depth-1, g.intType())
		if g.r.Intn(3) != 0 {
			den = &kir.Bin{Op: kir.OpOr, L: den, R: &kir.ConstInt{T: den.Type(), V: 1}}
		}
		return &kir.Bin{Op: op, L: g.intExpr(depth-1, t), R: den}
	case 6:
		// Powers of two feed the OpenCL personality's strength reducer.
		pow := uint32(1) << uint(1+g.r.Intn(8))
		ops := []kir.BinOp{kir.OpMul, kir.OpDiv, kir.OpRem}
		return &kir.Bin{Op: ops[g.r.Intn(3)],
			L: g.intExpr(depth-1, t), R: &kir.ConstInt{T: kir.U32, V: int64(pow)}}
	case 7:
		return kir.Select(g.cond(depth-1), g.intExpr(depth-1, t), g.intExpr(depth-1, t))
	case 8:
		switch g.r.Intn(3) {
		case 0:
			return kir.Not(g.intExpr(depth - 1, t))
		case 1:
			return kir.Neg(g.intExpr(depth-1, t))
		default:
			return kir.Abs(g.intExpr(depth-1, t))
		}
	case 9:
		// Conversion chains: through the other integer type, or F32.
		if g.cfg.Features.F32 && g.r.Intn(3) == 0 {
			return kir.CastTo(t, g.f32Expr(depth-1))
		}
		other := kir.U32
		if t == kir.U32 && g.cfg.Features.I32 {
			other = kir.I32
		}
		return kir.CastTo(t, g.intExpr(depth-1, other))
	default:
		return g.load(depth, t)
	}
}

var f32Consts = []float32{0, 1, -1, 0.5, 2, -2.5, 3.14159, 1e-6, 1e6, 1e30, 65504}

func (g *gen) f32Leaf() kir.Expr {
	switch g.r.Intn(4) {
	case 0:
		return kir.F(f32Consts[g.r.Intn(len(f32Consts))])
	case 1:
		if len(g.f32Vars) > 0 {
			return g.ref(g.f32Vars[g.r.Intn(len(g.f32Vars))])
		}
		fallthrough
	case 2:
		return kir.CastTo(kir.F32, g.intLeaf(g.intType()))
	default:
		return kir.F(g.r.Float32()*200 - 100)
	}
}

// f32Expr builds a random F32 expression. Only operations both pipelines
// evaluate with identical float32 rounding are drawn, so agreement is
// bit-for-bit, not approximate.
func (g *gen) f32Expr(depth int) kir.Expr {
	if depth <= 0 {
		return g.f32Leaf()
	}
	switch g.r.Intn(8) {
	case 0, 1:
		return g.f32Leaf()
	case 2, 3:
		ops := []kir.BinOp{kir.OpAdd, kir.OpSub, kir.OpMul, kir.OpDiv,
			kir.OpMin, kir.OpMax}
		return &kir.Bin{Op: ops[g.r.Intn(len(ops))],
			L: g.f32Expr(depth - 1), R: g.f32Expr(depth - 1)}
	case 4:
		if g.r.Intn(2) == 0 {
			return kir.Neg(g.f32Expr(depth - 1))
		}
		return kir.Abs(g.f32Expr(depth - 1))
	case 5:
		// Intrinsics over |x| keep sqrt/log in their real domain most of
		// the time; a NaN escaping is still deterministic on both sides.
		ops := []kir.UnOp{kir.OpSqrt, kir.OpRsqrt, kir.OpExp2, kir.OpLog2,
			kir.OpSin, kir.OpCos}
		return &kir.Un{Op: ops[g.r.Intn(len(ops))], X: kir.Abs(g.f32Expr(depth - 1))}
	case 6:
		return kir.Select(g.cond(depth-1), g.f32Expr(depth-1), g.f32Expr(depth-1))
	default:
		return kir.CastTo(kir.F32, g.intExpr(depth-1, g.intType()))
	}
}

// cond builds a Bool expression.
func (g *gen) cond(depth int) kir.Expr {
	ops := []kir.BinOp{kir.OpEq, kir.OpNe, kir.OpLt, kir.OpLe, kir.OpGt, kir.OpGe}
	mk := func() kir.Expr {
		if g.cfg.Features.F32 && g.r.Intn(4) == 0 {
			return &kir.Bin{Op: ops[g.r.Intn(len(ops))],
				L: g.f32Expr(depth), R: g.f32Expr(depth)}
		}
		t := g.intType()
		return &kir.Bin{Op: ops[g.r.Intn(len(ops))],
			L: g.intExpr(depth, t), R: g.intExpr(depth, g.intType())}
	}
	c := mk()
	switch g.r.Intn(4) {
	case 0:
		return kir.LAnd(c, mk())
	case 1:
		return kir.LOr(c, mk())
	case 2:
		return kir.Not(c)
	}
	return c
}
