package fuzz

// JSON serialisation of fuzz programs, used for the on-disk regression
// corpus. Shrunk kernels cannot be regenerated from their seed (the
// shrinker edits the tree directly), so the corpus stores the full AST as
// a tagged union, plus the input data and launch shape. A formatted
// rendering of the kernel is embedded for human triage; it is ignored on
// decode and regenerated on encode.
//
// The kernel-tree codec itself lives in internal/kir (kir.KernelJSON):
// it is shared with the untrusted-submission API, whose request body is a
// superset of this corpus format — any corpus file can be POSTed to
// /kernels unchanged.

import (
	"encoding/json"
	"fmt"
	"strings"

	"gpucmp/internal/kir"
)

type progJSON struct {
	Seed    uint64              `json:"seed"`
	Grid    int                 `json:"grid"`
	Block   int                 `json:"block"`
	Out     string              `json:"out"`
	Scalars map[string]uint32   `json:"scalars,omitempty"`
	Buffers map[string][]uint32 `json:"buffers"`
	Kernel  kir.KernelJSON      `json:"kernel"`
	Source  []string            `json:"source,omitempty"` // informational only
}

// Encode renders the program as indented JSON.
func Encode(p *Program) ([]byte, error) {
	pj := progJSON{
		Seed: p.Seed, Grid: p.Grid, Block: p.Block, Out: p.Out,
		Scalars: p.Scalars, Buffers: p.Buffers,
		Kernel: kir.EncodeKernelJSON(p.Kernel),
		Source: strings.Split(strings.TrimRight(kir.Format(p.Kernel), "\n"), "\n"),
	}
	return json.MarshalIndent(&pj, "", " ")
}

// Decode parses a program written by Encode and type-checks the kernel.
func Decode(data []byte) (*Program, error) {
	var pj progJSON
	if err := json.Unmarshal(data, &pj); err != nil {
		return nil, fmt.Errorf("fuzz: corpus decode: %w", err)
	}
	k, err := kir.DecodeKernelJSON(&pj.Kernel)
	if err != nil {
		return nil, err
	}
	if err := kir.Check(k); err != nil {
		return nil, fmt.Errorf("fuzz: corpus kernel rejected by checker: %w", err)
	}
	p := &Program{
		Seed: pj.Seed, Kernel: k, Grid: pj.Grid, Block: pj.Block,
		Out: pj.Out, Buffers: pj.Buffers, Scalars: pj.Scalars,
	}
	if p.Scalars == nil {
		p.Scalars = map[string]uint32{}
	}
	if p.Buffers == nil {
		return nil, fmt.Errorf("fuzz: corpus program has no buffers")
	}
	if _, ok := p.Buffers[p.Out]; !ok {
		return nil, fmt.Errorf("fuzz: corpus program output buffer %q missing", p.Out)
	}
	return p, nil
}
