package fuzz

// JSON serialisation of fuzz programs, used for the on-disk regression
// corpus. Shrunk kernels cannot be regenerated from their seed (the
// shrinker edits the tree directly), so the corpus stores the full AST as
// a tagged union, plus the input data and launch shape. A formatted
// rendering of the kernel is embedded for human triage; it is ignored on
// decode and regenerated on encode.

import (
	"encoding/json"
	"fmt"
	"strings"

	"gpucmp/internal/kir"
)

type progJSON struct {
	Seed    uint64            `json:"seed"`
	Grid    int               `json:"grid"`
	Block   int               `json:"block"`
	Out     string            `json:"out"`
	Scalars map[string]uint32 `json:"scalars,omitempty"`
	Buffers map[string][]uint32 `json:"buffers"`
	Kernel  kernelJSON        `json:"kernel"`
	Source  []string          `json:"source,omitempty"` // informational only
}

type kernelJSON struct {
	Name   string      `json:"name"`
	Params []paramJSON `json:"params"`
	Shared []arrayJSON `json:"shared,omitempty"`
	Local  []arrayJSON `json:"local,omitempty"`
	Warp   int         `json:"warpAssumption,omitempty"`
	Body   []stmtJSON  `json:"body"`
}

type paramJSON struct {
	Name   string `json:"name"`
	Type   string `json:"type"`
	Buffer bool   `json:"buffer,omitempty"`
	Space  string `json:"space,omitempty"`
}

type arrayJSON struct {
	Name  string `json:"name"`
	Type  string `json:"type"`
	Count int    `json:"count"`
}

type stmtJSON struct {
	Kind   string     `json:"kind"`
	Name   string     `json:"name,omitempty"`
	Buf    string     `json:"buf,omitempty"`
	Op     string     `json:"op,omitempty"`
	Cond   *exprJSON  `json:"cond,omitempty"`
	Index  *exprJSON  `json:"index,omitempty"`
	Value  *exprJSON  `json:"value,omitempty"`
	Init   *exprJSON  `json:"init,omitempty"`
	Limit  *exprJSON  `json:"limit,omitempty"`
	Step   *exprJSON  `json:"step,omitempty"`
	Unroll int        `json:"unroll,omitempty"`
	Then   []stmtJSON `json:"then,omitempty"`
	Else   []stmtJSON `json:"else,omitempty"`
	Body   []stmtJSON `json:"body,omitempty"`
}

type exprJSON struct {
	Kind  string    `json:"kind"`
	Type  string    `json:"type,omitempty"`
	Int   int64     `json:"int,omitempty"`
	Float float64   `json:"float,omitempty"`
	Name  string    `json:"name,omitempty"`
	Op    string    `json:"op,omitempty"`
	L     *exprJSON `json:"l,omitempty"`
	R     *exprJSON `json:"r,omitempty"`
	X     *exprJSON `json:"x,omitempty"`
	Cond  *exprJSON `json:"cond,omitempty"`
	A     *exprJSON `json:"a,omitempty"`
	B     *exprJSON `json:"b,omitempty"`
	Index *exprJSON `json:"index,omitempty"`
}

// ---- enum <-> string tables, keyed by the kir String() forms ----

var typeNames = map[kir.Type]string{
	kir.U32: kir.U32.String(), kir.I32: kir.I32.String(),
	kir.F32: kir.F32.String(), kir.Bool: kir.Bool.String(),
}

var spaceNames = map[kir.MemSpace]string{
	kir.Global: kir.Global.String(), kir.Const: kir.Const.String(),
	kir.Texture: kir.Texture.String(), kir.Shared: kir.Shared.String(),
	kir.Local: kir.Local.String(),
}

var binOps = []kir.BinOp{
	kir.OpAdd, kir.OpSub, kir.OpMul, kir.OpDiv, kir.OpRem, kir.OpMin,
	kir.OpMax, kir.OpAnd, kir.OpOr, kir.OpXor, kir.OpShl, kir.OpShr,
	kir.OpEq, kir.OpNe, kir.OpLt, kir.OpLe, kir.OpGt, kir.OpGe,
	kir.OpLAnd, kir.OpLOr,
}

var unOps = []kir.UnOp{
	kir.OpNeg, kir.OpNot, kir.OpAbs, kir.OpSqrt, kir.OpRsqrt, kir.OpSin,
	kir.OpCos, kir.OpExp2, kir.OpLog2,
}

var builtins = []kir.BuiltinKind{
	kir.TidX, kir.TidY, kir.NtidX, kir.NtidY, kir.CtaidX, kir.CtaidY,
	kir.NctaidX, kir.NctaidY, kir.WarpSize,
}

var atomicNames = map[kir.AtomicOp]string{
	kir.AtomicAdd: "add", kir.AtomicOr: "or",
	kir.AtomicMax: "max", kir.AtomicExch: "exch",
}

func reverse[K comparable](m map[K]string) map[string]K {
	r := make(map[string]K, len(m))
	for k, v := range m {
		r[v] = k
	}
	return r
}

func stringerMap[T fmt.Stringer](vals []T) map[string]T {
	r := make(map[string]T, len(vals))
	for _, v := range vals {
		r[v.String()] = v
	}
	return r
}

var (
	typeByName    = reverse(typeNames)
	spaceByName   = reverse(spaceNames)
	binOpByName   = stringerMap(binOps)
	unOpByName    = stringerMap(unOps)
	builtinByName = stringerMap(builtins)
	atomicByName  = reverse(atomicNames)
)

// Encode renders the program as indented JSON.
func Encode(p *Program) ([]byte, error) {
	pj := progJSON{
		Seed: p.Seed, Grid: p.Grid, Block: p.Block, Out: p.Out,
		Scalars: p.Scalars, Buffers: p.Buffers,
		Kernel: encodeKernel(p.Kernel),
		Source: strings.Split(strings.TrimRight(kir.Format(p.Kernel), "\n"), "\n"),
	}
	return json.MarshalIndent(&pj, "", " ")
}

// Decode parses a program written by Encode and type-checks the kernel.
func Decode(data []byte) (*Program, error) {
	var pj progJSON
	if err := json.Unmarshal(data, &pj); err != nil {
		return nil, fmt.Errorf("fuzz: corpus decode: %w", err)
	}
	k, err := decodeKernel(&pj.Kernel)
	if err != nil {
		return nil, err
	}
	if err := kir.Check(k); err != nil {
		return nil, fmt.Errorf("fuzz: corpus kernel rejected by checker: %w", err)
	}
	p := &Program{
		Seed: pj.Seed, Kernel: k, Grid: pj.Grid, Block: pj.Block,
		Out: pj.Out, Buffers: pj.Buffers, Scalars: pj.Scalars,
	}
	if p.Scalars == nil {
		p.Scalars = map[string]uint32{}
	}
	if p.Buffers == nil {
		return nil, fmt.Errorf("fuzz: corpus program has no buffers")
	}
	if _, ok := p.Buffers[p.Out]; !ok {
		return nil, fmt.Errorf("fuzz: corpus program output buffer %q missing", p.Out)
	}
	return p, nil
}

func encodeKernel(k *kir.Kernel) kernelJSON {
	kj := kernelJSON{Name: k.Name, Warp: k.WarpWidthAssumption}
	for _, p := range k.Params {
		pj := paramJSON{Name: p.Name, Type: typeNames[p.T], Buffer: p.Buffer}
		if p.Buffer {
			pj.Space = spaceNames[p.Space]
		}
		kj.Params = append(kj.Params, pj)
	}
	for _, a := range k.SharedArrays {
		kj.Shared = append(kj.Shared, arrayJSON{Name: a.Name, Type: typeNames[a.T], Count: a.Count})
	}
	for _, a := range k.LocalArrays {
		kj.Local = append(kj.Local, arrayJSON{Name: a.Name, Type: typeNames[a.T], Count: a.Count})
	}
	kj.Body = encodeStmts(k.Body)
	return kj
}

func decodeKernel(kj *kernelJSON) (*kir.Kernel, error) {
	k := &kir.Kernel{Name: kj.Name, WarpWidthAssumption: kj.Warp}
	for _, pj := range kj.Params {
		t, ok := typeByName[pj.Type]
		if !ok {
			return nil, fmt.Errorf("fuzz: param %s: unknown type %q", pj.Name, pj.Type)
		}
		p := kir.Param{Name: pj.Name, T: t, Buffer: pj.Buffer}
		if pj.Buffer {
			sp, ok := spaceByName[pj.Space]
			if !ok {
				return nil, fmt.Errorf("fuzz: param %s: unknown space %q", pj.Name, pj.Space)
			}
			p.Space = sp
		}
		k.Params = append(k.Params, p)
	}
	var err error
	if k.SharedArrays, err = decodeArrays(kj.Shared); err != nil {
		return nil, err
	}
	if k.LocalArrays, err = decodeArrays(kj.Local); err != nil {
		return nil, err
	}
	if k.Body, err = decodeStmts(kj.Body); err != nil {
		return nil, err
	}
	return k, nil
}

func decodeArrays(ajs []arrayJSON) ([]kir.Array, error) {
	var out []kir.Array
	for _, aj := range ajs {
		t, ok := typeByName[aj.Type]
		if !ok {
			return nil, fmt.Errorf("fuzz: array %s: unknown type %q", aj.Name, aj.Type)
		}
		out = append(out, kir.Array{Name: aj.Name, T: t, Count: aj.Count})
	}
	return out, nil
}

func encodeStmts(stmts []kir.Stmt) []stmtJSON {
	var out []stmtJSON
	for _, s := range stmts {
		out = append(out, encodeStmt(s))
	}
	return out
}

func encodeStmt(s kir.Stmt) stmtJSON {
	switch s := s.(type) {
	case *kir.DeclStmt:
		return stmtJSON{Kind: "decl", Name: s.Name, Value: encodeExpr(s.Init)}
	case *kir.AssignStmt:
		return stmtJSON{Kind: "assign", Name: s.Name, Value: encodeExpr(s.Value)}
	case *kir.StoreStmt:
		return stmtJSON{Kind: "store", Buf: s.Buf, Index: encodeExpr(s.Index), Value: encodeExpr(s.Value)}
	case *kir.AtomicStmt:
		return stmtJSON{Kind: "atomic", Buf: s.Buf, Op: atomicNames[s.Op],
			Index: encodeExpr(s.Index), Value: encodeExpr(s.Value), Name: s.Result}
	case *kir.IfStmt:
		return stmtJSON{Kind: "if", Cond: encodeExpr(s.Cond),
			Then: encodeStmts(s.Then), Else: encodeStmts(s.Else)}
	case *kir.ForStmt:
		return stmtJSON{Kind: "for", Name: s.Var,
			Init: encodeExpr(s.Init), Limit: encodeExpr(s.Limit), Step: encodeExpr(s.Step),
			Unroll: s.Unroll, Body: encodeStmts(s.Body)}
	case *kir.BarrierStmt:
		return stmtJSON{Kind: "barrier"}
	default:
		panic(fmt.Sprintf("fuzz: encode: unknown statement %T", s))
	}
}

func decodeStmts(sjs []stmtJSON) ([]kir.Stmt, error) {
	var out []kir.Stmt
	for i := range sjs {
		s, err := decodeStmt(&sjs[i])
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}

func decodeStmt(sj *stmtJSON) (kir.Stmt, error) {
	switch sj.Kind {
	case "decl":
		init, err := decodeExpr(sj.Value)
		if err != nil {
			return nil, err
		}
		return &kir.DeclStmt{Name: sj.Name, T: init.Type(), Init: init}, nil
	case "assign":
		v, err := decodeExpr(sj.Value)
		if err != nil {
			return nil, err
		}
		return &kir.AssignStmt{Name: sj.Name, Value: v}, nil
	case "store":
		idx, err := decodeExpr(sj.Index)
		if err != nil {
			return nil, err
		}
		v, err := decodeExpr(sj.Value)
		if err != nil {
			return nil, err
		}
		return &kir.StoreStmt{Buf: sj.Buf, Index: idx, Value: v}, nil
	case "atomic":
		op, ok := atomicByName[sj.Op]
		if !ok {
			return nil, fmt.Errorf("fuzz: unknown atomic op %q", sj.Op)
		}
		idx, err := decodeExpr(sj.Index)
		if err != nil {
			return nil, err
		}
		v, err := decodeExpr(sj.Value)
		if err != nil {
			return nil, err
		}
		return &kir.AtomicStmt{Buf: sj.Buf, Op: op, Index: idx, Value: v, Result: sj.Name}, nil
	case "if":
		cond, err := decodeExpr(sj.Cond)
		if err != nil {
			return nil, err
		}
		then, err := decodeStmts(sj.Then)
		if err != nil {
			return nil, err
		}
		els, err := decodeStmts(sj.Else)
		if err != nil {
			return nil, err
		}
		return &kir.IfStmt{Cond: cond, Then: then, Else: els}, nil
	case "for":
		init, err := decodeExpr(sj.Init)
		if err != nil {
			return nil, err
		}
		limit, err := decodeExpr(sj.Limit)
		if err != nil {
			return nil, err
		}
		step, err := decodeExpr(sj.Step)
		if err != nil {
			return nil, err
		}
		body, err := decodeStmts(sj.Body)
		if err != nil {
			return nil, err
		}
		return &kir.ForStmt{Var: sj.Name, T: init.Type(), Init: init, Limit: limit,
			Step: step, Body: body, Unroll: sj.Unroll}, nil
	case "barrier":
		return &kir.BarrierStmt{}, nil
	default:
		return nil, fmt.Errorf("fuzz: unknown statement kind %q", sj.Kind)
	}
}

func encodeExpr(e kir.Expr) *exprJSON {
	if e == nil {
		return nil
	}
	switch e := e.(type) {
	case *kir.ConstInt:
		return &exprJSON{Kind: "int", Type: typeNames[e.T], Int: e.V}
	case *kir.ConstFloat:
		return &exprJSON{Kind: "float", Float: float64(e.V)}
	case *kir.ParamRef:
		return &exprJSON{Kind: "param", Name: e.Name, Type: typeNames[e.T]}
	case *kir.VarRef:
		return &exprJSON{Kind: "var", Name: e.Name, Type: typeNames[e.T]}
	case *kir.Builtin:
		return &exprJSON{Kind: "builtin", Name: e.Kind.String()}
	case *kir.Bin:
		return &exprJSON{Kind: "bin", Op: e.Op.String(), L: encodeExpr(e.L), R: encodeExpr(e.R)}
	case *kir.Un:
		return &exprJSON{Kind: "un", Op: e.Op.String(), X: encodeExpr(e.X)}
	case *kir.Sel:
		return &exprJSON{Kind: "sel", Cond: encodeExpr(e.Cond), A: encodeExpr(e.A), B: encodeExpr(e.B)}
	case *kir.Cast:
		return &exprJSON{Kind: "cast", Type: typeNames[e.To], X: encodeExpr(e.X)}
	case *kir.Load:
		return &exprJSON{Kind: "load", Name: e.Buf, Type: typeNames[e.T], Index: encodeExpr(e.Index)}
	default:
		panic(fmt.Sprintf("fuzz: encode: unknown expression %T", e))
	}
}

func decodeExpr(ej *exprJSON) (kir.Expr, error) {
	if ej == nil {
		return nil, fmt.Errorf("fuzz: missing expression")
	}
	t, typeOK := typeByName[ej.Type]
	switch ej.Kind {
	case "int":
		if !typeOK {
			return nil, fmt.Errorf("fuzz: int literal with type %q", ej.Type)
		}
		return &kir.ConstInt{T: t, V: ej.Int}, nil
	case "float":
		return &kir.ConstFloat{V: float32(ej.Float)}, nil
	case "param":
		if !typeOK {
			return nil, fmt.Errorf("fuzz: param %s with type %q", ej.Name, ej.Type)
		}
		return &kir.ParamRef{Name: ej.Name, T: t}, nil
	case "var":
		if !typeOK {
			return nil, fmt.Errorf("fuzz: var %s with type %q", ej.Name, ej.Type)
		}
		return &kir.VarRef{Name: ej.Name, T: t}, nil
	case "builtin":
		b, ok := builtinByName[ej.Name]
		if !ok {
			return nil, fmt.Errorf("fuzz: unknown builtin %q", ej.Name)
		}
		return &kir.Builtin{Kind: b}, nil
	case "bin":
		op, ok := binOpByName[ej.Op]
		if !ok {
			return nil, fmt.Errorf("fuzz: unknown binary op %q", ej.Op)
		}
		l, err := decodeExpr(ej.L)
		if err != nil {
			return nil, err
		}
		r, err := decodeExpr(ej.R)
		if err != nil {
			return nil, err
		}
		return &kir.Bin{Op: op, L: l, R: r}, nil
	case "un":
		op, ok := unOpByName[ej.Op]
		if !ok {
			return nil, fmt.Errorf("fuzz: unknown unary op %q", ej.Op)
		}
		x, err := decodeExpr(ej.X)
		if err != nil {
			return nil, err
		}
		return &kir.Un{Op: op, X: x}, nil
	case "sel":
		cond, err := decodeExpr(ej.Cond)
		if err != nil {
			return nil, err
		}
		a, err := decodeExpr(ej.A)
		if err != nil {
			return nil, err
		}
		b, err := decodeExpr(ej.B)
		if err != nil {
			return nil, err
		}
		return &kir.Sel{Cond: cond, A: a, B: b}, nil
	case "cast":
		if !typeOK {
			return nil, fmt.Errorf("fuzz: cast to unknown type %q", ej.Type)
		}
		x, err := decodeExpr(ej.X)
		if err != nil {
			return nil, err
		}
		return &kir.Cast{To: t, X: x}, nil
	case "load":
		if !typeOK {
			return nil, fmt.Errorf("fuzz: load from %s with type %q", ej.Name, ej.Type)
		}
		idx, err := decodeExpr(ej.Index)
		if err != nil {
			return nil, err
		}
		return &kir.Load{Buf: ej.Name, Index: idx, T: t}, nil
	default:
		return nil, fmt.Errorf("fuzz: unknown expression kind %q", ej.Kind)
	}
}
