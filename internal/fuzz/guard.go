package fuzz

// Termination guard for generated kernels. The generator only ever emits
// counted loops with a constant positive step, but that invariant lives in
// one easily-edited function (forStmt); this walker re-checks the whole
// tree so a future feature (data-dependent steps, while-shaped loops)
// cannot silently start emitting kernels that spin forever. Hand-written
// corpus programs are exempt — corpus/hangs/ deliberately stores
// non-terminating kernels to pin the watchdog behaviour.

import (
	"fmt"

	"gpucmp/internal/kir"
)

// CheckBoundedLoops rejects kernels containing a loop that provably never
// terminates: a counted loop whose step is the constant 0. (Loops with a
// nonzero constant step always terminate under the pipelines' wraparound
// semantics; data-dependent steps are not provably bad and are left to the
// watchdog.)
func CheckBoundedLoops(k *kir.Kernel) error {
	return walkStmts(k.Body)
}

func walkStmts(stmts []kir.Stmt) error {
	for _, s := range stmts {
		switch s := s.(type) {
		case *kir.ForStmt:
			if c, ok := s.Step.(*kir.ConstInt); ok && c.V == 0 {
				return fmt.Errorf("fuzz: loop %q has constant step 0 and never terminates", s.Var)
			}
			if err := walkStmts(s.Body); err != nil {
				return err
			}
		case *kir.IfStmt:
			if err := walkStmts(s.Then); err != nil {
				return err
			}
			if err := walkStmts(s.Else); err != nil {
				return err
			}
		}
	}
	return nil
}
