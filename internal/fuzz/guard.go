package fuzz

// Termination guard for generated kernels. The generator only ever emits
// counted loops with a constant positive step, but that invariant lives in
// one easily-edited function (forStmt); this guard re-checks the whole tree
// so a future feature (data-dependent steps, while-shaped loops) cannot
// silently start emitting kernels that spin forever. Hand-written corpus
// programs are exempt — corpus/hangs/ deliberately stores non-terminating
// kernels to pin the watchdog behaviour.
//
// The walker itself was promoted to kir.CheckBoundedLoops (PR 6) so the
// kernel-submission API can run it without importing the fuzzer; this
// wrapper remains the fuzzer-facing name.

import (
	"gpucmp/internal/kir"
)

// CheckBoundedLoops rejects kernels containing a loop that provably never
// terminates. It is kir.CheckBoundedLoops; the returned error wraps
// kir.ErrUnboundedLoop.
func CheckBoundedLoops(k *kir.Kernel) error {
	return kir.CheckBoundedLoops(k)
}
