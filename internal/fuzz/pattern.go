package fuzz

// Differential fuzzing of the pattern DSL (internal/pattern): a seeded
// generator of random combinator programs — map chains, zips, reductions,
// scans, stencils — whose ground truth is the schedule-aware evaluator
// pattern.Eval. Every case is lowered at several schedules from its rule
// space, compiled with both personalities, executed on the modelled
// devices, and diffed bit-for-bit. Where the kernel fuzzer (gen.go) guards
// the KIR->PTX->SIMT stack for hand-written kernels, this one guards the
// extra layer the pattern DSL adds on top: combinator inlining, rewrite
// rules, and launch-geometry derivation.
//
// Generated element functions avoid f32 division: a NaN produced from 0/0
// carries an implementation-defined payload, and the bitwise oracle would
// report payload differences that no real benchmark can observe. All other
// arithmetic (including overflow to infinity) is deterministic and stays
// in the game.

import (
	"errors"
	"fmt"
	"math"

	"gpucmp/internal/arch"
	"gpucmp/internal/compiler"
	"gpucmp/internal/kir"
	"gpucmp/internal/pattern"
	"gpucmp/internal/ptx"
	"gpucmp/internal/sim"
	"gpucmp/internal/workload"
)

// PatternCase is one self-contained pattern fuzz case: a program, the
// shape and inputs it runs with, and the schedules to exercise.
type PatternCase struct {
	Seed  uint64
	Prog  pattern.Program
	Shape pattern.Shape
	// Scheds are the rule-space points this case exercises (always
	// includes the canonical schedule first).
	Scheds []pattern.Schedule
	In     pattern.EvalInputs
}

type prng struct{ r *workload.RNG }

func (p prng) intn(n int) int    { return p.r.Intn(n) }
func (p prng) u32() uint32       { return p.r.Uint32() }
func (p prng) oneIn(n int) bool  { return p.r.Intn(n) == 0 }
func (p prng) f32small() float32 { return p.r.Float32()*4 - 2 } // [-2, 2)
func (p prng) pick(n int) int    { return p.r.Intn(n) }
func (p prng) words(n int) []uint32 {
	out := make([]uint32, n)
	for i := range out {
		out[i] = p.r.Uint32()
	}
	return out
}
func (p prng) f32words(n int) []uint32 {
	out := make([]uint32, n)
	for i := range out {
		out[i] = f32bits(p.f32small())
	}
	return out
}

func f32bits(f float32) uint32 {
	return math.Float32bits(f)
}

// genFnExpr builds a random pure expression over the declared params.
// No division (see package comment), no loads, no builtins.
func genFnExpr(g prng, params []pattern.FnParam, t kir.Type, depth int) kir.Expr {
	leaf := func() kir.Expr {
		// Bias toward params so every input usually matters.
		if !g.oneIn(4) {
			pp := params[g.pick(len(params))]
			return pattern.X(pp.Name, pp.T)
		}
		if t == kir.F32 {
			return kir.F(g.f32small())
		}
		return kir.U(g.u32() % 64)
	}
	if depth <= 0 {
		return leaf()
	}
	a := genFnExpr(g, params, t, depth-1)
	b := genFnExpr(g, params, t, depth-1)
	if t == kir.F32 {
		switch g.pick(5) {
		case 0:
			return kir.Add(a, b)
		case 1:
			return kir.Sub(a, b)
		case 2:
			return kir.Mul(a, b)
		case 3:
			return kir.Min(a, b)
		default:
			return kir.Max(a, b)
		}
	}
	switch g.pick(9) {
	case 0:
		return kir.Add(a, b)
	case 1:
		return kir.Sub(a, b)
	case 2:
		return kir.Mul(a, b)
	case 3:
		return kir.And(a, b)
	case 4:
		return kir.Or(a, b)
	case 5:
		return kir.Xor(a, b)
	case 6:
		return kir.Shl(a, kir.U(uint32(g.pick(8))))
	case 7:
		return kir.Min(a, b)
	default:
		return kir.Select(kir.Lt(a, b), b, a)
	}
}

// genUnaryFn makes a random one-parameter element function.
func genUnaryFn(g prng, t kir.Type, depth int) pattern.Fn {
	params := []pattern.FnParam{{Name: "x", T: t}}
	return pattern.Fn{Params: params, Body: genFnExpr(g, params, t, depth)}
}

// genBinaryFn makes a random two-parameter function (zip body or combine).
func genBinaryFn(g prng, t kir.Type, depth int) pattern.Fn {
	params := []pattern.FnParam{{Name: "a", T: t}, {Name: "b", T: t}}
	return pattern.Fn{Params: params, Body: genFnExpr(g, params, t, depth)}
}

// genMapTree builds a random combinator graph over the declared inputs.
func genMapTree(g prng, t kir.Type, inputs []string, depth int) *pattern.Node {
	if depth <= 0 || (len(inputs) == 1 && g.oneIn(3)) {
		return pattern.In(inputs[g.pick(len(inputs))], t)
	}
	if len(inputs) > 1 && g.oneIn(2) {
		return pattern.Zip(genBinaryFn(g, t, 2),
			genMapTree(g, t, inputs, depth-1),
			genMapTree(g, t, inputs, depth-1))
	}
	return pattern.Map(genUnaryFn(g, t, 2), genMapTree(g, t, inputs, depth-1))
}

// GenPatternCase builds the deterministic random pattern case for a seed.
func GenPatternCase(seed uint64) *PatternCase {
	g := prng{r: workload.NewRNG(seed*0x9e3779b97f4a7c15 + 0xd1b54a32d192ed03)}
	t := kir.U32
	if g.oneIn(2) {
		t = kir.F32
	}
	data := func(n int) []uint32 {
		if t == kir.F32 {
			return g.f32words(n)
		}
		return g.words(n)
	}

	c := &PatternCase{Seed: seed, In: pattern.EvalInputs{Bufs: map[string][]uint32{}}}
	name := fmt.Sprintf("pf%d", seed)
	switch g.pick(5) {
	case 0: // map chain / zip tree over 1-2 inputs
		n := 65 + g.intn(448) // deliberately off any block multiple
		inputs := []string{"a"}
		if g.oneIn(2) {
			inputs = append(inputs, "b")
		}
		root := genMapTree(g, t, inputs, 1+g.intn(3))
		if root.Input != "" {
			// A bare input is not a valid map program; force one apply.
			root = pattern.Map(genUnaryFn(g, t, 2), root)
		}
		c.Prog = &pattern.MapProg{Name: name, Root: root}
		c.Shape = pattern.Shape{N: n}
		for _, in := range inputs {
			c.In.Bufs[in] = data(n)
		}
	case 1: // reduce over a mapped root
		n := 65 + g.intn(448)
		root := genMapTree(g, t, []string{"a"}, 1+g.intn(2))
		c.Prog = &pattern.ReduceProg{Name: name, Root: root,
			Combine: genBinaryFn(g, t, 2), Identity: identityWord(g, t)}
		c.Shape = pattern.Shape{N: n}
		c.In.Bufs["a"] = data(n)
	case 2: // scan
		n := 256 * (1 + g.intn(2))
		c.Prog = &pattern.ScanProg{Name: name, Input: "a", Elem: t,
			Combine: genBinaryFn(g, t, 2), Identity: identityWord(g, t)}
		c.Shape = pattern.Shape{N: n}
		c.In.Bufs["a"] = data(n)
	case 3: // stencil, with or without a coefficient table
		w, h := 10+g.intn(24), 8+g.intn(16)
		r := 1 + g.intn(2)
		taps := []pattern.Tap{{DY: 0, DX: 0}}
		for len(taps) < 3+g.intn(3) {
			taps = append(taps, pattern.Tap{
				DY: g.intn(2*r+1) - r, DX: g.intn(2*r+1) - r})
		}
		var coeffs []float32
		nParams := len(taps)
		params := make([]pattern.FnParam, 0, 2*len(taps))
		for i := range taps {
			params = append(params, pattern.FnParam{Name: fmt.Sprintf("t%d", i), T: kir.F32})
		}
		if g.oneIn(2) {
			coeffs = make([]float32, len(taps))
			for i := range coeffs {
				coeffs[i] = g.f32small()
				params = append(params, pattern.FnParam{Name: fmt.Sprintf("c%d", i), T: kir.F32})
			}
			nParams = 2 * len(taps)
		}
		fn := pattern.Fn{Params: params[:nParams], Body: genFnExpr(g, params[:nParams], kir.F32, 3)}
		c.Prog = &pattern.Stencil2DProg{Name: name, Input: "img", Taps: taps, Coeffs: coeffs, Fn: fn}
		c.Shape = pattern.Shape{W: w, H: h}
		c.In.Bufs["img"] = g.f32words(w * h)
		c.In.OutInit = g.f32words(w * h) // border words must be defined
	default: // matmul (fixed structure; exercises tile/unroll schedules)
		n := 16 * (1 + g.intn(2))
		c.Prog = &pattern.MatMulProg{Name: name}
		c.Shape = pattern.Shape{N: n}
		c.In.Bufs["A"] = g.f32words(n * n)
		c.In.Bufs["B"] = g.f32words(n * n)
	}

	// Canonical plus up to two random non-canonical schedules.
	space := pattern.Space(c.Prog)
	c.Scheds = []pattern.Schedule{space[0]}
	for len(c.Scheds) < 3 && len(c.Scheds) < len(space) {
		s := space[1+g.pick(len(space)-1)]
		dup := false
		for _, have := range c.Scheds {
			if have == s {
				dup = true
				break
			}
		}
		if !dup {
			c.Scheds = append(c.Scheds, s)
		}
	}
	return c
}

func identityWord(g prng, t kir.Type) uint32 {
	if t == kir.F32 {
		return f32bits(g.f32small())
	}
	return g.u32() % 64
}

// ExecuteLowered compiles every kernel of a lowered pattern program with
// one personality and runs the launch sequence on one simulated device,
// returning the raw output words. Constant-space coefficient buffers are
// staged through the constant segment, like the runtime adapters do.
func ExecuteLowered(l *pattern.Lowered, in pattern.EvalInputs, pers compiler.Personality, a *arch.Device) ([]uint32, error) {
	kernels := map[string]*ptx.Kernel{}
	for _, k := range l.Kernels {
		pk, err := compiler.Compile(k, pers)
		if err != nil {
			return nil, fmt.Errorf("fuzz: compile %s (%s): %w", k.Name, pers.Name, err)
		}
		kernels[k.Name] = pk
	}
	dev, err := sim.NewDevice(a)
	if err != nil {
		return nil, err
	}
	dev.StepBudget = simStepBudget

	words := func(bs *pattern.BufSpec) ([]uint32, error) {
		out := make([]uint32, bs.Words)
		switch bs.Role {
		case pattern.RoleInput:
			src := in.Bufs[bs.Name]
			if len(src) < bs.Words {
				return nil, fmt.Errorf("fuzz: input %q has %d words, need %d", bs.Name, len(src), bs.Words)
			}
			copy(out, src)
		case pattern.RoleCoeff:
			copy(out, bs.Init)
		case pattern.RoleOutput:
			if in.OutInit != nil {
				if len(in.OutInit) != bs.Words {
					return nil, fmt.Errorf("fuzz: out init has %d words, need %d", len(in.OutInit), bs.Words)
				}
				copy(out, in.OutInit)
			}
		}
		return out, nil
	}

	addr := map[string]uint32{}
	var outAddr uint32
	for i := range l.Bufs {
		bs := &l.Bufs[i]
		data, err := words(bs)
		if err != nil {
			return nil, err
		}
		if bs.Space == kir.Const {
			off, err := dev.ConstAlloc(uint32(4 * len(data)))
			if err != nil {
				return nil, err
			}
			if err := dev.ConstWrite(off, data); err != nil {
				return nil, err
			}
			addr[bs.Name] = off
			continue
		}
		p, err := dev.Global.Alloc(uint32(4 * len(data)))
		if err != nil {
			return nil, err
		}
		if err := dev.Global.WriteWords(p, data); err != nil {
			return nil, err
		}
		addr[bs.Name] = p
		if bs.Name == l.Out {
			outAddr = p
		}
	}

	for _, ln := range l.Launches {
		pk, ok := kernels[ln.Kernel]
		if !ok {
			return nil, fmt.Errorf("fuzz: launch references unknown kernel %q", ln.Kernel)
		}
		args := make([]uint32, len(ln.Args))
		for i, a := range ln.Args {
			if a.IsVal {
				args[i] = a.Val
			} else {
				args[i] = addr[a.Buf]
			}
		}
		if _, err := dev.Launch(pk,
			sim.Dim3{X: ln.GridX, Y: ln.GridY},
			sim.Dim3{X: ln.BlockX, Y: ln.BlockY}, args); err != nil {
			return nil, err
		}
	}
	out := make([]uint32, l.Buf(l.Out).Words)
	if err := dev.Global.ReadWords(outAddr, out); err != nil {
		return nil, err
	}
	return out, nil
}

// PatternResult summarises one case's trip through the pattern oracle.
type PatternResult struct {
	Seed       uint64
	Executions int
	Skipped    []string
	// Failure is the first disagreement found, nil when all executions
	// matched the evaluator.
	Failure error
}

// CheckPattern runs the full pattern oracle for one case: for every
// schedule, the evaluator's output is ground truth; the host reference
// executor (RunLowered) and both personalities on every device must all
// reproduce it bit for bit.
func CheckPattern(c *PatternCase, devices []*arch.Device) (*PatternResult, error) {
	if err := c.Prog.Validate(); err != nil {
		return nil, fmt.Errorf("fuzz: seed %d: invalid program: %w", c.Seed, err)
	}
	if len(devices) == 0 {
		devices = arch.All()
	}
	res := &PatternResult{Seed: c.Seed}
	for _, s := range c.Scheds {
		want, err := pattern.Eval(c.Prog, s, c.Shape, c.In)
		if err != nil {
			return nil, fmt.Errorf("fuzz: seed %d: eval %s: %w", c.Seed, s.Mangle(), err)
		}
		l, err := pattern.Lower(c.Prog, s, c.Shape)
		if err != nil {
			return nil, fmt.Errorf("fuzz: seed %d: lower %s: %w", c.Seed, s.Mangle(), err)
		}
		host, err := pattern.RunLowered(l, c.In)
		if err != nil {
			return nil, fmt.Errorf("fuzz: seed %d: host run %s: %w", c.Seed, s.Mangle(), err)
		}
		if i, ok := firstDiff(host, want); !ok {
			res.Failure = fmt.Errorf("fuzz: seed %d: %s: host executor out[%d] = %#x, evaluator %#x",
				c.Seed, s.Mangle(), i, host[i], want[i])
			return res, nil
		}
		for _, pers := range Toolchains() {
			for _, a := range devices {
				got, err := ExecuteLowered(l, c.In, pers, a)
				if err != nil {
					if errors.Is(err, sim.ErrOutOfResources) {
						res.Skipped = append(res.Skipped,
							fmt.Sprintf("%s/%s/%s: %v", pers.Name, a.Name, s.Mangle(), err))
						continue
					}
					return nil, fmt.Errorf("fuzz: seed %d: %s on %s (%s): %w",
						c.Seed, pers.Name, a.Name, s.Mangle(), err)
				}
				res.Executions++
				if i, ok := firstDiff(got, want); !ok {
					res.Failure = fmt.Errorf(
						"fuzz: seed %d: %s on %s (%s): out[%d] = %#x, evaluator %#x\nprogram kernels:\n%s",
						c.Seed, pers.Name, a.Name, s.Mangle(), i, got[i], want[i], formatKernels(l))
					return res, nil
				}
			}
		}
	}
	return res, nil
}

func firstDiff(got, want []uint32) (int, bool) {
	if len(got) != len(want) {
		return 0, false
	}
	for i := range want {
		if got[i] != want[i] {
			return i, false
		}
	}
	return -1, true
}

func formatKernels(l *pattern.Lowered) string {
	s := ""
	for _, k := range l.Kernels {
		s += kir.Format(k) + "\n"
	}
	return s
}

// LaunchProgram wraps one 1-D launch of a lowered pattern program as a
// self-contained fuzz.Program, with the buffer state just before that
// launch reconstructed on the host interpreter — so a diverging pattern
// kernel drops straight into the existing Shrink/bisect machinery.
func LaunchProgram(l *pattern.Lowered, launch int, in pattern.EvalInputs, seed uint64) (*Program, error) {
	if launch < 0 || launch >= len(l.Launches) {
		return nil, fmt.Errorf("fuzz: launch %d out of range (%d launches)", launch, len(l.Launches))
	}
	ln := l.Launches[launch]
	if ln.GridY != 1 || ln.BlockY != 1 {
		return nil, fmt.Errorf("fuzz: launch %d (%s) is 2-D; the shrink harness is 1-D only", launch, ln.Kernel)
	}
	var kern *kir.Kernel
	for _, k := range l.Kernels {
		if k.Name == ln.Kernel {
			kern = k
			break
		}
	}
	if kern == nil {
		return nil, fmt.Errorf("fuzz: launch references unknown kernel %q", ln.Kernel)
	}

	// Replay launches 0..launch-1 on the host interpreter to reconstruct
	// the pre-state of every buffer.
	storage := map[string][]uint32{}
	for _, bs := range l.Bufs {
		w := make([]uint32, bs.Words)
		switch bs.Role {
		case pattern.RoleInput:
			copy(w, in.Bufs[bs.Name])
		case pattern.RoleCoeff:
			copy(w, bs.Init)
		case pattern.RoleOutput:
			if in.OutInit != nil {
				copy(w, in.OutInit)
			}
		}
		storage[bs.Name] = w
	}
	for i := 0; i < launch; i++ {
		prev := l.Launches[i]
		var pk *kir.Kernel
		for _, k := range l.Kernels {
			if k.Name == prev.Kernel {
				pk = k
				break
			}
		}
		if pk == nil {
			return nil, fmt.Errorf("fuzz: launch references unknown kernel %q", prev.Kernel)
		}
		bufs, scalars, err := launchEnv(pk, prev, storage)
		if err != nil {
			return nil, err
		}
		if err := kir.Run(pk, kir.RunConfig{
			GridX: prev.GridX, GridY: prev.GridY,
			BlockX: prev.BlockX, BlockY: prev.BlockY,
			Buffers: bufs, Scalars: scalars,
			StepBudget: refStepBudget,
		}); err != nil {
			return nil, fmt.Errorf("fuzz: replaying launch %d (%s): %w", i, prev.Kernel, err)
		}
	}

	bufs, scalars, err := launchEnv(kern, ln, storage)
	if err != nil {
		return nil, err
	}
	// The program's output is the lowered program's output when this
	// kernel takes it, else the kernel's last buffer parameter.
	out := ""
	for _, prm := range kern.Params {
		if prm.Buffer {
			out = prm.Name
			if prm.Name == l.Out {
				break
			}
		}
	}
	if out == "" {
		return nil, fmt.Errorf("fuzz: kernel %q has no buffer parameters", ln.Kernel)
	}
	return &Program{
		Seed:    seed,
		Kernel:  kern,
		Grid:    ln.GridX,
		Block:   ln.BlockX,
		Buffers: bufs,
		Scalars: scalars,
		Out:     out,
	}, nil
}

// launchEnv maps a launch's positional args onto the kernel's parameters.
func launchEnv(k *kir.Kernel, ln pattern.Launch, storage map[string][]uint32) (map[string][]uint32, map[string]uint32, error) {
	if len(ln.Args) != len(k.Params) {
		return nil, nil, fmt.Errorf("fuzz: launch %s has %d args for %d params", ln.Kernel, len(ln.Args), len(k.Params))
	}
	bufs := map[string][]uint32{}
	scalars := map[string]uint32{}
	for i, prm := range k.Params {
		a := ln.Args[i]
		if prm.Buffer {
			if a.IsVal {
				return nil, nil, fmt.Errorf("fuzz: launch %s arg %d: scalar for buffer param %s", ln.Kernel, i, prm.Name)
			}
			w, ok := storage[a.Buf]
			if !ok {
				return nil, nil, fmt.Errorf("fuzz: launch %s arg %d: unknown buffer %q", ln.Kernel, i, a.Buf)
			}
			bufs[prm.Name] = w
		} else {
			if !a.IsVal {
				return nil, nil, fmt.Errorf("fuzz: launch %s arg %d: buffer for scalar param %s", ln.Kernel, i, prm.Name)
			}
			scalars[prm.Name] = a.Val
		}
	}
	return bufs, scalars, nil
}
