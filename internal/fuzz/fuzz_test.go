package fuzz

import (
	"bytes"
	"runtime"
	"sync"
	"testing"

	"gpucmp/internal/kir"
)

// TestFreshSeedsAllDevices is the main acceptance sweep: 200 freshly
// generated kernels, each run through the reference interpreter and both
// personalities on every modelled device, all outputs bit-identical.
// Seeds are distributed over a worker pool so the sweep stays well inside
// the CI time budget.
func TestFreshSeedsAllDevices(t *testing.T) {
	seeds := 200
	if testing.Short() {
		seeds = 25
	}
	cfg := DefaultConfig()

	var (
		mu   sync.Mutex
		camp = &Campaign{}
	)
	jobs := make(chan uint64)
	var wg sync.WaitGroup
	for w := 0; w < runtime.NumCPU(); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for seed := range jobs {
				p := Generate(seed, cfg)
				res, err := Check(p, nil)
				mu.Lock()
				if err != nil {
					t.Errorf("seed %d: %v", seed, err)
				} else {
					camp.Add(res)
					if res.Divergence != nil {
						t.Errorf("%s", res.Divergence.Error())
					}
				}
				mu.Unlock()
			}
		}()
	}
	for seed := uint64(1); seed <= uint64(seeds); seed++ {
		jobs <- seed
	}
	close(jobs)
	wg.Wait()

	if camp.Programs != seeds {
		t.Fatalf("ran %d programs, want %d", camp.Programs, seeds)
	}
	t.Logf("campaign:\n%s", camp.Summary())
}

// TestGenerateDeterministic: the same (seed, config) pair must yield a
// byte-identical program, or corpus seeds and CI campaigns would not
// replay.
func TestGenerateDeterministic(t *testing.T) {
	cfg := DefaultConfig()
	for seed := uint64(1); seed <= 20; seed++ {
		a, err := Encode(Generate(seed, cfg))
		if err != nil {
			t.Fatal(err)
		}
		b, err := Encode(Generate(seed, cfg))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Fatalf("seed %d: two generations differ", seed)
		}
	}
}

// TestGeneratorValidity checks the static guarantees over many seeds and
// feature subsets: every generated kernel type-checks and keeps its
// barriers in uniform control flow. Generation itself panics on
// violation, so the body only needs to drive the configurations.
func TestGeneratorValidity(t *testing.T) {
	cfgs := []GenConfig{DefaultConfig()}
	minimal := DefaultConfig()
	minimal.Features = Features{}
	cfgs = append(cfgs, minimal)
	noShared := DefaultConfig()
	noShared.Features.Shared = false
	noShared.Features.Reduction = false
	cfgs = append(cfgs, noShared)
	deep := DefaultConfig()
	deep.MaxDepth = 5
	deep.MaxStmts = 8
	deep.MaxPhases = 5
	cfgs = append(cfgs, deep)

	for ci, cfg := range cfgs {
		for seed := uint64(1); seed <= 150; seed++ {
			p := Generate(seed, cfg)
			if err := kir.Check(p.Kernel); err != nil {
				t.Fatalf("config %d seed %d: %v", ci, seed, err)
			}
			if err := kir.CheckUniformBarriers(p.Kernel); err != nil {
				t.Fatalf("config %d seed %d: %v", ci, seed, err)
			}
			if len(p.Buffers[p.Out]) != p.Grid*p.Block {
				t.Fatalf("config %d seed %d: out buffer %d words for %d threads",
					ci, seed, len(p.Buffers[p.Out]), p.Grid*p.Block)
			}
		}
	}
}

// TestEncodeRoundTrip: Encode -> Decode -> Encode must be stable, and the
// decoded program must behave identically on the reference interpreter.
func TestEncodeRoundTrip(t *testing.T) {
	cfg := DefaultConfig()
	for seed := uint64(1); seed <= 25; seed++ {
		p := Generate(seed, cfg)
		data, err := Encode(p)
		if err != nil {
			t.Fatalf("seed %d: encode: %v", seed, err)
		}
		q, err := Decode(data)
		if err != nil {
			t.Fatalf("seed %d: decode: %v", seed, err)
		}
		data2, err := Encode(q)
		if err != nil {
			t.Fatalf("seed %d: re-encode: %v", seed, err)
		}
		if !bytes.Equal(data, data2) {
			t.Fatalf("seed %d: encode/decode/encode not stable", seed)
		}
		want, err := Reference(p)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Reference(q)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("seed %d: decoded program diverges from original at out[%d]", seed, i)
			}
		}
	}
}

// TestShrink exercises the minimiser against a synthetic predicate (the
// reference output contains an odd word). The result must be valid, still
// satisfy the predicate, and be no larger than the input.
func TestShrink(t *testing.T) {
	hasOdd := func(p *Program) bool {
		out, err := Reference(p)
		if err != nil {
			return false
		}
		for _, w := range out {
			if w&1 == 1 {
				return true
			}
		}
		return false
	}
	cfg := DefaultConfig()
	shrunk := 0
	for seed := uint64(1); seed <= 8; seed++ {
		p := Generate(seed, cfg)
		if !hasOdd(p) {
			continue
		}
		before := kir.CountNodes(p.Kernel.Body)
		small := Shrink(p, hasOdd)
		after := kir.CountNodes(small.Kernel.Body)
		if !hasOdd(small) {
			t.Fatalf("seed %d: shrink lost the predicate", seed)
		}
		if err := kir.Check(small.Kernel); err != nil {
			t.Fatalf("seed %d: shrunk kernel invalid: %v", seed, err)
		}
		if err := kir.CheckUniformBarriers(small.Kernel); err != nil {
			t.Fatalf("seed %d: shrunk kernel barrier-divergent: %v", seed, err)
		}
		if after > before {
			t.Fatalf("seed %d: shrink grew the kernel: %d -> %d nodes", seed, before, after)
		}
		if after < before {
			shrunk++
		}
	}
	if shrunk == 0 {
		t.Fatal("shrinker never removed a single node across all seeds")
	}
}

// TestShrinkPreservesOracleAgreement: a shrunk healthy program must still
// pass the oracle — minimisation edits may not themselves introduce
// divergence (e.g. by breaking the race-freedom discipline).
func TestShrinkPreservesOracleAgreement(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	hasOdd := func(p *Program) bool {
		out, err := Reference(p)
		if err != nil {
			return false
		}
		for _, w := range out {
			if w&1 == 1 {
				return true
			}
		}
		return false
	}
	p := Generate(3, DefaultConfig())
	if !hasOdd(p) {
		t.Skip("seed has no odd output word")
	}
	small := Shrink(p, hasOdd)
	res, err := Check(small, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Divergence != nil {
		t.Fatalf("shrinking introduced a divergence:\n%s", res.Divergence.Error())
	}
}
