package fuzz

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"gpucmp/internal/arch"
	"gpucmp/internal/compiler"
	"gpucmp/internal/kir"
	"gpucmp/internal/ptx"
	"gpucmp/internal/sim"
)

// Program is one self-contained fuzz case: a kernel plus the launch shape
// and input data it runs with. The same Program always produces the same
// outputs on every correct execution path.
type Program struct {
	Seed   uint64
	Kernel *kir.Kernel
	Grid   int // 1-D grid, in work groups
	Block  int // 1-D work-group size
	// Buffers holds the initial contents of every buffer parameter,
	// keyed by parameter name. The entry named Out is the output.
	Buffers map[string][]uint32
	Scalars map[string]uint32
	Out     string
}

func (p *Program) clone(name string) []uint32 {
	src := p.Buffers[name]
	dst := make([]uint32, len(src))
	copy(dst, src)
	return dst
}

// Oracle step budgets. Every legitimate fuzz program finishes in at most a
// few thousand steps per thread; these budgets leave three orders of
// magnitude of headroom while still killing a non-terminating kernel (a
// generator or corpus bug) in well under a second instead of wedging the
// campaign. A kill surfaces as a typed kir.ErrWatchdog / sim.ErrWatchdog
// in the returned error chain.
const (
	refStepBudget = 1 << 22 // interpreter statements per thread
	simStepBudget = 1 << 22 // simulator warp instructions per work-group
)

// Reference executes the program on the kir.Run host interpreter and
// returns the output buffer. This is the semantic ground truth the
// compiled pipelines are judged against.
func Reference(p *Program) ([]uint32, error) {
	bufs := map[string][]uint32{}
	for name := range p.Buffers {
		bufs[name] = p.clone(name)
	}
	err := kir.Run(p.Kernel, kir.RunConfig{
		GridX: p.Grid, GridY: 1,
		BlockX: p.Block, BlockY: 1,
		Buffers:    bufs,
		Scalars:    p.Scalars,
		StepBudget: refStepBudget,
	})
	if err != nil {
		return nil, fmt.Errorf("fuzz: seed %d: reference: %w", p.Seed, err)
	}
	return bufs[p.Out], nil
}

// RunCompiled compiles the program with one personality and executes it on
// one device, returning the output buffer and the launch trace. Buffer
// arguments are staged following the runtime convention: global and
// texture buffers live in simulated global memory and pass their address;
// constant buffers are staged into the constant segment and pass their
// offset (the cudaMemcpyToSymbol path).
func RunCompiled(p *Program, pers compiler.Personality, a *arch.Device) ([]uint32, *sim.Trace, error) {
	pk, err := compiler.Compile(p.Kernel, pers)
	if err != nil {
		return nil, nil, fmt.Errorf("fuzz: seed %d: compile %s: %w", p.Seed, pers.Name, err)
	}
	return Execute(p, pk, a)
}

// Execute runs an already-compiled kernel for the program on one device.
func Execute(p *Program, pk *ptx.Kernel, a *arch.Device) ([]uint32, *sim.Trace, error) {
	dev, err := sim.NewDevice(a)
	if err != nil {
		return nil, nil, err
	}
	dev.StepBudget = simStepBudget
	var args []uint32
	var outAddr uint32
	for _, prm := range p.Kernel.Params {
		if !prm.Buffer {
			args = append(args, p.Scalars[prm.Name])
			continue
		}
		data := p.Buffers[prm.Name]
		if prm.Space == kir.Const {
			off, err := dev.ConstAlloc(uint32(4 * len(data)))
			if err != nil {
				return nil, nil, err
			}
			if err := dev.ConstWrite(off, data); err != nil {
				return nil, nil, err
			}
			args = append(args, off)
			continue
		}
		addr, err := dev.Global.Alloc(uint32(4 * len(data)))
		if err != nil {
			return nil, nil, err
		}
		if err := dev.Global.WriteWords(addr, data); err != nil {
			return nil, nil, err
		}
		if prm.Name == p.Out {
			outAddr = addr
		}
		args = append(args, addr)
	}
	tr, err := dev.Launch(pk,
		sim.Dim3{X: p.Grid, Y: 1}, sim.Dim3{X: p.Block, Y: 1}, args)
	if err != nil {
		return nil, nil, err
	}
	out := make([]uint32, len(p.Buffers[p.Out]))
	if err := dev.Global.ReadWords(outAddr, out); err != nil {
		return nil, nil, err
	}
	return out, tr, nil
}

// Divergence describes one disagreement between the reference interpreter
// and a compiled execution, with enough attached context to debug it:
// which words differ, the dynamic trace, the disassembly and the kernel
// source.
type Divergence struct {
	Seed      uint64
	Toolchain string
	Device    string
	Index     int    // first differing output word
	Got, Want uint32 // values at Index
	NumDiff   int    // total differing words
	Trace     *sim.Trace
	Disasm    string
	Source    string
}

// Error renders the full divergence report.
func (d *Divergence) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "fuzz: seed %d: %s on %s: out[%d] = %#x, reference %#x (%d word(s) differ)\n",
		d.Seed, d.Toolchain, d.Device, d.Index, d.Got, d.Want, d.NumDiff)
	if d.Trace != nil {
		fmt.Fprintf(&b, "trace: %s\n", d.Trace.Summary())
	}
	fmt.Fprintf(&b, "kernel:\n%s", d.Source)
	if d.Disasm != "" {
		fmt.Fprintf(&b, "disassembly:\n%s", d.Disasm)
	}
	return b.String()
}

// Result summarises one program's trip through the oracle.
type Result struct {
	Seed       uint64
	Divergence *Divergence // nil when every execution agreed
	Executions int         // personality x device runs that completed
	Skipped    []string    // "toolchain/device: reason" resource aborts
	WarpInstrs int64       // total across executions, for campaign stats
	LaneInstrs int64
}

// Toolchains returns the two modelled personalities in a stable order.
func Toolchains() []compiler.Personality {
	return []compiler.Personality{compiler.CUDA(), compiler.OpenCL()}
}

// Check runs the full three-way oracle for one program: the reference
// interpreter once, then each personality's compilation on each device,
// diffing every output bit-for-bit against the reference. The first
// divergence is reported with its trace, source and disassembly. Devices
// that cannot launch the kernel for resource reasons (the paper's ABT
// rows) are recorded as skipped, not failed; any other error is returned.
func Check(p *Program, devices []*arch.Device) (*Result, error) {
	if len(devices) == 0 {
		devices = arch.All()
	}
	want, err := Reference(p)
	if err != nil {
		return nil, err
	}
	res := &Result{Seed: p.Seed}
	for _, pers := range Toolchains() {
		pk, err := compiler.Compile(p.Kernel, pers)
		if err != nil {
			return nil, fmt.Errorf("fuzz: seed %d: compile %s: %w", p.Seed, pers.Name, err)
		}
		for _, a := range devices {
			got, tr, err := Execute(p, pk, a)
			if err != nil {
				if errors.Is(err, sim.ErrOutOfResources) {
					res.Skipped = append(res.Skipped,
						fmt.Sprintf("%s/%s: %v", pers.Name, a.Name, err))
					continue
				}
				return nil, fmt.Errorf("fuzz: seed %d: %s on %s: %w\n%s",
					p.Seed, pers.Name, a.Name, err, pk.Disassemble())
			}
			res.Executions++
			res.WarpInstrs += tr.Dyn.Total
			res.LaneInstrs += tr.LaneInstrs
			if d := diff(p, pers.Name, a.Name, got, want, tr, pk); d != nil {
				res.Divergence = d
				return res, nil
			}
		}
	}
	return res, nil
}

func diff(p *Program, toolchain, device string, got, want []uint32, tr *sim.Trace, pk *ptx.Kernel) *Divergence {
	first, n := -1, 0
	for i := range want {
		if got[i] != want[i] {
			if first < 0 {
				first = i
			}
			n++
		}
	}
	if first < 0 {
		return nil
	}
	return &Divergence{
		Seed:      p.Seed,
		Toolchain: toolchain,
		Device:    device,
		Index:     first,
		Got:       got[first],
		Want:      want[first],
		NumDiff:   n,
		Trace:     tr,
		Disasm:    pk.Disassemble(),
		Source:    kir.Format(p.Kernel),
	}
}

// Campaign runs seeds [start, start+n) through the oracle and aggregates.
type Campaign struct {
	Programs    int
	Executions  int
	Divergences []*Divergence
	Skipped     int
	WarpInstrs  int64
	LaneInstrs  int64
	SkipReasons map[string]int
}

// Summary renders the campaign as a short human-readable block.
func (c *Campaign) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d programs, %d executions, %d divergence(s), %d skipped launch(es)\n",
		c.Programs, c.Executions, len(c.Divergences), c.Skipped)
	fmt.Fprintf(&b, "%d warp-instructions, %d lane-instructions simulated\n",
		c.WarpInstrs, c.LaneInstrs)
	if len(c.SkipReasons) > 0 {
		keys := make([]string, 0, len(c.SkipReasons))
		for k := range c.SkipReasons {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(&b, "skipped %dx: %s\n", c.SkipReasons[k], k)
		}
	}
	return b.String()
}

// Add folds one oracle result into the campaign tallies.
func (c *Campaign) Add(r *Result) {
	c.Programs++
	c.Executions += r.Executions
	c.Skipped += len(r.Skipped)
	c.WarpInstrs += r.WarpInstrs
	c.LaneInstrs += r.LaneInstrs
	for _, s := range r.Skipped {
		if c.SkipReasons == nil {
			c.SkipReasons = map[string]int{}
		}
		c.SkipReasons[s]++
	}
	if r.Divergence != nil {
		c.Divergences = append(c.Divergences, r.Divergence)
	}
}
