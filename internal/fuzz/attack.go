package fuzz

// Adversarial HTTP campaign against a running gpucmpd's POST /kernels
// endpoint (cmd/kfuzz -attack). The attacker generates valid programs
// with the fuzzer, then mutates a fraction of them into hostile
// submissions — oversized shapes, unbounded loops, divergent barriers,
// malformed encodings, truncated bodies, unknown devices, watchdog bait —
// and asserts one property about every response: it is *classified*. The
// server must answer each request with a JSON body whose
// "classification" field is one of ok / gauntlet-reject / watchdog /
// quota and a non-5xx status. A 5xx, a missing classification, or a
// transport-level connection death counts as unclassified — a campaign
// failure.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"
)

// AttackOptions configures a campaign.
type AttackOptions struct {
	// Tenants are rotated across requests (default: one tenant,
	// "attacker"). Listing several exercises per-tenant quota and cache
	// isolation under concurrency.
	Tenants []string
	// Concurrency is the number of parallel submitters (default 8).
	Concurrency int
	// Client is the HTTP client (default: 30s timeout).
	Client *http.Client
	// Verbose, when non-nil, receives a line per request.
	Verbose io.Writer
}

// AttackReport aggregates a campaign.
type AttackReport struct {
	Requests  int
	ByClass   map[string]int // classification → count
	ByCode    map[string]int // machine code → count (rejections only)
	ByMutator map[string]int // mutator → count
	CacheHits int
	// Unclassified describes every response that violated the campaign
	// property. A passing campaign has none.
	Unclassified []string
}

// Failed reports whether the campaign property was violated.
func (r *AttackReport) Failed() bool { return len(r.Unclassified) > 0 }

// Summary renders the campaign outcome.
func (r *AttackReport) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "attack: %d requests, %d cache hits\n", r.Requests, r.CacheHits)
	for _, m := range sortedKeys(r.ByClass) {
		fmt.Fprintf(&b, "  class %-16s %d\n", m, r.ByClass[m])
	}
	for _, m := range sortedKeys(r.ByCode) {
		fmt.Fprintf(&b, "  code  %-16s %d\n", m, r.ByCode[m])
	}
	for _, m := range sortedKeys(r.ByMutator) {
		fmt.Fprintf(&b, "  sent  %-16s %d\n", m, r.ByMutator[m])
	}
	if r.Failed() {
		fmt.Fprintf(&b, "UNCLASSIFIED RESPONSES (%d):\n", len(r.Unclassified))
		for _, u := range r.Unclassified {
			fmt.Fprintf(&b, "  %s\n", u)
		}
	} else {
		fmt.Fprintf(&b, "every response classified; no crashes\n")
	}
	return b.String()
}

func sortedKeys(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// mutator turns a valid generated program into one request body. Several
// are hostile; "valid" and "watchdog-bait" are well-formed.
type mutator struct {
	name  string
	build func(p *Program, rng *rand.Rand) []byte
}

// mutators is the campaign's attack surface, applied round-robin.
var mutators = []mutator{
	{"valid", func(p *Program, rng *rand.Rand) []byte {
		return mustEncode(p)
	}},
	{"oversized-grid", func(p *Program, rng *rand.Rand) []byte {
		return patch(p, func(m map[string]any) { m["grid"] = 1 << 20 })
	}},
	{"negative-dims", func(p *Program, rng *rand.Rand) []byte {
		return patch(p, func(m map[string]any) { m["grid"] = -1; m["block"] = -64 })
	}},
	{"zero-block", func(p *Program, rng *rand.Rand) []byte {
		return patch(p, func(m map[string]any) { m["block"] = 0 })
	}},
	{"zero-step-loop", func(p *Program, rng *rand.Rand) []byte {
		return patch(p, func(m map[string]any) {
			kernelBody(m, func(body []any) []any {
				return append(body, map[string]any{
					"kind": "for", "name": "zz",
					"init":  map[string]any{"kind": "int", "type": "u32"},
					"limit": map[string]any{"kind": "int", "type": "u32", "int": 10},
					"step":  map[string]any{"kind": "int", "type": "u32"},
					"body":  []any{},
				})
			})
		})
	}},
	{"divergent-barrier", func(p *Program, rng *rand.Rand) []byte {
		return patch(p, func(m map[string]any) {
			kernelBody(m, func(body []any) []any {
				return append(body, map[string]any{
					"kind": "if",
					"cond": map[string]any{
						"kind": "bin", "op": "<",
						"l": map[string]any{"kind": "builtin", "name": "threadIdx.x"},
						"r": map[string]any{"kind": "int", "type": "u32", "int": 3},
					},
					"then": []any{map[string]any{"kind": "barrier"}},
				})
			})
		})
	}},
	{"unknown-stmt-kind", func(p *Program, rng *rand.Rand) []byte {
		return patch(p, func(m map[string]any) {
			kernelBody(m, func(body []any) []any {
				return append(body, map[string]any{"kind": "goto", "name": "loop"})
			})
		})
	}},
	{"unknown-op", func(p *Program, rng *rand.Rand) []byte {
		return bytes.Replace(mustEncode(p), []byte(`"op": "+"`), []byte(`"op": "**"`), 1)
	}},
	{"truncated-json", func(p *Program, rng *rand.Rand) []byte {
		b := mustEncode(p)
		return b[:len(b)/2]
	}},
	{"empty-object", func(p *Program, rng *rand.Rand) []byte {
		return []byte("{}")
	}},
	{"not-json", func(p *Program, rng *rand.Rand) []byte {
		return []byte("<submit><kernel/></submit>")
	}},
	{"unknown-device", func(p *Program, rng *rand.Rand) []byte {
		return patch(p, func(m map[string]any) { m["devices"] = []any{"GeForce 9999"} })
	}},
	{"missing-out", func(p *Program, rng *rand.Rand) []byte {
		return patch(p, func(m map[string]any) { m["out"] = "nosuch" })
	}},
	{"missing-buffer-data", func(p *Program, rng *rand.Rand) []byte {
		return patch(p, func(m map[string]any) {
			m["buffers"] = map[string]any{}
		})
	}},
	{"oversized-buffer", func(p *Program, rng *rand.Rand) []byte {
		return patch(p, func(m map[string]any) {
			big := make([]any, 1<<15)
			for i := range big {
				big[i] = 0
			}
			m["buffers"].(map[string]any)[p.Out] = big
		})
	}},
	{"deep-nesting", func(p *Program, rng *rand.Rand) []byte {
		// A 6000-deep unary chain: either the JSON decoder's depth limit
		// or the node-count limit must refuse it; the stack must survive.
		depth := 6000
		var b strings.Builder
		b.WriteString(`{"grid":1,"block":1,"out":"out",` +
			`"buffers":{"out":[0]},` +
			`"kernel":{"name":"deep","params":[{"name":"out","type":"u32","buffer":true,"space":"global"}],` +
			`"body":[{"kind":"store","buf":"out","index":{"kind":"int","type":"u32"},"value":`)
		for i := 0; i < depth; i++ {
			b.WriteString(`{"kind":"un","type":"u32","op":"-","x":`)
		}
		b.WriteString(`{"kind":"int","type":"u32"}`)
		b.WriteString(strings.Repeat("}", depth))
		b.WriteString(`}]}}`)
		return []byte(b.String())
	}},
	{"watchdog-bait", func(p *Program, rng *rand.Rand) []byte {
		// Data-dependent infinite loop: passes the whole static gauntlet,
		// must die by step budget and come back typed, never hang.
		return []byte(`{"grid":1,"block":4,"out":"out",` +
			`"buffers":{"out":[0,0,0,0]},` +
			`"kernel":{"name":"bait","params":[{"name":"out","type":"u32","buffer":true,"space":"global"}],` +
			`"body":[{"kind":"for","name":"i",` +
			`"init":{"kind":"int","type":"u32"},` +
			`"limit":{"kind":"int","type":"u32","int":10},` +
			`"step":{"kind":"load","type":"u32","name":"out","index":{"kind":"int","type":"u32"}},` +
			`"body":[]}]}}`)
	}},
	{"huge-body", func(p *Program, rng *rand.Rand) []byte {
		// Over the MaxBody cap: the server must cut the read off.
		return bytes.Repeat([]byte(" "), 2<<20)
	}},
}

func mustEncode(p *Program) []byte {
	b, err := Encode(p)
	if err != nil {
		panic(err) // generated programs always encode
	}
	return b
}

// patch round-trips the program through a generic JSON map, applies fn,
// and re-marshals — the easiest way to produce "almost valid" bodies.
func patch(p *Program, fn func(m map[string]any)) []byte {
	var m map[string]any
	if err := json.Unmarshal(mustEncode(p), &m); err != nil {
		panic(err)
	}
	fn(m)
	b, err := json.Marshal(m)
	if err != nil {
		panic(err)
	}
	return b
}

// kernelBody rewrites the kernel's statement list in the generic map.
func kernelBody(m map[string]any, fn func([]any) []any) {
	k, _ := m["kernel"].(map[string]any)
	if k == nil {
		return
	}
	body, _ := k["body"].([]any)
	k["body"] = fn(body)
}

// attackResponse is the part of the server reply the campaign inspects.
type attackResponse struct {
	Classification string `json:"classification"`
	Code           string `json:"code"`
	Served         string `json:"served"`
	Cached         bool   `json:"cached"`
}

// Attack runs n submissions against baseURL (e.g. "http://host:port"),
// generating program seeds start..start+n-1 and applying the mutator set
// round-robin. It returns the aggregated report; err is non-nil only for
// setup-level failures (campaign-property violations are reported via
// AttackReport.Unclassified, not the error).
func Attack(baseURL string, start uint64, n int, opts AttackOptions) (*AttackReport, error) {
	if len(opts.Tenants) == 0 {
		opts.Tenants = []string{"attacker"}
	}
	if opts.Concurrency <= 0 {
		opts.Concurrency = 8
	}
	client := opts.Client
	if client == nil {
		client = &http.Client{Timeout: 30 * time.Second}
	}
	url := strings.TrimRight(baseURL, "/") + "/kernels"

	rep := &AttackReport{
		ByClass:   map[string]int{},
		ByCode:    map[string]int{},
		ByMutator: map[string]int{},
	}
	var mu sync.Mutex
	var wg sync.WaitGroup
	idx := make(chan int)
	for w := 0; w < opts.Concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				seed := start + uint64(i)
				mut := mutators[i%len(mutators)]
				p := Generate(seed, DefaultConfig())
				rng := rand.New(rand.NewSource(int64(seed)))
				body := mut.build(p, rng)
				tenant := opts.Tenants[i%len(opts.Tenants)]
				verdict := post(client, url, tenant, body)

				mu.Lock()
				rep.Requests++
				rep.ByMutator[mut.name]++
				if verdict.problem != "" {
					rep.Unclassified = append(rep.Unclassified,
						fmt.Sprintf("seed %d mutator %s tenant %s: %s", seed, mut.name, tenant, verdict.problem))
				} else {
					rep.ByClass[verdict.class]++
					if verdict.code != "" {
						rep.ByCode[verdict.code]++
					}
					if verdict.cached {
						rep.CacheHits++
					}
				}
				mu.Unlock()
				if opts.Verbose != nil {
					fmt.Fprintf(opts.Verbose, "seed %d %-18s -> %s %s\n", seed, mut.name, verdict.class, verdict.code)
				}
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return rep, nil
}

type verdict struct {
	class   string
	code    string
	cached  bool
	problem string // non-empty = unclassified (campaign failure)
}

// post sends one submission and applies the campaign property to the
// response.
func post(client *http.Client, url, tenant string, body []byte) verdict {
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return verdict{problem: "building request: " + err.Error()}
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Tenant", tenant)
	resp, err := client.Do(req)
	if err != nil {
		// A transport error means the server died or hung — exactly what
		// the campaign exists to catch.
		return verdict{problem: "transport: " + err.Error()}
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 4<<20))
	if err != nil {
		return verdict{problem: "reading response: " + err.Error()}
	}
	if resp.StatusCode >= 500 {
		return verdict{problem: fmt.Sprintf("status %d: %.200s", resp.StatusCode, raw)}
	}
	var ar attackResponse
	if err := json.Unmarshal(raw, &ar); err != nil {
		return verdict{problem: fmt.Sprintf("unparseable body (status %d): %.200s", resp.StatusCode, raw)}
	}
	switch ar.Classification {
	case "ok", "gauntlet-reject", "watchdog", "quota":
	case "":
		// Non-/kernels error shapes (405, bad tenant, oversized body) carry
		// only {error, code}; fold them into the rejection class as long as
		// they are well-formed 4xx with a machine code.
		if resp.StatusCode >= 400 && resp.StatusCode < 500 && ar.Code != "" {
			return verdict{class: "gauntlet-reject", code: ar.Code}
		}
		return verdict{problem: fmt.Sprintf("unclassified response (status %d): %.200s", resp.StatusCode, raw)}
	default:
		return verdict{problem: fmt.Sprintf("unknown classification %q", ar.Classification)}
	}
	if ar.Classification == "quota" && resp.Header.Get("Retry-After") == "" {
		return verdict{problem: "quota response without Retry-After header"}
	}
	return verdict{class: ar.Classification, code: ar.Code, cached: ar.Cached}
}
