package fuzz

import (
	"errors"
	"fmt"
	"strings"

	"gpucmp/internal/arch"
	"gpucmp/internal/compiler"
	"gpucmp/internal/sim"
)

// This file turns a differential-fuzz divergence into a named culprit. The
// compiler is a pipeline of individually removable parts — front-end
// features (compiler.FeatureKnobs) and back-end passes (the Pipeline) — so
// once the oracle finds a miscompiling program, we can re-run it with each
// part disabled in turn: a part whose removal makes the divergence vanish
// is a prime suspect. This is delta debugging at the granularity the
// pass-pipeline refactor made addressable.

// Suspect names one compiler component implicated in a divergence.
type Suspect struct {
	Kind        string `json:"kind"` // "pass" (back-end) or "feature" (front-end)
	Name        string `json:"name"`
	Description string `json:"description"`
}

func (s Suspect) String() string {
	return fmt.Sprintf("%s %q (%s)", s.Kind, s.Name, s.Description)
}

// BisectReport is the outcome of re-running a diverging program with each
// compiler component disabled in turn.
type BisectReport struct {
	Seed      uint64 `json:"seed"`
	Toolchain string `json:"toolchain"`
	Device    string `json:"device"`

	// Reproduced is false when the baseline configuration no longer
	// diverges (flaky report or environment drift); no bisection happens.
	Reproduced bool `json:"reproduced"`

	// Suspects lists every component whose removal made the program agree
	// with the reference again, back-end passes first.
	Suspects []Suspect `json:"suspects,omitempty"`

	// Inconclusive lists components whose removal made the program
	// unrunnable (e.g. disabling an optimisation pushed the kernel over a
	// device resource limit), so they can be neither cleared nor blamed.
	Inconclusive []string `json:"inconclusive,omitempty"`

	// Trials counts the compile+execute experiments performed.
	Trials int `json:"trials"`
}

// String renders the report for kfuzz output.
func (r *BisectReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "bisect seed %d (%s on %s): ", r.Seed, r.Toolchain, r.Device)
	switch {
	case !r.Reproduced:
		b.WriteString("divergence did not reproduce under the baseline config\n")
	case len(r.Suspects) == 0:
		fmt.Fprintf(&b, "no single component clears the divergence (%d trials); suspect an interaction or the lowering core\n", r.Trials)
	default:
		fmt.Fprintf(&b, "%d suspect(s) in %d trials\n", len(r.Suspects), r.Trials)
		for _, s := range r.Suspects {
			fmt.Fprintf(&b, "  removing %s fixes the output\n", s)
		}
	}
	for _, inc := range r.Inconclusive {
		fmt.Fprintf(&b, "  inconclusive: %s\n", inc)
	}
	return b.String()
}

// diverges compiles the program under cfg, runs it on the device and
// reports whether the output disagrees with want. Resource-limit aborts
// surface as (false, sim.ErrOutOfResources).
func diverges(p *Program, cfg compiler.Config, a *arch.Device, want []uint32) (bool, error) {
	pk, err := compiler.CompileWithConfig(p.Kernel, cfg)
	if err != nil {
		return false, err
	}
	got, _, err := Execute(p, pk, a)
	if err != nil {
		return false, err
	}
	for i := range want {
		if got[i] != want[i] {
			return true, nil
		}
	}
	return false, nil
}

// Bisect re-runs a diverging program with each compiler component disabled
// in turn and reports which removals clear the divergence. cfg is the
// configuration that diverged: its Personality is the suspect front-end and
// its Passes (nil = default) the suspect back-end pipeline.
func Bisect(p *Program, cfg compiler.Config, a *arch.Device) (*BisectReport, error) {
	want, err := Reference(p)
	if err != nil {
		return nil, err
	}
	rep := &BisectReport{Seed: p.Seed, Toolchain: cfg.Personality.Name, Device: a.Name}

	baseline := cfg
	bad, err := diverges(p, baseline, a, want)
	rep.Trials++
	if err != nil {
		return nil, fmt.Errorf("fuzz: bisect seed %d: baseline: %w", p.Seed, err)
	}
	if !bad {
		return rep, nil
	}
	rep.Reproduced = true

	passes := cfg.Passes
	if passes == nil {
		passes = compiler.DefaultPasses()
	}

	// Back-end passes: drop one at a time.
	for _, name := range compiler.PassNames(passes) {
		trial := cfg
		trial.Passes = compiler.WithoutPass(passes, name)
		bad, err := diverges(p, trial, a, want)
		rep.Trials++
		if err != nil {
			if errors.Is(err, sim.ErrOutOfResources) {
				rep.Inconclusive = append(rep.Inconclusive,
					fmt.Sprintf("pass %q: removal made the kernel unrunnable: %v", name, err))
				continue
			}
			return nil, fmt.Errorf("fuzz: bisect seed %d: without pass %q: %w", p.Seed, name, err)
		}
		if !bad {
			desc := ""
			for _, ps := range passes {
				if ps.Name == name {
					desc = ps.Description
				}
			}
			rep.Suspects = append(rep.Suspects, Suspect{Kind: "pass", Name: name, Description: desc})
		}
	}

	// Front-end features: disable one at a time.
	for _, kn := range compiler.FeatureKnobs() {
		trial := cfg
		pers := cfg.Personality
		kn.Apply(&pers)
		if pers.Canonical() == cfg.Personality.Canonical() {
			continue // knob is a no-op for this personality; nothing to learn
		}
		trial.Personality = pers
		bad, err := diverges(p, trial, a, want)
		rep.Trials++
		if err != nil {
			if errors.Is(err, sim.ErrOutOfResources) {
				rep.Inconclusive = append(rep.Inconclusive,
					fmt.Sprintf("feature %q: disabling made the kernel unrunnable: %v", kn.Name, err))
				continue
			}
			return nil, fmt.Errorf("fuzz: bisect seed %d: without feature %q: %w", p.Seed, kn.Name, err)
		}
		if !bad {
			rep.Suspects = append(rep.Suspects, Suspect{Kind: "feature", Name: kn.Name, Description: kn.Description})
		}
	}
	return rep, nil
}

// BisectDivergence is the kfuzz entry point: it reconstructs the config a
// Divergence was produced under (the named toolchain with the default
// pipeline) and bisects on the named device.
func BisectDivergence(p *Program, d *Divergence) (*BisectReport, error) {
	var pers compiler.Personality
	switch d.Toolchain {
	case "cuda":
		pers = compiler.CUDA()
	case "opencl":
		pers = compiler.OpenCL()
	default:
		return nil, fmt.Errorf("fuzz: bisect: unknown toolchain %q", d.Toolchain)
	}
	a, err := arch.Resolve(d.Device)
	if err != nil {
		return nil, fmt.Errorf("fuzz: bisect: %w", err)
	}
	return Bisect(p, compiler.Config{Personality: pers}, a)
}
