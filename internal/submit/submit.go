// Package submit implements the untrusted kernel-submission pipeline
// behind POST /kernels: parse a client-supplied KIR program (the same JSON
// encoding the fuzz corpus uses — any corpus file can be POSTed
// unchanged), enforce resource limits, run the static gauntlet, and
// execute the kernel on the modelled devices under a hard watchdog step
// budget.
//
// The package deliberately imports neither internal/fuzz (the fuzzer is a
// client of this API, not a dependency) nor the compile cache: untrusted
// kernels are compiled with plain compiler.Compile so a hostile client
// cannot grow the process-wide cache without bound.
//
// Threat model (DESIGN.md §8): the client controls the entire request
// body. Nothing in it may crash the process, hang a worker, exhaust
// memory, or read another tenant's results. Every rejection is typed —
// *Reject for shape/limit violations, kir.CheckError for gauntlet
// failures — so the server can map failures to stable machine codes.
package submit

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"

	"gpucmp/internal/arch"
	"gpucmp/internal/bench"
	"gpucmp/internal/compiler"
	"gpucmp/internal/kir"
	"gpucmp/internal/ptx"
	"gpucmp/internal/sim"
)

// Limits bounds what one submission may ask of the service. Zero values
// are not valid; use DefaultLimits as the base.
type Limits struct {
	MaxBody       int64  // request body bytes (enforced by the server)
	MaxGrid       int    // work groups
	MaxBlock      int    // threads per work group
	MaxThreads    int    // grid * block
	MaxBufWords   int    // words in any one buffer argument
	MaxTotalWords int    // words across all buffer arguments
	MaxArrayWords int    // elements in any one shared/local array
	MaxNodes      int    // statements + expressions in the kernel tree
	MaxOutWords   int    // output words echoed in the report
	MaxDiffLines  int    // PTX diff lines echoed in the report
	StepBudget    uint64 // watchdog: warp instructions per work group
}

// DefaultLimits are sized so every legitimate corpus program fits with
// room to spare while a hostile one cannot tie up a worker for more than
// a few milliseconds.
func DefaultLimits() Limits {
	return Limits{
		MaxBody:       1 << 20, // 1 MiB
		MaxGrid:       64,
		MaxBlock:      256,
		MaxThreads:    8192,
		MaxBufWords:   1 << 14, // 64 KiB per buffer
		MaxTotalWords: 1 << 16,
		MaxArrayWords: 1 << 12,
		MaxNodes:      4096,
		MaxOutWords:   256,
		MaxDiffLines:  200,
		StepBudget:    1 << 20,
	}
}

// Reject is a typed refusal of a submission before any kernel code runs:
// malformed JSON, impossible shapes, limit violations, unknown devices.
// Code is a stable machine-readable string (API contract: never change a
// code, only add new ones).
type Reject struct {
	Code string
	Msg  string
	Err  error // optional cause
}

func (r *Reject) Error() string {
	if r.Err != nil {
		return fmt.Sprintf("submit: %s: %v", r.Msg, r.Err)
	}
	return "submit: " + r.Msg
}

func (r *Reject) Unwrap() error { return r.Err }

func rejectf(code, format string, args ...any) error {
	return &Reject{Code: code, Msg: fmt.Sprintf(format, args...)}
}

// Reject codes.
const (
	CodeBadJSON       = "bad-json"       // body is not the expected JSON shape
	CodeBadShape      = "bad-shape"      // launch shape / buffers inconsistent
	CodeTooLarge      = "too-large"      // a Limits bound exceeded
	CodeUnknownDevice = "unknown-device" // devices lists a name arch doesn't know
	CodeCompileFailed = "compile-failed" // front end rejected a checked kernel
)

// Code maps any error from this package (or the kir gauntlet) to its
// stable machine code, or "" for unclassified internal errors.
func Code(err error) string {
	var r *Reject
	if errors.As(err, &r) {
		return r.Code
	}
	return kir.ErrCode(err)
}

// Submission is a parsed, limit-checked request, ready for the gauntlet.
type Submission struct {
	Kernel  *kir.Kernel
	Grid    int
	Block   int
	Out     string
	Buffers map[string][]uint32
	Scalars map[string]uint32
	Devices []*arch.Device // resolved, in request order; all devices if unset
}

// request is the wire shape. It is a superset of the fuzz corpus format:
// unknown fields (seed, source) are tolerated so corpus files replay
// unchanged.
type request struct {
	Grid    int                 `json:"grid"`
	Block   int                 `json:"block"`
	Out     string              `json:"out"`
	Scalars map[string]uint32   `json:"scalars"`
	Buffers map[string][]uint32 `json:"buffers"`
	Kernel  kir.KernelJSON      `json:"kernel"`
	Devices []string            `json:"devices"`
}

// Parse decodes and limit-checks a request body. It does not type-check
// the kernel — that is the gauntlet's job — but it does bound everything
// that could cost memory or time before the gauntlet runs: tree size,
// launch shape, buffer volume, array extents.
func Parse(body []byte, lim Limits) (*Submission, error) {
	var req request
	if err := json.Unmarshal(body, &req); err != nil {
		return nil, &Reject{Code: CodeBadJSON, Msg: "request decode failed", Err: err}
	}
	k, err := kir.DecodeKernelJSON(&req.Kernel)
	if err != nil {
		return nil, &Reject{Code: CodeBadJSON, Msg: "kernel decode failed", Err: err}
	}
	if n := kir.CountNodes(k.Body); n > lim.MaxNodes {
		return nil, rejectf(CodeTooLarge, "kernel has %d nodes, limit %d", n, lim.MaxNodes)
	}
	for _, arrs := range [][]kir.Array{k.SharedArrays, k.LocalArrays} {
		for _, a := range arrs {
			if a.Count < 1 || a.Count > lim.MaxArrayWords {
				return nil, rejectf(CodeTooLarge,
					"array %q has %d elements, limit %d", a.Name, a.Count, lim.MaxArrayWords)
			}
		}
	}
	if req.Grid < 1 || req.Grid > lim.MaxGrid {
		return nil, rejectf(CodeBadShape, "grid %d out of range [1, %d]", req.Grid, lim.MaxGrid)
	}
	if req.Block < 1 || req.Block > lim.MaxBlock {
		return nil, rejectf(CodeBadShape, "block %d out of range [1, %d]", req.Block, lim.MaxBlock)
	}
	if req.Grid*req.Block > lim.MaxThreads {
		return nil, rejectf(CodeTooLarge,
			"launch of %d threads, limit %d", req.Grid*req.Block, lim.MaxThreads)
	}
	total := 0
	for name, data := range req.Buffers {
		if len(data) > lim.MaxBufWords {
			return nil, rejectf(CodeTooLarge,
				"buffer %q has %d words, limit %d", name, len(data), lim.MaxBufWords)
		}
		total += len(data)
	}
	if total > lim.MaxTotalWords {
		return nil, rejectf(CodeTooLarge,
			"buffers total %d words, limit %d", total, lim.MaxTotalWords)
	}
	// Every buffer parameter needs backing data; extra entries are ignored.
	for _, p := range k.Params {
		if !p.Buffer {
			continue
		}
		if len(req.Buffers[p.Name]) == 0 {
			return nil, rejectf(CodeBadShape, "buffer parameter %q has no data", p.Name)
		}
	}
	outP := k.Param(req.Out)
	if outP == nil || !outP.Buffer {
		return nil, rejectf(CodeBadShape, "out %q is not a buffer parameter", req.Out)
	}
	if outP.Space != kir.Global {
		return nil, rejectf(CodeBadShape,
			"out buffer %q is in %v space, want global", req.Out, outP.Space)
	}
	var devices []*arch.Device
	if len(req.Devices) == 0 {
		devices = arch.All()
	} else {
		seen := map[string]bool{}
		for _, name := range req.Devices {
			a := arch.ByName(name)
			if a == nil {
				return nil, rejectf(CodeUnknownDevice, "unknown device %q", name)
			}
			if !seen[a.Name] {
				seen[a.Name] = true
				devices = append(devices, a)
			}
		}
	}
	if req.Scalars == nil {
		req.Scalars = map[string]uint32{}
	}
	return &Submission{
		Kernel: k, Grid: req.Grid, Block: req.Block, Out: req.Out,
		Buffers: req.Buffers, Scalars: req.Scalars, Devices: devices,
	}, nil
}

// Gauntlet runs every static check an untrusted kernel must pass before
// it is compiled or executed. Errors are typed kir check errors.
func Gauntlet(k *kir.Kernel) error {
	if err := kir.Check(k); err != nil {
		return err
	}
	if err := kir.CheckUniformBarriers(k); err != nil {
		return err
	}
	return kir.CheckBoundedLoops(k)
}

// ContentKey is a stable identity for the submission's observable result:
// same key, same report. The caller namespaces it per tenant before using
// it as a cache key.
func (s *Submission) ContentKey() string {
	names := make([]string, len(s.Devices))
	for i, a := range s.Devices {
		names[i] = a.Name
	}
	blob, err := json.Marshal(request{
		Grid: s.Grid, Block: s.Block, Out: s.Out,
		Scalars: s.Scalars, Buffers: s.Buffers,
		Kernel:  kir.EncodeKernelJSON(s.Kernel),
		Devices: names,
	})
	if err != nil { // all field types are marshalable; this cannot happen
		panic(err)
	}
	sum := sha256.Sum256(blob)
	return hex.EncodeToString(sum[:12])
}

// DeviceRun is the outcome of one toolchain x device execution.
type DeviceRun struct {
	Device    string `json:"device"`
	Toolchain string `json:"toolchain"`
	// Status: "ok" (ran to completion), "skipped" (device cannot launch
	// this shape — the paper's ABT rows), "watchdog" (step budget killed
	// it), "fault" (runtime error, e.g. an out-of-bounds access).
	Status       string   `json:"status"`
	Reason       string   `json:"reason,omitempty"`
	Out          []uint32 `json:"out,omitempty"`
	OutTruncated bool     `json:"out_truncated,omitempty"`
	OutChecksum  string   `json:"out_checksum,omitempty"` // over the full buffer
	WarpInstrs   int64    `json:"warp_instrs,omitempty"`
	LaneInstrs   int64    `json:"lane_instrs,omitempty"`
}

// Report is everything the service learned about one submission: the
// compiler story per toolchain, the execution matrix, and a line diff of
// the two personalities' generated PTX.
type Report struct {
	Kernel      string              `json:"kernel"`
	Grid        int                 `json:"grid"`
	Block       int                 `json:"block"`
	Compile     []bench.KernelReport `json:"compile"`
	Runs        []DeviceRun         `json:"runs"`
	PTXDiff     []string            `json:"ptx_diff,omitempty"`
	Watchdogged bool                `json:"watchdogged,omitempty"`
}

// Run compiles the submission with both personalities and executes it on
// every requested device (CUDA on NVIDIA devices only, matching the
// paper's platform matrix), each launch under lim.StepBudget. The kernel
// must already have passed Gauntlet. Run never hangs: a non-terminating
// kernel comes back as a watchdog-status DeviceRun with
// Report.Watchdogged set. The returned error is non-nil only for
// compile-time rejections (*Reject, CodeCompileFailed) — or ctx.Err()
// when the context is cancelled mid-run (every waiter abandoned the
// submission), in which case in-flight simulated devices are cancelled
// and the remaining matrix is skipped so the worker is reclaimed.
func Run(ctx context.Context, s *Submission, lim Limits) (*Report, error) {
	rep := &Report{Kernel: s.Kernel.Name, Grid: s.Grid, Block: s.Block}
	type built struct {
		pers compiler.Personality
		pk   *ptx.Kernel
	}
	var pipelines []built
	for _, pers := range []compiler.Personality{compiler.CUDA(), compiler.OpenCL()} {
		pk, err := compiler.Compile(s.Kernel, pers)
		if err != nil {
			return nil, &Reject{Code: CodeCompileFailed,
				Msg: "compile with " + pers.Name + " failed", Err: err}
		}
		pipelines = append(pipelines, built{pers, pk})
		rep.Compile = append(rep.Compile, bench.ReportKernel(pk))
	}
	rep.PTXDiff = diffLines(
		pipelines[0].pk.Disassemble(), pipelines[1].pk.Disassemble(), lim.MaxDiffLines)
	for _, b := range pipelines {
		for _, a := range s.Devices {
			if b.pers.Name == "cuda" && a.Vendor != "NVIDIA" {
				continue // CUDA toolchain targets NVIDIA hardware only
			}
			if ctx != nil && ctx.Err() != nil {
				return nil, ctx.Err()
			}
			run := executeOne(ctx, s, b.pk, a, lim)
			run.Toolchain = b.pers.Name
			run.Device = a.Name
			if run.Status == "watchdog" {
				rep.Watchdogged = true
			}
			rep.Runs = append(rep.Runs, run)
		}
	}
	return rep, nil
}

// executeOne stages the submission's buffers onto a fresh simulated
// device and launches once. All failure modes fold into the DeviceRun
// status; nothing a hostile kernel does at run time is an error to the
// caller. Cancelling ctx cancels the device, so a launch in progress
// aborts at its next warp checkpoint (surfacing as a watchdog status).
func executeOne(ctx context.Context, s *Submission, pk *ptx.Kernel, a *arch.Device, lim Limits) DeviceRun {
	dev, err := sim.NewDevice(a)
	if err != nil {
		return DeviceRun{Status: "skipped", Reason: err.Error()}
	}
	dev.StepBudget = lim.StepBudget
	if ctx != nil {
		defer context.AfterFunc(ctx, dev.Cancel)()
	}
	var args []uint32
	var outAddr uint32
	for _, prm := range s.Kernel.Params {
		if !prm.Buffer {
			args = append(args, s.Scalars[prm.Name])
			continue
		}
		data := s.Buffers[prm.Name]
		if prm.Space == kir.Const {
			off, err := dev.ConstAlloc(uint32(4 * len(data)))
			if err != nil {
				return DeviceRun{Status: "skipped", Reason: err.Error()}
			}
			if err := dev.ConstWrite(off, data); err != nil {
				return DeviceRun{Status: "skipped", Reason: err.Error()}
			}
			args = append(args, off)
			continue
		}
		addr, err := dev.Global.Alloc(uint32(4 * len(data)))
		if err != nil {
			return DeviceRun{Status: "skipped", Reason: err.Error()}
		}
		if err := dev.Global.WriteWords(addr, data); err != nil {
			return DeviceRun{Status: "skipped", Reason: err.Error()}
		}
		if prm.Name == s.Out {
			outAddr = addr
		}
		args = append(args, addr)
	}
	tr, err := dev.Launch(pk,
		sim.Dim3{X: s.Grid, Y: 1}, sim.Dim3{X: s.Block, Y: 1}, args)
	if err != nil {
		switch {
		case errors.Is(err, sim.ErrWatchdog):
			return DeviceRun{Status: "watchdog", Reason: err.Error()}
		case errors.Is(err, sim.ErrOutOfResources),
			errors.Is(err, sim.ErrInvalidWorkGroupSize),
			errors.Is(err, sim.ErrInvalidConfig):
			return DeviceRun{Status: "skipped", Reason: err.Error()}
		default:
			return DeviceRun{Status: "fault", Reason: err.Error()}
		}
	}
	out := make([]uint32, len(s.Buffers[s.Out]))
	if err := dev.Global.ReadWords(outAddr, out); err != nil {
		return DeviceRun{Status: "fault", Reason: err.Error()}
	}
	run := DeviceRun{
		Status:      "ok",
		OutChecksum: checksumWords(out),
		WarpInstrs:  tr.Dyn.Total,
		LaneInstrs:  tr.LaneInstrs,
	}
	if len(out) > lim.MaxOutWords {
		run.Out = out[:lim.MaxOutWords]
		run.OutTruncated = true
	} else {
		run.Out = out
	}
	return run
}

func checksumWords(words []uint32) string {
	h := sha256.New()
	buf := make([]byte, 4)
	for _, w := range words {
		buf[0] = byte(w)
		buf[1] = byte(w >> 8)
		buf[2] = byte(w >> 16)
		buf[3] = byte(w >> 24)
		h.Write(buf)
	}
	return hex.EncodeToString(h.Sum(nil)[:8])
}
