package submit

import (
	"context"
	"encoding/json"
	"errors"
	"strings"
	"testing"

	"gpucmp/internal/arch"
	"gpucmp/internal/kir"
)

// storeKernel builds the canonical well-behaved submission kernel:
// out[gid] = gid for every thread.
func storeKernel(t *testing.T) *kir.Kernel {
	t.Helper()
	b := kir.NewKernel("store")
	out := b.GlobalBuffer("out", kir.U32)
	gid := b.Declare("gid", b.GlobalIDX())
	b.Store(out, gid, gid)
	k, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return k
}

// wire marshals a request body for k with an 8-word out buffer and a
// 2x4 launch, then applies mutations at the JSON-map level so tests can
// express shapes the typed request struct cannot.
func wire(t *testing.T, k *kir.Kernel, mutate func(m map[string]any)) []byte {
	t.Helper()
	body, err := json.Marshal(request{
		Grid: 2, Block: 4, Out: "out",
		Buffers: map[string][]uint32{"out": make([]uint32, 8)},
		Kernel:  kir.EncodeKernelJSON(k),
	})
	if err != nil {
		t.Fatal(err)
	}
	if mutate == nil {
		return body
	}
	var m map[string]any
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatal(err)
	}
	mutate(m)
	body, err = json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	return body
}

func TestParseValid(t *testing.T) {
	sub, err := Parse(wire(t, storeKernel(t), nil), DefaultLimits())
	if err != nil {
		t.Fatal(err)
	}
	if sub.Grid != 2 || sub.Block != 4 || sub.Out != "out" {
		t.Errorf("shape = %d x %d out %q", sub.Grid, sub.Block, sub.Out)
	}
	if len(sub.Devices) != len(arch.All()) {
		t.Errorf("devices defaulted to %d, want all %d", len(sub.Devices), len(arch.All()))
	}
	if sub.Scalars == nil {
		t.Error("Scalars not defaulted to empty map")
	}
	if err := Gauntlet(sub.Kernel); err != nil {
		t.Errorf("valid kernel failed gauntlet: %v", err)
	}
}

// TestParseHostile drives every reject path in Parse with a hostile
// encoding and asserts the typed code, exercising the API contract that
// no malformed body ever reaches the gauntlet or a worker.
func TestParseHostile(t *testing.T) {
	lim := DefaultLimits()
	cases := []struct {
		name string
		body func(t *testing.T) []byte
		lim  Limits
		code string
	}{
		{
			name: "not json",
			body: func(t *testing.T) []byte { return []byte("]]]not json") },
			code: CodeBadJSON,
		},
		{
			name: "wrong field type",
			body: func(t *testing.T) []byte { return []byte(`{"grid": "two"}`) },
			code: CodeBadJSON,
		},
		{
			name: "unknown stmt kind",
			body: func(t *testing.T) []byte {
				return wire(t, storeKernel(t), func(m map[string]any) {
					k := m["kernel"].(map[string]any)
					k["body"] = []any{map[string]any{"kind": "goto"}}
				})
			},
			code: CodeBadJSON,
		},
		{
			name: "zero grid",
			body: func(t *testing.T) []byte {
				return wire(t, storeKernel(t), func(m map[string]any) { m["grid"] = 0 })
			},
			code: CodeBadShape,
		},
		{
			name: "negative grid",
			body: func(t *testing.T) []byte {
				return wire(t, storeKernel(t), func(m map[string]any) { m["grid"] = -3 })
			},
			code: CodeBadShape,
		},
		{
			name: "oversized grid",
			body: func(t *testing.T) []byte {
				return wire(t, storeKernel(t), func(m map[string]any) { m["grid"] = 1 << 20 })
			},
			code: CodeBadShape,
		},
		{
			name: "zero block",
			body: func(t *testing.T) []byte {
				return wire(t, storeKernel(t), func(m map[string]any) { m["block"] = 0 })
			},
			code: CodeBadShape,
		},
		{
			name: "negative block",
			body: func(t *testing.T) []byte {
				return wire(t, storeKernel(t), func(m map[string]any) { m["block"] = -1 })
			},
			code: CodeBadShape,
		},
		{
			name: "too many threads",
			body: func(t *testing.T) []byte {
				return wire(t, storeKernel(t), func(m map[string]any) {
					m["grid"] = lim.MaxGrid
					m["block"] = lim.MaxBlock
				})
			},
			lim:  Limits{MaxGrid: 64, MaxBlock: 256, MaxThreads: 1024, MaxBufWords: 1 << 14, MaxTotalWords: 1 << 16, MaxArrayWords: 1 << 12, MaxNodes: 4096},
			code: CodeTooLarge,
		},
		{
			name: "oversized buffer",
			body: func(t *testing.T) []byte {
				return wire(t, storeKernel(t), func(m map[string]any) {
					m["buffers"] = map[string]any{"out": make([]uint32, lim.MaxBufWords+1)}
				})
			},
			code: CodeTooLarge,
		},
		{
			name: "oversized buffer total",
			body: func(t *testing.T) []byte {
				return wire(t, storeKernel(t), func(m map[string]any) {
					bufs := map[string]any{"out": make([]uint32, 8)}
					// Each buffer is individually under MaxBufWords but the
					// sum crosses MaxTotalWords. Extra names count: they cost
					// memory whether or not the kernel declares them.
					for i := 0; i < 8; i++ {
						bufs[string(rune('a'+i))] = make([]uint32, lim.MaxBufWords)
					}
					m["buffers"] = bufs
				})
			},
			code: CodeTooLarge,
		},
		{
			name: "oversized shared array",
			body: func(t *testing.T) []byte {
				return wire(t, storeKernel(t), func(m map[string]any) {
					k := m["kernel"].(map[string]any)
					k["shared"] = []any{map[string]any{"name": "tile", "type": "u32", "count": lim.MaxArrayWords + 1}}
				})
			},
			code: CodeTooLarge,
		},
		{
			name: "zero-extent local array",
			body: func(t *testing.T) []byte {
				return wire(t, storeKernel(t), func(m map[string]any) {
					k := m["kernel"].(map[string]any)
					k["local"] = []any{map[string]any{"name": "l", "type": "u32", "count": 0}}
				})
			},
			code: CodeTooLarge,
		},
		{
			name: "node bomb",
			body: func(t *testing.T) []byte { return wire(t, storeKernel(t), nil) },
			lim:  Limits{MaxGrid: 64, MaxBlock: 256, MaxThreads: 8192, MaxBufWords: 1 << 14, MaxTotalWords: 1 << 16, MaxArrayWords: 1 << 12, MaxNodes: 1},
			code: CodeTooLarge,
		},
		{
			name: "missing buffer data",
			body: func(t *testing.T) []byte {
				return wire(t, storeKernel(t), func(m map[string]any) {
					m["buffers"] = map[string]any{}
				})
			},
			code: CodeBadShape,
		},
		{
			name: "out names a non-parameter",
			body: func(t *testing.T) []byte {
				return wire(t, storeKernel(t), func(m map[string]any) { m["out"] = "nope" })
			},
			code: CodeBadShape,
		},
		{
			name: "unknown device",
			body: func(t *testing.T) []byte {
				return wire(t, storeKernel(t), func(m map[string]any) {
					m["devices"] = []any{"GeForce 9999"}
				})
			},
			code: CodeUnknownDevice,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			l := tc.lim
			if l.MaxGrid == 0 {
				l = lim
			}
			_, err := Parse(tc.body(t), l)
			if err == nil {
				t.Fatal("Parse accepted a hostile body")
			}
			var rej *Reject
			if !errors.As(err, &rej) {
				t.Fatalf("error %v (%T) is not a *Reject", err, err)
			}
			if rej.Code != tc.code {
				t.Errorf("code = %q, want %q (err: %v)", rej.Code, tc.code, err)
			}
			if Code(err) != tc.code {
				t.Errorf("Code(err) = %q, want %q", Code(err), tc.code)
			}
		})
	}
}

func TestParseDeviceDedupAndOrder(t *testing.T) {
	all := arch.All()
	body := wire(t, storeKernel(t), func(m map[string]any) {
		m["devices"] = []any{all[1].Name, all[0].Name, all[1].Name}
	})
	sub, err := Parse(body, DefaultLimits())
	if err != nil {
		t.Fatal(err)
	}
	if len(sub.Devices) != 2 || sub.Devices[0].Name != all[1].Name || sub.Devices[1].Name != all[0].Name {
		t.Errorf("devices = %v", sub.Devices)
	}
}

func TestGauntletTyped(t *testing.T) {
	div := kir.NewKernel("divbar")
	out := div.GlobalBuffer("out", kir.U32)
	div.If(kir.Lt(kir.Bi(kir.TidX), kir.U(3)), func() { div.Barrier() })
	div.Store(out, kir.U(0), kir.U(1))
	dk, err := div.Build()
	if err != nil {
		t.Fatal(err)
	}
	if err := Gauntlet(dk); !errors.Is(err, kir.ErrNonUniformBarrier) {
		t.Errorf("divergent barrier: err = %v, want ErrNonUniformBarrier", err)
	}

	lp := kir.NewKernel("zerostep")
	out2 := lp.GlobalBuffer("out", kir.U32)
	lp.For("i", kir.U(0), kir.U(10), kir.U(0), func(v kir.Expr) {
		lp.Store(out2, kir.U(0), v)
	})
	lk, err := lp.Build()
	if err != nil {
		t.Fatal(err)
	}
	if err := Gauntlet(lk); !errors.Is(err, kir.ErrUnboundedLoop) {
		t.Errorf("zero-step loop: err = %v, want ErrUnboundedLoop", err)
	}
}

func TestContentKey(t *testing.T) {
	lim := DefaultLimits()
	a1, err := Parse(wire(t, storeKernel(t), nil), lim)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := Parse(wire(t, storeKernel(t), nil), lim)
	if err != nil {
		t.Fatal(err)
	}
	if a1.ContentKey() != a2.ContentKey() {
		t.Error("identical submissions have different content keys")
	}
	b, err := Parse(wire(t, storeKernel(t), func(m map[string]any) {
		m["scalars"] = map[string]any{"s": 7}
	}), lim)
	if err != nil {
		t.Fatal(err)
	}
	if a1.ContentKey() == b.ContentKey() {
		t.Error("different submissions share a content key")
	}
}

// oneDevice narrows a submission to a single NVIDIA device so execution
// tests stay fast and the CUDA personality actually runs.
func oneDevice(t *testing.T, sub *Submission) {
	t.Helper()
	for _, a := range arch.All() {
		if a.Vendor == "NVIDIA" {
			sub.Devices = []*arch.Device{a}
			return
		}
	}
	t.Fatal("no NVIDIA device modelled")
}

func TestRunValid(t *testing.T) {
	lim := DefaultLimits()
	sub, err := Parse(wire(t, storeKernel(t), nil), lim)
	if err != nil {
		t.Fatal(err)
	}
	oneDevice(t, sub)
	rep, err := Run(context.Background(), sub, lim)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Compile) != 2 {
		t.Fatalf("compile reports = %d, want 2 (cuda + opencl)", len(rep.Compile))
	}
	if len(rep.Runs) != 2 {
		t.Fatalf("runs = %d, want 2 (cuda + opencl on one NVIDIA device)", len(rep.Runs))
	}
	want := []uint32{0, 1, 2, 3, 4, 5, 6, 7}
	for _, run := range rep.Runs {
		if run.Status != "ok" {
			t.Errorf("%s/%s status = %q (%s)", run.Toolchain, run.Device, run.Status, run.Reason)
			continue
		}
		if run.OutChecksum == "" || run.WarpInstrs == 0 {
			t.Errorf("%s/%s missing checksum or instruction counts", run.Toolchain, run.Device)
		}
		for i, w := range want {
			if run.Out[i] != w {
				t.Errorf("%s/%s out[%d] = %d, want %d", run.Toolchain, run.Device, i, run.Out[i], w)
			}
		}
	}
	if rep.Runs[0].OutChecksum != rep.Runs[1].OutChecksum {
		t.Error("cuda and opencl disagree on the output checksum")
	}
	if rep.Watchdogged {
		t.Error("well-behaved kernel reported as watchdogged")
	}
}

func TestRunCUDASkipsNonNVIDIA(t *testing.T) {
	lim := DefaultLimits()
	sub, err := Parse(wire(t, storeKernel(t), nil), lim)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(context.Background(), sub, lim)
	if err != nil {
		t.Fatal(err)
	}
	for _, run := range rep.Runs {
		if run.Toolchain != "cuda" {
			continue
		}
		if a := arch.ByName(run.Device); a == nil || a.Vendor != "NVIDIA" {
			t.Errorf("CUDA ran on non-NVIDIA device %q", run.Device)
		}
	}
}

// TestRunWatchdog submits a kernel whose loop step is data-dependent and
// zero at run time — exactly the shape the static gauntlet cannot refuse
// — and asserts the step budget kills it instead of hanging the worker.
func TestRunWatchdog(t *testing.T) {
	b := kir.NewKernel("spin")
	out := b.GlobalBuffer("out", kir.U32)
	gid := b.Declare("gid", b.GlobalIDX())
	b.For("i", kir.U(0), kir.U(10), b.Load(out, kir.U(0)), func(v kir.Expr) {
		b.Store(out, gid, v)
	})
	k, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if err := Gauntlet(k); err != nil {
		t.Fatalf("watchdog bait must pass the static gauntlet, got %v", err)
	}
	lim := DefaultLimits()
	lim.StepBudget = 1 << 12
	sub, err := Parse(wire(t, k, func(m map[string]any) {
		m["grid"], m["block"] = 1, 4
		m["buffers"] = map[string]any{"out": []any{0, 0, 0, 0}}
	}), lim)
	if err != nil {
		t.Fatal(err)
	}
	oneDevice(t, sub)
	rep, err := Run(context.Background(), sub, lim)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Watchdogged {
		t.Fatal("non-terminating kernel did not trip the watchdog")
	}
	for _, run := range rep.Runs {
		if run.Status != "watchdog" {
			t.Errorf("%s/%s status = %q, want watchdog", run.Toolchain, run.Device, run.Status)
		}
	}
}

// TestRunOOBFault stores far beyond the backing allocation; the sim must
// return a typed runtime error, which Run folds into a "fault" DeviceRun
// rather than an error (or a panic).
func TestRunOOBFault(t *testing.T) {
	b := kir.NewKernel("oob")
	out := b.GlobalBuffer("out", kir.U32)
	b.Store(out, kir.U(1<<27), kir.U(1))
	k, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	lim := DefaultLimits()
	sub, err := Parse(wire(t, k, nil), lim)
	if err != nil {
		t.Fatal(err)
	}
	oneDevice(t, sub)
	rep, err := Run(context.Background(), sub, lim)
	if err != nil {
		t.Fatal(err)
	}
	for _, run := range rep.Runs {
		if run.Status != "fault" {
			t.Errorf("%s/%s status = %q (%s), want fault", run.Toolchain, run.Device, run.Status, run.Reason)
		}
	}
}

func TestRunOutTruncation(t *testing.T) {
	lim := DefaultLimits()
	lim.MaxOutWords = 4
	sub, err := Parse(wire(t, storeKernel(t), nil), lim)
	if err != nil {
		t.Fatal(err)
	}
	oneDevice(t, sub)
	rep, err := Run(context.Background(), sub, lim)
	if err != nil {
		t.Fatal(err)
	}
	full := checksumWords([]uint32{0, 1, 2, 3, 4, 5, 6, 7})
	for _, run := range rep.Runs {
		if !run.OutTruncated || len(run.Out) != 4 {
			t.Errorf("%s: truncated=%v len=%d, want truncated to 4", run.Toolchain, run.OutTruncated, len(run.Out))
		}
		if run.OutChecksum != full {
			t.Errorf("%s: checksum %q not over the full buffer (%q)", run.Toolchain, run.OutChecksum, full)
		}
	}
}

func TestDiffLines(t *testing.T) {
	if d := diffLines("a\nb\nc", "a\nb\nc", 100); len(d) != 0 {
		t.Errorf("identical inputs produced a diff: %v", d)
	}
	d := diffLines("a\nb\nc", "a\nx\nc", 100)
	var gotMinus, gotPlus bool
	for _, l := range d {
		if strings.HasPrefix(l, "-") && strings.Contains(l, "b") {
			gotMinus = true
		}
		if strings.HasPrefix(l, "+") && strings.Contains(l, "x") {
			gotPlus = true
		}
	}
	if !gotMinus || !gotPlus {
		t.Errorf("diff missing -b/+x lines: %v", d)
	}

	// Output cap: a large diff must truncate with a marker, never grow
	// proportionally to attacker-controlled input.
	var a, bld strings.Builder
	for i := 0; i < 500; i++ {
		a.WriteString("left\n")
		bld.WriteString("right\n")
	}
	d = diffLines(a.String(), bld.String(), 10)
	if len(d) > 11 {
		t.Errorf("diff has %d lines, cap was 10(+marker)", len(d))
	}
	if last := d[len(d)-1]; !strings.Contains(last, "more lines") {
		t.Errorf("truncated diff missing marker, last line %q", last)
	}
}
