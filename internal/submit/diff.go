package submit

import (
	"fmt"
	"strings"
)

// diffLines computes a unified-style line diff of two disassemblies
// ("-" lines only in a, "+" only in b, " " common), capped at maxLines of
// output. Inputs are capped too: LCS is quadratic, and a hostile kernel
// controls the disassembly length, so each side is truncated to
// maxDiffInput lines before the DP table is built — worst case the table
// is ~5 MB of uint16s, freed on return.
func diffLines(a, b string, maxLines int) []string {
	if a == b {
		return nil // identical disassemblies: nothing worth echoing
	}
	const maxDiffInput = 1600
	al := splitCap(a, maxDiffInput)
	bl := splitCap(b, maxDiffInput)
	// lcs[i][j] = LCS length of al[i:], bl[j:].
	w := len(bl) + 1
	lcs := make([]uint16, (len(al)+1)*w)
	for i := len(al) - 1; i >= 0; i-- {
		for j := len(bl) - 1; j >= 0; j-- {
			if al[i] == bl[j] {
				lcs[i*w+j] = lcs[(i+1)*w+j+1] + 1
			} else {
				lcs[i*w+j] = max16(lcs[(i+1)*w+j], lcs[i*w+j+1])
			}
		}
	}
	var out []string
	dropped := 0
	emit := func(line string) {
		if len(out) < maxLines {
			out = append(out, line)
		} else {
			dropped++
		}
	}
	i, j := 0, 0
	for i < len(al) && j < len(bl) {
		switch {
		case al[i] == bl[j]:
			emit(" " + al[i])
			i++
			j++
		case lcs[(i+1)*w+j] >= lcs[i*w+j+1]:
			emit("-" + al[i])
			i++
		default:
			emit("+" + bl[j])
			j++
		}
	}
	for ; i < len(al); i++ {
		emit("-" + al[i])
	}
	for ; j < len(bl); j++ {
		emit("+" + bl[j])
	}
	if dropped > 0 {
		out = append(out, fmt.Sprintf("... (%d more lines)", dropped))
	}
	return out
}

func splitCap(s string, n int) []string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) > n {
		lines = lines[:n]
	}
	return lines
}

func max16(a, b uint16) uint16 {
	if a > b {
		return a
	}
	return b
}
