// Package perfmodel converts a dynamic execution trace (internal/sim) into
// kernel time on a modelled device. It is an analytic roofline-plus-latency
// model in the tradition of Hong & Kim: per-class issue cycles, DRAM
// bandwidth demand, and latency exposure divided by the warp-level
// parallelism available to hide it. The model is deliberately simple and
// fully deterministic; its constants live in internal/arch and are
// calibrated once against the paper's achieved-peak measurements (see
// DESIGN.md §4).
package perfmodel

import (
	"fmt"

	"gpucmp/internal/arch"
	"gpucmp/internal/ptx"
	"gpucmp/internal/sim"
)

// Toolchain captures runtime-level (driver) behaviour that differs between
// the CUDA and OpenCL stacks on the same hardware: kernel-launch queueing
// cost and the small memory-pipeline efficiency difference the paper
// measures in Fig. 1 (OpenCL sustained slightly higher bandwidth than CUDA
// on both GPUs).
type Toolchain struct {
	Name string

	// LaunchOverhead is the host-side cost of enqueueing one kernel, added
	// to the device's own dispatch cost. The paper's BFS analysis
	// (Section IV-B4) attributes OpenCL's deficit to this being larger.
	LaunchOverhead float64

	// BWEfficiency scales the device's sustained bandwidth per
	// micro-architecture. Calibrated so Fig. 1 reproduces: OpenCL reads
	// 8.5% faster on GT200 and 2.4% faster on Fermi.
	BWEfficiency map[arch.Microarch]float64

	// HostTransferGBps is the effective PCIe bandwidth for Memcpy.
	// Retained for the toolchain-only TransferTime path; the per-device
	// model (TransferTimeOn) uses arch.Device.Transfer instead.
	HostTransferGBps float64
	// HostTransferLatency is the fixed per-transfer cost the runtime adds
	// host-side (driver call, staging, completion polling).
	HostTransferLatency float64
	// TransferBWFactor derates the device link bandwidth for this runtime
	// (pinned-path quality differs between the CUDA and OpenCL stacks).
	// Zero means 1.0.
	TransferBWFactor float64
}

func (tc *Toolchain) bwFactor(m arch.Microarch) float64 {
	if f, ok := tc.BWEfficiency[m]; ok {
		return f
	}
	return 1
}

// CUDAToolchain returns the CUDA 3.2 runtime model.
func CUDAToolchain() *Toolchain {
	return &Toolchain{
		Name:           "cuda",
		LaunchOverhead: 3e-6, // scaled with the reduced problem sizes (DESIGN.md §4)
		BWEfficiency: map[arch.Microarch]float64{
			arch.GT200: 1 / 1.085, // paper Fig. 1: OpenCL +8.5% on GTX280
			arch.Fermi: 1 / 1.024, // paper Fig. 1: OpenCL +2.4% on GTX480
		},
		HostTransferGBps:    5.2,
		HostTransferLatency: 10e-6,
		TransferBWFactor:    1.0,
	}
}

// OpenCLToolchain returns the OpenCL runtime model (NVIDIA/AMD/IBM
// implementations share the launch path characteristics that matter here).
func OpenCLToolchain() *Toolchain {
	return &Toolchain{
		Name:                "opencl",
		LaunchOverhead:      8.5e-6, // ~2.8x the CUDA queueing cost (Section IV-B4)
		BWEfficiency:        map[arch.Microarch]float64{},
		HostTransferGBps:    5.0,
		HostTransferLatency: 14e-6,
		TransferBWFactor:    0.96, // staged copies through the CL runtime
	}
}

// ToolchainFor maps a toolchain tag ("cuda"/"opencl") to its model.
func ToolchainFor(name string) *Toolchain {
	if name == "cuda" {
		return CUDAToolchain()
	}
	return OpenCLToolchain()
}

// Breakdown is the timing decomposition of one kernel launch.
type Breakdown struct {
	Launch  float64 // dispatch and queueing
	Issue   float64 // instruction-issue bound
	Memory  float64 // DRAM-bandwidth bound
	Latency float64 // exposed memory latency after warp-level hiding
	Total   float64
}

// String formats the breakdown in microseconds.
func (b Breakdown) String() string {
	return fmt.Sprintf("total %.1fus (launch %.1f, issue %.1f, mem %.1f, lat %.1f)",
		b.Total*1e6, b.Launch*1e6, b.Issue*1e6, b.Memory*1e6, b.Latency*1e6)
}

type issueBucket int

const (
	bALU issueBucket = iota
	bMul
	bDiv
	bMem
	bBar
	bBra
)

func bucketOf(op ptx.Opcode) issueBucket {
	switch op {
	case ptx.OpMul, ptx.OpMad, ptx.OpFma:
		return bMul
	case ptx.OpDiv, ptx.OpRem, ptx.OpSqrt, ptx.OpRsqrt, ptx.OpSin, ptx.OpCos, ptx.OpEx2, ptx.OpLg2:
		return bDiv
	case ptx.OpLd, ptx.OpSt, ptx.OpTex, ptx.OpAtom:
		return bMem
	case ptx.OpBar:
		return bBar
	case ptx.OpBra, ptx.OpRet:
		return bBra
	default:
		return bALU
	}
}

// KernelTime evaluates the model for one launch trace.
func KernelTime(a *arch.Device, tc *Toolchain, tr *sim.Trace) Breakdown {
	t := a.Timing
	clock := a.CoreClockMHz * 1e6
	cus := float64(a.ComputeUnits)

	// ---- Issue-bound time ----
	var counts [6]float64
	var mulOps, madOps float64
	for key, n := range tr.Dyn.ByOp {
		counts[bucketOf(key.Op)] += float64(n)
		switch key.Op {
		case ptx.OpMul:
			mulOps += float64(n)
		case ptx.OpMad, ptx.OpFma:
			madOps += float64(n)
		}
	}
	issueCycles := counts[bALU]*t.IssueALU +
		counts[bMul]*t.IssueMul +
		counts[bDiv]*t.IssueDiv +
		counts[bMem]*t.IssueMem +
		counts[bBar]*t.IssueBar +
		counts[bBra]*t.IssueBra
	if a.Microarch == arch.GT200 {
		// GT200 dual-issues a MUL on the SFU pipe alongside a MAD, which
		// is where R=3 in Eq. (3) comes from: paired muls are free.
		paired := mulOps
		if madOps < paired {
			paired = madOps
		}
		issueCycles -= paired * t.IssueMul
	}
	// Shared-memory bank serialization occupies the pipeline.
	if extra := tr.Mem.SharedSerial - tr.Mem.SharedAccesses; extra > 0 {
		issueCycles += float64(extra) * t.SharedLatency
	}
	issue := issueCycles / (cus * clock * t.SustainedIssueFraction)

	// ---- Bandwidth-bound time ----
	dramBytes := float64(tr.Mem.DRAMBytes(a.GlobalSegmentSize))
	bw := a.TheoreticalPeakBandwidth() * 1e9 * t.SustainedBWFraction * tc.bwFactor(a.Microarch)
	memory := dramBytes / bw

	// ---- Latency-bound time ----
	stall := float64(tr.Mem.GlobalLoadTrans)*t.GlobalLatency +
		float64(tr.Mem.L1Hits)*t.L1Latency +
		float64(tr.Mem.L2Hits)*t.L2Latency +
		float64(tr.Mem.TexHits)*t.L1Latency +
		float64(tr.Mem.TexTrans)*t.GlobalLatency +
		float64(tr.Mem.ConstSerial)*t.ConstBroadcast +
		float64(tr.Mem.ConstMisses)*t.GlobalLatency +
		float64(tr.Mem.LocalTrans)*t.GlobalLatency +
		float64(tr.Mem.SharedAccesses)*t.SharedLatency
	warpsPerGroup := float64((tr.Block.Count() + tr.WarpWidth - 1) / tr.WarpWidth)
	mlp := t.MemoryParallelism
	if mlp < 1 {
		mlp = 1
	}
	conc := float64(tr.ResidentGroups) * warpsPerGroup * mlp
	if conc < 1 {
		conc = 1
	}
	latency := stall / (cus * clock * conc)

	b := Breakdown{
		Launch:  tc.LaunchOverhead + t.KernelLaunchBase,
		Issue:   issue,
		Memory:  memory,
		Latency: latency,
	}
	bound := issue
	if memory > bound {
		bound = memory
	}
	if latency > bound {
		bound = latency
	}
	b.Total = b.Launch + bound
	return b
}

// TotalTime sums the kernel times of a multi-launch application.
func TotalTime(a *arch.Device, tc *Toolchain, traces []*sim.Trace) float64 {
	sum := 0.0
	for _, tr := range traces {
		sum += KernelTime(a, tc, tr).Total
	}
	return sum
}

// TransferTime models one host<->device copy of n bytes with only the
// toolchain's flat PCIe figure. Kept for callers with no device at hand;
// the runtimes use TransferTimeOn, which is link-aware.
func TransferTime(tc *Toolchain, bytes int64) float64 {
	return tc.HostTransferLatency + float64(bytes)/(tc.HostTransferGBps*1e9)
}

// TransferTimeOn models one host<->device copy of n bytes over a specific
// device's link: the device contributes its PCIe (or cache-copy) bandwidth
// and DMA latency, the toolchain contributes its host-side per-call cost
// and a runtime-quality derating of the link bandwidth.
func TransferTimeOn(a *arch.Device, tc *Toolchain, bytes int64) float64 {
	factor := tc.TransferBWFactor
	if factor <= 0 {
		factor = 1
	}
	bw := a.Transfer.PCIeGBps * 1e9 * factor
	return tc.HostTransferLatency + a.Transfer.LatencyS + float64(bytes)/bw
}
