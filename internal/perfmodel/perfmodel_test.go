package perfmodel

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"gpucmp/internal/arch"
	"gpucmp/internal/ptx"
	"gpucmp/internal/sim"
)

// synthetic trace helpers ---------------------------------------------------

func flopsTrace(dev *arch.Device, warps int64, muls, mads int64) *sim.Trace {
	tr := &sim.Trace{
		Dyn:            ptx.NewStats(),
		Block:          sim.Dim3{X: 256, Y: 1},
		WarpWidth:      dev.SIMDWidth,
		Warps:          warps,
		ResidentGroups: 4,
	}
	mul := ptx.NewInstruction(ptx.OpMul)
	mad := ptx.NewInstruction(ptx.OpMad)
	tr.Dyn.Count(&mul, muls*warps)
	tr.Dyn.Count(&mad, mads*warps)
	return tr
}

func bwTrace(dev *arch.Device, loadTrans int64) *sim.Trace {
	tr := &sim.Trace{
		Dyn:            ptx.NewStats(),
		Block:          sim.Dim3{X: 256, Y: 1},
		WarpWidth:      dev.SIMDWidth,
		Warps:          loadTrans,
		ResidentGroups: 8,
	}
	ld := ptx.NewInstruction(ptx.OpLd)
	ld.Space = ptx.SpaceGlobal
	tr.Dyn.Count(&ld, loadTrans)
	tr.Mem.GlobalLoadTrans = loadTrans
	return tr
}

// TestAchievedPeakFLOPSFractions reproduces the calibration targets of
// Fig. 2: the MaxFlops kernel sustains ~71.5% of TP on GTX280 (interleaved
// mul+mad) and ~97.7% on GTX480 (mad only).
func TestAchievedPeakFLOPSFractions(t *testing.T) {
	tc := CUDAToolchain()

	g280 := arch.GTX280()
	// Interleaved mul+mad: equal counts; flops = warps*(32*1 + 32*2) per pair.
	const per = 10000
	tr := flopsTrace(g280, 64, per, per)
	b := KernelTime(g280, tc, tr)
	flops := float64(64*per) * 32 * (1 + 2)
	achieved := flops / (b.Total - b.Launch) / 1e9
	frac := achieved / g280.TheoreticalPeakFLOPS()
	if math.Abs(frac-0.715) > 0.02 {
		t.Errorf("GTX280 achieved fraction = %.3f, want ~0.715", frac)
	}

	g480 := arch.GTX480()
	tr = flopsTrace(g480, 64, 0, per)
	b = KernelTime(g480, tc, tr)
	flops = float64(64*per) * 32 * 2
	achieved = flops / (b.Total - b.Launch) / 1e9
	frac = achieved / g480.TheoreticalPeakFLOPS()
	if math.Abs(frac-0.977) > 0.02 {
		t.Errorf("GTX480 achieved fraction = %.3f, want ~0.977", frac)
	}
}

// TestAchievedBandwidthFractions reproduces Fig. 1: OpenCL sustains 68.6%
// and 87.7% of TP_BW, and beats CUDA by 8.5% / 2.4%.
func TestAchievedBandwidthFractions(t *testing.T) {
	for _, tt := range []struct {
		dev      *arch.Device
		wantFrac float64
		wantGap  float64 // OpenCL advantage over CUDA
	}{
		{arch.GTX280(), 0.686, 1.085},
		{arch.GTX480(), 0.877, 1.024},
	} {
		const trans = 4_000_000
		tr := bwTrace(tt.dev, trans)
		bytes := float64(trans) * float64(tt.dev.GlobalSegmentSize)

		bCL := KernelTime(tt.dev, OpenCLToolchain(), tr)
		clBW := bytes / (bCL.Total - bCL.Launch) / 1e9
		frac := clBW / tt.dev.TheoreticalPeakBandwidth()
		if math.Abs(frac-tt.wantFrac) > 0.02 {
			t.Errorf("%s: OpenCL BW fraction = %.3f, want ~%.3f", tt.dev.Name, frac, tt.wantFrac)
		}

		bCU := KernelTime(tt.dev, CUDAToolchain(), tr)
		cuBW := bytes / (bCU.Total - bCU.Launch) / 1e9
		gap := clBW / cuBW
		if math.Abs(gap-tt.wantGap) > 0.01 {
			t.Errorf("%s: OpenCL/CUDA BW ratio = %.3f, want ~%.3f", tt.dev.Name, gap, tt.wantGap)
		}
	}
}

// TestLaunchOverheadOrdering: OpenCL launches cost more than CUDA launches
// (the BFS analysis of Section IV-B4).
func TestLaunchOverheadOrdering(t *testing.T) {
	dev := arch.GTX280()
	tr := flopsTrace(dev, 1, 1, 1)
	cu := KernelTime(dev, CUDAToolchain(), tr)
	cl := KernelTime(dev, OpenCLToolchain(), tr)
	if cl.Launch <= cu.Launch {
		t.Errorf("OpenCL launch (%g) should exceed CUDA launch (%g)", cl.Launch, cu.Launch)
	}
}

// TestDualIssueOnlyGT200: the mul+mad pairing must not apply on Fermi.
func TestDualIssueOnlyGT200(t *testing.T) {
	tc := CUDAToolchain()
	g480 := arch.GTX480()
	interleaved := KernelTime(g480, tc, flopsTrace(g480, 64, 1000, 1000))
	madOnly := KernelTime(g480, tc, flopsTrace(g480, 64, 0, 2000))
	if interleaved.Issue < madOnly.Issue*0.99 {
		t.Errorf("Fermi should not co-issue mul+mad: interleaved %g < madonly %g",
			interleaved.Issue, madOnly.Issue)
	}
	g280 := arch.GTX280()
	inter280 := KernelTime(g280, tc, flopsTrace(g280, 64, 1000, 1000))
	madOnly280 := KernelTime(g280, tc, flopsTrace(g280, 64, 0, 2000))
	if inter280.Issue >= madOnly280.Issue {
		t.Errorf("GT200 mul+mad pairs should issue faster: %g vs %g",
			inter280.Issue, madOnly280.Issue)
	}
}

// TestLatencyHiding: more resident warps hide more latency.
func TestLatencyHiding(t *testing.T) {
	dev := arch.GTX280()
	tc := CUDAToolchain()
	tr := bwTrace(dev, 100000)
	tr.ResidentGroups = 8
	hi := KernelTime(dev, tc, tr)
	tr.ResidentGroups = 1
	lo := KernelTime(dev, tc, tr)
	if lo.Latency <= hi.Latency {
		t.Errorf("lower occupancy must expose more latency: %g vs %g", lo.Latency, hi.Latency)
	}
}

// TestBankConflictSerializationCosts: extra shared serialization raises the
// issue component.
func TestBankConflictSerialization(t *testing.T) {
	dev := arch.GTX280()
	tc := CUDAToolchain()
	tr := flopsTrace(dev, 64, 100, 100)
	base := KernelTime(dev, tc, tr).Issue
	tr.Mem.SharedAccesses = 1000
	tr.Mem.SharedSerial = 16000 // 16-way conflicts
	conflicted := KernelTime(dev, tc, tr).Issue
	if conflicted <= base {
		t.Errorf("bank conflicts should cost issue cycles: %g vs %g", conflicted, base)
	}
}

// TestTransferTime sanity.
func TestTransferTime(t *testing.T) {
	tc := CUDAToolchain()
	small := TransferTime(tc, 4)
	big := TransferTime(tc, 1<<30)
	if small <= 0 || big <= small {
		t.Errorf("transfer times implausible: %g, %g", small, big)
	}
	wantBig := float64(1<<30)/(tc.HostTransferGBps*1e9) + tc.HostTransferLatency
	if math.Abs(big-wantBig) > 1e-9 {
		t.Errorf("big transfer = %g, want %g", big, wantBig)
	}
}

// TestTransferTimeOn checks the per-device link model: device bandwidth and
// DMA latency plus toolchain host-side cost, with the OpenCL derating.
func TestTransferTimeOn(t *testing.T) {
	gpu, cpu := arch.GTX480(), arch.Intel920()
	cuda, ocl := CUDAToolchain(), OpenCLToolchain()

	want := cuda.HostTransferLatency + gpu.Transfer.LatencyS +
		float64(1<<20)/(gpu.Transfer.PCIeGBps*1e9)
	if got := TransferTimeOn(gpu, cuda, 1<<20); math.Abs(got-want) > 1e-12 {
		t.Errorf("TransferTimeOn(GTX480, cuda, 1MiB) = %g, want %g", got, want)
	}

	// OpenCL's staged copies must never beat CUDA on the same link.
	if TransferTimeOn(gpu, ocl, 1<<20) <= TransferTimeOn(gpu, cuda, 1<<20) {
		t.Error("OpenCL transfer should be slower than CUDA on the same device")
	}

	// The host-resident CPU device must move large buffers faster than any
	// PCIe-attached GPU under the same toolchain.
	if TransferTimeOn(cpu, ocl, 1<<26) >= TransferTimeOn(gpu, ocl, 1<<26) {
		t.Error("CPU cache-copy should beat PCIe for large buffers")
	}

	// A zero TransferBWFactor must behave as 1.0, not divide by zero.
	bare := &Toolchain{Name: "bare"}
	if v := TransferTimeOn(gpu, bare, 1 << 20); math.IsInf(v, 0) || math.IsNaN(v) || v <= 0 {
		t.Errorf("zero TransferBWFactor mishandled: %g", v)
	}
}

// TestTotalTimeSums.
func TestTotalTimeSums(t *testing.T) {
	dev := arch.GTX280()
	tc := CUDAToolchain()
	tr := flopsTrace(dev, 64, 100, 100)
	one := KernelTime(dev, tc, tr).Total
	sum := TotalTime(dev, tc, []*sim.Trace{tr, tr, tr})
	if math.Abs(sum-3*one) > 1e-12 {
		t.Errorf("TotalTime = %g, want %g", sum, 3*one)
	}
}

// TestToolchainFor.
func TestToolchainFor(t *testing.T) {
	if ToolchainFor("cuda").Name != "cuda" || ToolchainFor("opencl").Name != "opencl" {
		t.Error("ToolchainFor mapping wrong")
	}
}

// TestBreakdownInvariant: Total = Launch + max(Issue, Memory, Latency) for
// arbitrary traces.
func TestBreakdownInvariant(t *testing.T) {
	f := func(loads, muls uint16, rg uint8) bool {
		dev := arch.GTX280()
		tr := bwTrace(dev, int64(loads)+1)
		mul := ptx.NewInstruction(ptx.OpMul)
		tr.Dyn.Count(&mul, int64(muls))
		tr.ResidentGroups = int(rg%8) + 1
		b := KernelTime(dev, CUDAToolchain(), tr)
		bound := math.Max(b.Issue, math.Max(b.Memory, b.Latency))
		return math.Abs(b.Total-(b.Launch+bound)) < 1e-15 &&
			b.Issue >= 0 && b.Memory >= 0 && b.Latency >= 0 && b.Launch > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestMemoryMonotonicity: more DRAM transactions never make the kernel
// faster.
func TestMemoryMonotonicity(t *testing.T) {
	dev := arch.GTX480()
	tc := OpenCLToolchain()
	prev := 0.0
	for _, trans := range []int64{1000, 10000, 100000, 1000000} {
		b := KernelTime(dev, tc, bwTrace(dev, trans))
		if b.Total < prev {
			t.Fatalf("time decreased with more transactions: %g after %g", b.Total, prev)
		}
		prev = b.Total
	}
}

// TestBreakdownString formats.
func TestBreakdownString(t *testing.T) {
	b := Breakdown{Launch: 1e-6, Issue: 2e-6, Memory: 3e-6, Latency: 4e-6, Total: 5e-6}
	s := b.String()
	for _, want := range []string{"total", "launch", "issue", "mem", "lat"} {
		if !strings.Contains(s, want) {
			t.Errorf("breakdown string missing %q: %s", want, s)
		}
	}
}

// TestBWFactorDefault: unknown microarchitectures get factor 1.
func TestBWFactorDefault(t *testing.T) {
	tc := OpenCLToolchain()
	if tc.bwFactor(arch.CellSPU) != 1 {
		t.Error("missing microarch should default to factor 1")
	}
	cu := CUDAToolchain()
	if cu.bwFactor(arch.GT200) >= 1 || cu.bwFactor(arch.Fermi) >= 1 {
		t.Error("CUDA bandwidth factors must be below 1 on the NVIDIA parts")
	}
}
