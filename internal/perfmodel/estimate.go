package perfmodel

import (
	"gpucmp/internal/arch"
)

// estimateBytesPerElement is the rough memory traffic per element assumed
// for element-rate metrics (MElements/sec, MPixels/sec): one word read and
// one word written.
const estimateBytesPerElement = 8.0

// Estimate returns a trace-free analytical estimate of a benchmark's
// reported metric on a device: the sustained roofline rate for the
// metric's family, derated by the same calibrated fractions the full model
// uses. It is the graceful-degradation fallback the server serves (marked
// Degraded) when the simulation path is unavailable — a breaker is open or
// the job keeps hitting the watchdog — so it trades per-benchmark accuracy
// for availability.
//
// ok is false for metrics that cannot be estimated without a problem size
// (the time-valued "sec" benchmarks): callers should fall through to the
// next rung of the degradation ladder.
func Estimate(a *arch.Device, tc *Toolchain, metric string) (value float64, ok bool) {
	t := a.Timing
	sustainedBW := a.TheoreticalPeakBandwidth() * t.SustainedBWFraction * tc.bwFactor(a.Microarch)
	switch metric {
	case "GFlops/sec":
		return a.TheoreticalPeakFLOPS() * t.SustainedIssueFraction, true
	case "GB/sec":
		return sustainedBW, true
	case "MElements/sec", "MPixels/sec":
		// Assume a streaming, bandwidth-bound kernel.
		return sustainedBW * 1e9 / estimateBytesPerElement / 1e6, true
	default:
		// Time-valued metrics depend on the problem size, which an
		// analytical estimate has no access to.
		return 0, false
	}
}
