package perfmodel

import (
	"gpucmp/internal/arch"
	"gpucmp/internal/pattern"
)

// PatternPrior scores a pattern schedule on a device — higher means
// predicted faster. It is a search-ordering heuristic, not a performance
// claim: the tuner measures every candidate it keeps, the prior only
// decides evaluation order (so a budgeted search tries the likely winners
// first) and breaks ties deterministically. The terms mirror the roofline
// model's structure: occupancy from block geometry, DRAM round trips from
// fusion, instruction count from the per-kind rewrite rules.
func PatternPrior(a *arch.Device, kind pattern.Kind, s pattern.Schedule) float64 {
	score := 0.0
	// Blocks that are a whole number of hardware SIMD groups waste no
	// lanes; on a 64-wide wavefront device a 32-thread block runs half
	// empty.
	if s.BlockX >= a.SIMDWidth && s.BlockX%a.SIMDWidth == 0 {
		score += 2
	}
	// Bigger blocks hide more latency, up to the occupancy knee.
	b := s.BlockX
	if b > 256 {
		b = 256
	}
	score += float64(b) / 256
	// Fusion removes a full DRAM round trip per fused stage.
	if s.Fuse {
		score += 2
	}
	switch kind {
	case pattern.KindReduce:
		// log2(B) tree rounds beat a B-step serial fold.
		if s.TreeReduce {
			score += 2
		}
	case pattern.KindMatMul:
		// The shared-memory tile turns 2n global loads per output into
		// 2n/B.
		if s.Tile {
			score += 3
		}
	case pattern.KindStencil2D:
		// The broadcast constant cache serves the coefficient table for
		// free — on devices that have one (the Fig. 8 effect).
		if s.ConstCoeff && a.HasConstantCache {
			score++
		}
	}
	if s.Unroll > 0 {
		score += 0.25
	}
	if s.Coarsen > 1 {
		score += 0.1
	}
	return score
}
