package cluster

import (
	"fmt"
	"sync"
	"testing"
)

func keys(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("job|%d|scale=%d", i, i%7)
	}
	return out
}

// TestRingBalance: with virtual nodes, the key distribution over members
// stays within a reasonable band of perfectly even.
func TestRingBalance(t *testing.T) {
	r := NewRing(DefaultVirtualNodes)
	members := []string{"http://w1", "http://w2", "http://w3", "http://w4"}
	for _, m := range members {
		r.Add(m)
	}
	counts := make(map[string]int)
	const n = 20000
	for _, k := range keys(n) {
		counts[r.Lookup(k)]++
	}
	want := n / len(members)
	for _, m := range members {
		got := counts[m]
		if got < want*6/10 || got > want*15/10 {
			t.Errorf("member %s owns %d keys, want within [%d,%d] of even %d",
				m, got, want*6/10, want*15/10, want)
		}
	}
}

// TestRingMinimalRemapping: removing one of N members must move only
// that member's keys (~1/N of them); every other key keeps its shard.
// Re-adding it must restore the original routing exactly.
func TestRingMinimalRemapping(t *testing.T) {
	r := NewRing(DefaultVirtualNodes)
	members := []string{"http://w1", "http://w2", "http://w3", "http://w4"}
	for _, m := range members {
		r.Add(m)
	}
	ks := keys(20000)
	before := make(map[string]string, len(ks))
	for _, k := range ks {
		before[k] = r.Lookup(k)
	}

	const gone = "http://w3"
	r.Remove(gone)
	moved := 0
	for _, k := range ks {
		now := r.Lookup(k)
		if now == gone {
			t.Fatalf("key %q still routes to removed member", k)
		}
		if before[k] != gone && now != before[k] {
			t.Errorf("key %q moved %s -> %s though its shard never left", k, before[k], now)
		}
		if now != before[k] {
			moved++
		}
	}
	// Only the removed member's arcs remap: about 1/4 of keys, never more
	// than ~40% even with hash noise.
	if moved > len(ks)*4/10 {
		t.Errorf("%d/%d keys moved on single-member removal, want ~1/4", moved, len(ks))
	}

	r.Add(gone)
	for _, k := range ks {
		if got := r.Lookup(k); got != before[k] {
			t.Errorf("after rejoin, key %q routes to %s, want original %s", k, got, before[k])
		}
	}
}

// TestRingInsertionOrderIndependence: the same member set must route
// identically no matter what order members joined (or churned) in.
func TestRingInsertionOrderIndependence(t *testing.T) {
	members := []string{"http://w1", "http://w2", "http://w3", "http://w4", "http://w5"}
	a := NewRing(64)
	for _, m := range members {
		a.Add(m)
	}
	b := NewRing(64)
	for i := len(members) - 1; i >= 0; i-- {
		b.Add(members[i])
	}
	// c reaches the same membership through churn.
	c := NewRing(64)
	c.Add("http://w5")
	c.Add("http://w2")
	c.Add("http://w9")
	c.Add("http://w1")
	c.Remove("http://w9")
	c.Add("http://w3")
	c.Add("http://w4")
	for _, k := range keys(5000) {
		if a.Lookup(k) != b.Lookup(k) || a.Lookup(k) != c.Lookup(k) {
			t.Fatalf("key %q routes differently across identical member sets: %s / %s / %s",
				k, a.Lookup(k), b.Lookup(k), c.Lookup(k))
		}
	}
}

// TestRingLookupN: the preference list is distinct, starts at the owner,
// and is capped by membership.
func TestRingLookupN(t *testing.T) {
	r := NewRing(32)
	for _, m := range []string{"a", "b", "c"} {
		r.Add(m)
	}
	for _, k := range keys(200) {
		got := r.LookupN(k, 3)
		if len(got) != 3 {
			t.Fatalf("LookupN(%q, 3) = %v, want 3 distinct members", k, got)
		}
		if got[0] != r.Lookup(k) {
			t.Fatalf("LookupN first = %s, Lookup = %s", got[0], r.Lookup(k))
		}
		seen := map[string]bool{}
		for _, m := range got {
			if seen[m] {
				t.Fatalf("LookupN(%q) repeats %s: %v", k, m, got)
			}
			seen[m] = true
		}
	}
	if got := r.LookupN("x", 10); len(got) != 3 {
		t.Errorf("LookupN capped = %v, want all 3 members", got)
	}
	if got := NewRing(8).LookupN("x", 2); got != nil {
		t.Errorf("empty ring LookupN = %v, want nil", got)
	}
}

// TestRingConcurrentMembership: lookups racing with membership churn
// (run under -race) never return an empty owner while members exist, and
// routing is deterministic once churn settles.
func TestRingConcurrentMembership(t *testing.T) {
	r := NewRing(32)
	stable := []string{"http://w1", "http://w2"}
	for _, m := range stable {
		r.Add(m)
	}
	churn := []string{"http://w3", "http://w4", "http://w5"}

	var lookups, churners sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 4; i++ {
		lookups.Add(1)
		go func(i int) {
			defer lookups.Done()
			ks := keys(500)
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, k := range ks {
					if r.Lookup(k) == "" {
						t.Error("Lookup returned empty owner on a non-empty ring")
						return
					}
				}
			}
		}(i)
	}
	for i := 0; i < 2; i++ {
		churners.Add(1)
		go func(i int) {
			defer churners.Done()
			for round := 0; round < 50; round++ {
				m := churn[(round+i)%len(churn)]
				r.Add(m)
				r.Remove(m)
			}
		}(i)
	}
	churners.Wait()
	close(stop)
	lookups.Wait()

	// Churn settled with churn members removed: routing must match a
	// fresh ring of the stable set.
	fresh := NewRing(32)
	for _, m := range stable {
		fresh.Add(m)
	}
	for _, k := range keys(2000) {
		if got, want := r.Lookup(k), fresh.Lookup(k); got != want {
			t.Fatalf("post-churn routing diverged for %q: %s != %s", k, got, want)
		}
	}
}
