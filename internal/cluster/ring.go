// Package cluster is the multi-node serving layer over gpucmpd: a
// coordinator process owns admission control (per-tenant quotas, load
// shedding) and routes jobs by their sched content key over a
// consistent-hash ring to N worker gpucmpd processes, with per-shard
// circuit breakers, transparent failover, and request hedging against
// slow shards. Because routing is by content key, each key lands on one
// shard, whose local scheduler deduplicates and caches it — route-then-
// dedup gives cross-node singleflight without any shared state between
// workers.
package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
)

// DefaultVirtualNodes is how many points each member contributes to the
// ring. More virtual nodes flatten the key distribution (the per-shard
// load imbalance shrinks roughly with 1/sqrt(vnodes)) at the cost of a
// larger sorted array; 128 keeps worst-case imbalance under ~15% for
// small fleets while lookups stay a cheap binary search.
const DefaultVirtualNodes = 128

// Ring is a consistent-hash ring with virtual nodes. Keys map to the
// first virtual node clockwise from the key's hash; when a member joins
// or leaves, only the keys in the arcs it gains or loses move — about
// K/N of them — while every other key keeps its shard, which is what
// keeps worker-local caches warm across membership changes.
//
// Ring is safe for concurrent use. Lookups are deterministic: two rings
// holding the same member set route every key identically, regardless of
// the order the members were added in.
type Ring struct {
	vnodes int

	mu      sync.RWMutex
	hashes  []uint64          // sorted virtual-node positions
	owner   map[uint64]string // position -> member
	members map[string]bool
}

// NewRing builds an empty ring. vnodes <= 0 selects DefaultVirtualNodes.
func NewRing(vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVirtualNodes
	}
	return &Ring{
		vnodes:  vnodes,
		owner:   make(map[uint64]string),
		members: make(map[string]bool),
	}
}

// hash64 is the ring's position function: fnv64a mixed through a
// splitmix64 finaliser, matching the stateless-hash idiom the fault
// injector and workload generators use.
func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	x := h.Sum64()
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Add inserts a member (idempotent). Positions that collide with an
// existing member's virtual node resolve to the lexicographically
// smaller member name, so the outcome is independent of insertion order.
func (r *Ring) Add(member string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.members[member] {
		return
	}
	r.members[member] = true
	for i := 0; i < r.vnodes; i++ {
		p := hash64(fmt.Sprintf("%s#%d", member, i))
		if cur, ok := r.owner[p]; ok {
			if member >= cur {
				continue
			}
		} else {
			r.hashes = append(r.hashes, p)
		}
		r.owner[p] = member
	}
	sort.Slice(r.hashes, func(i, j int) bool { return r.hashes[i] < r.hashes[j] })
}

// Remove deletes a member (idempotent). The removed member's arcs fall
// to their clockwise successors; every other key keeps its shard.
func (r *Ring) Remove(member string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.members[member] {
		return
	}
	delete(r.members, member)
	// Rebuild the position set from the surviving members: collision
	// slots the removed member shadowed fall back to their other owner.
	r.hashes = r.hashes[:0]
	for p := range r.owner {
		delete(r.owner, p)
	}
	for m := range r.members {
		for i := 0; i < r.vnodes; i++ {
			p := hash64(fmt.Sprintf("%s#%d", m, i))
			if cur, ok := r.owner[p]; ok && m >= cur {
				continue
			} else if !ok {
				r.hashes = append(r.hashes, p)
			}
			r.owner[p] = m
		}
	}
	sort.Slice(r.hashes, func(i, j int) bool { return r.hashes[i] < r.hashes[j] })
}

// Contains reports whether member is on the ring.
func (r *Ring) Contains(member string) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.members[member]
}

// Members returns the current member set, sorted.
func (r *Ring) Members() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.members))
	for m := range r.members {
		out = append(out, m)
	}
	sort.Strings(out)
	return out
}

// Len returns the member count.
func (r *Ring) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.members)
}

// Lookup returns the member owning key, or "" when the ring is empty.
func (r *Ring) Lookup(key string) string {
	if owners := r.LookupN(key, 1); len(owners) > 0 {
		return owners[0]
	}
	return ""
}

// LookupN returns up to n distinct members in clockwise preference order
// from the key's position: the first is the key's owner, the rest are
// the failover/hedge targets. The order is deterministic per key and
// stable under membership of other arcs.
func (r *Ring) LookupN(key string, n int) []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.hashes) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.members) {
		n = len(r.members)
	}
	pos := hash64(key)
	i := sort.Search(len(r.hashes), func(i int) bool { return r.hashes[i] >= pos })
	out := make([]string, 0, n)
	seen := make(map[string]bool, n)
	for walked := 0; walked < len(r.hashes) && len(out) < n; walked++ {
		m := r.owner[r.hashes[(i+walked)%len(r.hashes)]]
		if !seen[m] {
			seen[m] = true
			out = append(out, m)
		}
	}
	return out
}
