package cluster

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"gpucmp/internal/fault"
	"gpucmp/internal/sched"
	"gpucmp/internal/server"
)

// startWorker spins up a real gpucmpd worker (scheduler + HTTP server)
// with an optional fault injector.
func startWorker(t *testing.T, inj *fault.Injector) (*httptest.Server, *server.Server) {
	t.Helper()
	s := sched.New(sched.Options{Workers: 4, Injector: inj})
	t.Cleanup(s.Close)
	srv := server.New(s, server.WithFigureScale(64))
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts, srv
}

func startCoordinator(t *testing.T, cfg Config) (*httptest.Server, *Coordinator) {
	t.Helper()
	c := New(cfg)
	c.Start()
	t.Cleanup(c.Close)
	ts := httptest.NewServer(c.Handler())
	t.Cleanup(ts.Close)
	return ts, c
}

func runBody(benchmark string, scale int) string {
	return fmt.Sprintf(`{"benchmark":%q,"device":"GeForce GTX480","toolchain":"opencl","config":{"scale":%d}}`, benchmark, scale)
}

// post fires one request and returns status, body, and the X-Shard
// header.
func post(t *testing.T, url, body string) (int, []byte, string) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, b, resp.Header.Get("X-Shard")
}

// typedRefusal reports whether a non-2xx response carries a machine code
// — the fleet contract that no refusal is ever an untyped 5xx.
func typedRefusal(body []byte) bool {
	var e struct {
		Code string `json:"code"`
	}
	return json.Unmarshal(body, &e) == nil && e.Code != ""
}

// TestClusterFaultTolerance is the headline chaos test (run under
// -race): a 3-worker fleet with one pathologically slow shard and one
// worker killed mid-run must serve every request without a single
// untyped 5xx — hedging beats the slow shard, failover absorbs the dead
// one, and the probe loop evicts it from the ring.
func TestClusterFaultTolerance(t *testing.T) {
	// Worker 0 stalls every kernel launch 400ms; hedging (capped at
	// 60ms) must beat it by racing the next shard on the ring.
	slowInj := fault.New(7, fault.Schedule{SlowRate: 1.0, SlowDelay: 400 * time.Millisecond})
	slow, _ := startWorker(t, slowInj)
	ok1, _ := startWorker(t, nil)
	ok2, _ := startWorker(t, nil)

	cts, coord := startCoordinator(t, Config{
		Workers:       []string{slow.URL, ok1.URL, ok2.URL},
		HedgeMinDelay: 20 * time.Millisecond,
		HedgeMaxDelay: 60 * time.Millisecond,
		ProbeInterval: 50 * time.Millisecond,
	})

	barrage := func(phase string, n, scaleBase int) {
		t.Helper()
		var wg sync.WaitGroup
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				bench := []string{"Reduce", "Scan", "Sobel", "TranP"}[i%4]
				status, body, _ := post(t, cts.URL+"/run", runBody(bench, scaleBase+8*(i%6)))
				if status != http.StatusOK {
					if status >= 500 && !typedRefusal(body) {
						t.Errorf("%s: untyped %d: %s", phase, status, body)
					} else {
						t.Errorf("%s: status %d (want 200 with 2 healthy shards): %s", phase, status, body)
					}
				}
			}(i)
		}
		wg.Wait()
	}

	barrage("slow-shard phase", 40, 16)
	snap := coord.Metrics()
	if snap.Hedges == 0 {
		t.Error("no hedges fired against a shard stalling every launch 400ms")
	}
	if snap.HedgeWins == 0 {
		t.Error("no hedge ever won against a 400ms-stalled shard")
	}

	// Kill a healthy worker with zero notice: in-flight routing must fail
	// over on the transport error, and the probe loop must evict it.
	ok1.Close()
	barrage("dead-worker phase", 40, 64)
	if snap = coord.Metrics(); snap.Failovers == 0 {
		t.Error("no failovers after killing a worker")
	}

	deadline := time.Now().Add(3 * time.Second)
	for coord.Ring().Len() != 2 {
		if time.Now().After(deadline) {
			t.Fatalf("probe loop never evicted the dead worker: ring = %v", coord.Ring().Members())
		}
		time.Sleep(25 * time.Millisecond)
	}
	barrage("post-eviction phase", 20, 128)
}

// TestClusterRoutingIsSticky: the same content key always lands on the
// same shard (so worker caches stay hot), and the repeat is served from
// that shard's cache.
func TestClusterRoutingIsSticky(t *testing.T) {
	w1, _ := startWorker(t, nil)
	w2, _ := startWorker(t, nil)
	w3, _ := startWorker(t, nil)
	cts, _ := startCoordinator(t, Config{
		Workers:       []string{w1.URL, w2.URL, w3.URL},
		ProbeInterval: -1, // static membership: this test is about routing
		HedgeDisabled: true,
	})

	body := runBody("Reduce", 32)
	_, _, firstShard := post(t, cts.URL+"/run", body)
	if firstShard == "" {
		t.Fatal("response missing X-Shard")
	}
	for i := 0; i < 5; i++ {
		status, respBody, shard := post(t, cts.URL+"/run", body)
		if status != http.StatusOK {
			t.Fatalf("repeat %d: status %d: %s", i, status, respBody)
		}
		if shard != firstShard {
			t.Fatalf("repeat %d routed to %s, first went to %s", i, shard, firstShard)
		}
		var out struct {
			Served string `json:"served"`
		}
		if err := json.Unmarshal(respBody, &out); err != nil {
			t.Fatal(err)
		}
		if i > 0 && out.Served != "hit" {
			t.Errorf("repeat %d served=%q, want cache hit on the owning shard", i, out.Served)
		}
	}
}

// TestClusterDedupJoinsConcurrentIdentical: identical concurrent
// requests share one upstream call (coordinator singleflight) on top of
// the owning worker's own dedup.
func TestClusterDedupJoinsConcurrentIdentical(t *testing.T) {
	// Stall launches so the identical requests genuinely overlap.
	inj := fault.New(3, fault.Schedule{SlowRate: 1.0, SlowDelay: 150 * time.Millisecond})
	w, _ := startWorker(t, inj)
	cts, coord := startCoordinator(t, Config{
		Workers:       []string{w.URL},
		ProbeInterval: -1,
		HedgeDisabled: true,
	})

	body := runBody("Scan", 48)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if status, b, _ := post(t, cts.URL+"/run", body); status != http.StatusOK {
				t.Errorf("status %d: %s", status, b)
			}
		}()
	}
	wg.Wait()
	if snap := coord.Metrics(); snap.DedupJoined == 0 {
		t.Error("8 identical concurrent requests never joined an in-flight proxy call")
	}
}

// TestClusterShedsTyped: above MaxInFlight the coordinator refuses with
// 503 + Retry-After and a machine-readable code — never a hang, never an
// untyped error.
func TestClusterShedsTyped(t *testing.T) {
	inj := fault.New(5, fault.Schedule{SlowRate: 1.0, SlowDelay: 300 * time.Millisecond})
	w, _ := startWorker(t, inj)
	cts, coord := startCoordinator(t, Config{
		Workers:       []string{w.URL},
		MaxInFlight:   1,
		ProbeInterval: -1,
		HedgeDisabled: true,
	})

	var mu sync.Mutex
	var shed, served int
	var wg sync.WaitGroup
	for i := 0; i < 10; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(cts.URL+"/run", "application/json",
				strings.NewReader(runBody("Sobel", 32+i))) // distinct keys: no dedup escape hatch
			if err != nil {
				t.Errorf("transport error: %v", err)
				return
			}
			defer resp.Body.Close()
			b, _ := io.ReadAll(resp.Body)
			mu.Lock()
			defer mu.Unlock()
			switch {
			case resp.StatusCode == http.StatusOK:
				served++
			case resp.StatusCode == http.StatusServiceUnavailable && typedRefusal(b):
				if resp.Header.Get("Retry-After") == "" {
					t.Error("shed response missing Retry-After")
				}
				shed++
			default:
				t.Errorf("status %d body %s, want 200 or typed 503", resp.StatusCode, b)
			}
		}(i)
	}
	wg.Wait()
	if shed == 0 {
		t.Errorf("10 concurrent requests against MaxInFlight=1 shed none (served %d)", served)
	}
	if served == 0 {
		t.Error("shedding refused everything; at least one request must be admitted")
	}
	if snap := coord.Metrics(); snap.Shed == 0 {
		t.Error("shed counter not incremented")
	}
}

// TestClusterTenantQuota: the admission quota refuses over-rate tenants
// with 429 + Retry-After while other tenants keep flowing.
func TestClusterTenantQuota(t *testing.T) {
	w, _ := startWorker(t, nil)
	cts, coord := startCoordinator(t, Config{
		Workers:       []string{w.URL},
		Quota:         sched.QuotaConfig{Rate: 0.001, Burst: 1},
		ProbeInterval: -1,
		HedgeDisabled: true,
	})

	do := func(tenant string) (int, []byte) {
		req, _ := http.NewRequest(http.MethodPost, cts.URL+"/run", strings.NewReader(runBody("Reduce", 32)))
		req.Header.Set("X-Tenant", tenant)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		if resp.StatusCode == http.StatusTooManyRequests && resp.Header.Get("Retry-After") == "" {
			t.Error("429 missing Retry-After")
		}
		return resp.StatusCode, b
	}

	if status, b := do("alice"); status != http.StatusOK {
		t.Fatalf("first request: %d %s", status, b)
	}
	if status, b := do("alice"); status != http.StatusTooManyRequests || !typedRefusal(b) {
		t.Fatalf("second request: %d %s, want typed 429", status, b)
	}
	if status, b := do("bob"); status != http.StatusOK {
		t.Fatalf("other tenant collateral damage: %d %s", status, b)
	}
	if snap := coord.Metrics(); snap.QuotaDenied == 0 {
		t.Error("quota_denied counter not incremented")
	}
}

// TestCoordinatorDrain: SetReady flips /healthz/ready and new requests
// are refused typed while draining.
func TestCoordinatorDrain(t *testing.T) {
	w, _ := startWorker(t, nil)
	cts, coord := startCoordinator(t, Config{Workers: []string{w.URL}, ProbeInterval: -1})

	resp, err := http.Get(cts.URL + "/healthz/ready")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ready before drain = %d", resp.StatusCode)
	}

	coord.SetReady(false)
	resp, err = http.Get(cts.URL + "/healthz/ready")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("ready during drain = %d, want 503", resp.StatusCode)
	}

	status, b, _ := post(t, cts.URL+"/run", runBody("Reduce", 32))
	if status != http.StatusServiceUnavailable || !typedRefusal(b) {
		t.Fatalf("draining coordinator answered %d %s, want typed 503", status, b)
	}
}

// TestCoordinatorMetricsEndpoint: both exposition formats serve the
// fleet counters.
func TestCoordinatorMetricsEndpoint(t *testing.T) {
	w, _ := startWorker(t, nil)
	cts, _ := startCoordinator(t, Config{Workers: []string{w.URL}, ProbeInterval: -1})

	if status, _, _ := post(t, cts.URL+"/run", runBody("Reduce", 32)); status != http.StatusOK {
		t.Fatalf("seed request failed: %d", status)
	}

	resp, err := http.Get(cts.URL + "/metrics?format=json")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.Routed == 0 || snap.RingMembers != 1 || len(snap.Shards) != 1 {
		t.Errorf("snapshot = routed %d, members %d, shards %d", snap.Routed, snap.RingMembers, len(snap.Shards))
	}

	resp2, err := http.Get(cts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	prom, _ := io.ReadAll(resp2.Body)
	for _, metric := range []string{
		"gpucmpd_coord_routed_total",
		"gpucmpd_coord_ring_members 1",
		"gpucmpd_coord_shard_requests_total",
		"gpucmpd_coord_queue_depth_bucket",
	} {
		if !strings.Contains(string(prom), metric) {
			t.Errorf("prometheus output missing %q", metric)
		}
	}
}
