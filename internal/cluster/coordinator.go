package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"regexp"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"gpucmp/internal/sched"
	"gpucmp/internal/submit"
)

// Config configures a Coordinator. Zero fields take the documented
// defaults.
type Config struct {
	// Workers are the worker gpucmpd base URLs (e.g.
	// "http://127.0.0.1:8481"). They seed the ring; the readiness probe
	// loop removes workers whose /healthz/ready stops answering 200 and
	// re-adds them when they recover.
	Workers []string
	// VirtualNodes per ring member (default DefaultVirtualNodes).
	VirtualNodes int

	// HedgeQuantile is the observed-latency quantile that arms the hedge
	// timer (default 0.95): when a routed request has been in flight
	// longer than this quantile of recent requests, a second attempt is
	// fired at the next shard on the ring and the first response wins.
	HedgeQuantile float64
	// HedgeMinDelay / HedgeMaxDelay clamp the hedge delay (defaults 20ms
	// and 2s). Before enough latency samples exist, 100ms (clamped) is
	// used.
	HedgeMinDelay time.Duration
	HedgeMaxDelay time.Duration
	// HedgeDisabled turns hedging off (failover still happens).
	HedgeDisabled bool

	// MaxInFlight sheds load with 503 + Retry-After once this many
	// proxied requests are in flight (default 512; negative disables).
	MaxInFlight int
	// Quota throttles admissions per tenant (X-Tenant header, "anon"
	// when absent). The zero value admits everything.
	Quota sched.QuotaConfig
	// Breaker configures the per-shard circuit breakers.
	Breaker sched.BreakerConfig

	// ProbeInterval is the worker readiness-probe period (default 1s;
	// negative disables probing, leaving membership static).
	ProbeInterval time.Duration
	// Client is the HTTP client used for worker calls (default: a client
	// with sane connection pooling and no overall timeout — per-attempt
	// contexts bound each call).
	Client *http.Client
}

func (cfg Config) withDefaults() Config {
	if cfg.HedgeQuantile <= 0 || cfg.HedgeQuantile >= 1 {
		cfg.HedgeQuantile = 0.95
	}
	if cfg.HedgeMinDelay <= 0 {
		cfg.HedgeMinDelay = 20 * time.Millisecond
	}
	if cfg.HedgeMaxDelay <= 0 {
		cfg.HedgeMaxDelay = 2 * time.Second
	}
	if cfg.MaxInFlight == 0 {
		cfg.MaxInFlight = 512
	}
	if cfg.ProbeInterval == 0 {
		cfg.ProbeInterval = time.Second
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{Transport: &http.Transport{
			MaxIdleConnsPerHost: 64,
			IdleConnTimeout:     30 * time.Second,
		}}
	}
	return cfg
}

// Coordinator owns fleet admission control and routing: every request is
// admitted (shed / quota), keyed by its content, routed over the
// consistent-hash ring to a worker, hedged when slow, and failed over
// when the shard is down or its breaker is open.
type Coordinator struct {
	cfg     Config
	ring    *Ring
	quotas  *sched.TenantQuotas
	metrics *Metrics
	lat     *latencyTracker
	start   time.Time

	inFlight atomic.Int64
	notReady atomic.Bool

	brkMu    sync.Mutex
	breakers map[string]*sched.Breaker

	sfMu   sync.Mutex
	flight map[string]*proxyCall

	stop     chan struct{}
	stopOnce sync.Once
	probeWG  sync.WaitGroup
}

// New builds a coordinator over the configured workers. Every worker
// starts on the ring; call Start to begin readiness probing (which will
// evict workers that are down or draining).
func New(cfg Config) *Coordinator {
	cfg = cfg.withDefaults()
	c := &Coordinator{
		cfg:      cfg,
		ring:     NewRing(cfg.VirtualNodes),
		quotas:   sched.NewTenantQuotas(cfg.Quota),
		metrics:  newMetrics(),
		lat:      &latencyTracker{},
		start:    time.Now(),
		breakers: make(map[string]*sched.Breaker),
		flight:   make(map[string]*proxyCall),
		stop:     make(chan struct{}),
	}
	for _, w := range cfg.Workers {
		c.ring.Add(w)
		c.metrics.shard(w) // pre-register so /metrics shows every shard from the start
	}
	return c
}

// Start launches the readiness-probe loop (no-op when probing is
// disabled). Call Close to stop it.
func (c *Coordinator) Start() {
	if c.cfg.ProbeInterval < 0 {
		return
	}
	c.probeWG.Add(1)
	go func() {
		defer c.probeWG.Done()
		ticker := time.NewTicker(c.cfg.ProbeInterval)
		defer ticker.Stop()
		for {
			select {
			case <-c.stop:
				return
			case <-ticker.C:
				c.probeOnce()
			}
		}
	}()
}

// Close stops the probe loop.
func (c *Coordinator) Close() {
	c.stopOnce.Do(func() { close(c.stop) })
	c.probeWG.Wait()
}

// SetReady flips the coordinator's own readiness (drain support).
func (c *Coordinator) SetReady(ready bool) { c.notReady.Store(!ready) }

// Ring exposes the routing ring (tests and cmd/gpucmpd logging).
func (c *Coordinator) Ring() *Ring { return c.ring }

// Metrics exposes the fleet snapshot.
func (c *Coordinator) Metrics() Snapshot { return c.snapshot() }

// probeOnce checks every configured worker's readiness endpoint and
// reconciles ring membership: a worker that stops being ready (draining,
// crashed, partitioned) is removed — the coordinator stops routing to it
// and its arcs fall to their ring successors — and re-added when it
// answers 200 again.
func (c *Coordinator) probeOnce() {
	var wg sync.WaitGroup
	for _, w := range c.cfg.Workers {
		wg.Add(1)
		go func(w string) {
			defer wg.Done()
			ready := c.probe(w)
			switch {
			case ready && !c.ring.Contains(w):
				c.ring.Add(w)
			case !ready && c.ring.Contains(w):
				c.ring.Remove(w)
			}
		}(w)
	}
	wg.Wait()
}

func (c *Coordinator) probe(worker string) bool {
	ctx, cancel := context.WithTimeout(context.Background(), c.cfg.ProbeInterval)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, worker+"/healthz/ready", nil)
	if err != nil {
		return false
	}
	resp, err := c.cfg.Client.Do(req)
	if err != nil {
		return false
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, 4096)) //nolint:errcheck // drain for keep-alive
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

func (c *Coordinator) breakerFor(shard string) *sched.Breaker {
	c.brkMu.Lock()
	defer c.brkMu.Unlock()
	b, ok := c.breakers[shard]
	if !ok {
		b = sched.NewBreaker(c.cfg.Breaker)
		c.breakers[shard] = b
	}
	return b
}

// latencyTracker keeps a sliding window of recent end-to-end routed
// latencies for the hedge-delay quantile.
type latencyTracker struct {
	mu  sync.Mutex
	buf [512]time.Duration
	n   uint64 // total observations; buf[n % len] is the write slot
}

func (t *latencyTracker) observe(d time.Duration) {
	t.mu.Lock()
	t.buf[t.n%uint64(len(t.buf))] = d
	t.n++
	t.mu.Unlock()
}

// quantile returns the q-quantile over the window, or false until enough
// samples (32) exist to make the estimate meaningful.
func (t *latencyTracker) quantile(q float64) (time.Duration, bool) {
	t.mu.Lock()
	n := int(t.n)
	if n > len(t.buf) {
		n = len(t.buf)
	}
	if n < 32 {
		t.mu.Unlock()
		return 0, false
	}
	window := make([]time.Duration, n)
	copy(window, t.buf[:n])
	t.mu.Unlock()
	// Insertion sort: n <= 512 and this is off the per-request fast path
	// (only hedge-timer arming calls it).
	for i := 1; i < n; i++ {
		for j := i; j > 0 && window[j] < window[j-1]; j-- {
			window[j], window[j-1] = window[j-1], window[j]
		}
	}
	i := int(q * float64(n))
	if i >= n {
		i = n - 1
	}
	return window[i], true
}

func (c *Coordinator) hedgeDelay() time.Duration {
	d, ok := c.lat.quantile(c.cfg.HedgeQuantile)
	if !ok {
		d = 100 * time.Millisecond // cold start: no latency signal yet
	}
	if d < c.cfg.HedgeMinDelay {
		d = c.cfg.HedgeMinDelay
	}
	if d > c.cfg.HedgeMaxDelay {
		d = c.cfg.HedgeMaxDelay
	}
	return d
}

// shardResponse is one worker's buffered reply, replayable to any number
// of singleflight joiners.
type shardResponse struct {
	status int
	shard  string
	header http.Header // the subset worth forwarding
	body   []byte
}

// forwardedHeaders are the response headers replayed to clients.
var forwardedHeaders = []string{"Content-Type", "X-Cache", "Retry-After"}

// maxProxyBody caps a buffered worker response (figures are the largest
// legitimate payload at a few MiB).
const maxProxyBody = 32 << 20

var errNoShard = errors.New("cluster: no ready workers on the ring")

// failoverStatus reports whether a worker status speaks about the shard
// rather than the request: those attempts move to the next shard.
// 4xx and 500 are deterministic answers about the request itself and are
// returned to the client as-is (re-running them elsewhere would compute
// the same thing).
func failoverStatus(code int) bool {
	switch code {
	case http.StatusBadGateway, http.StatusServiceUnavailable, http.StatusGatewayTimeout:
		return true
	}
	return false
}

// forward routes one admitted request: primary attempt at the key's ring
// owner, failover walking the preference list when a shard errors or its
// breaker is open, and a hedge attempt at the next distinct shard when
// the primary is slower than the hedge delay. The first terminal
// response wins; the loser's context is cancelled, which aborts its HTTP
// request, cancels the worker handler's context, and — via the
// scheduler's abandonment path — reclaims the remote worker goroutine.
func (c *Coordinator) forward(ctx context.Context, method, pathq string, header http.Header, body []byte, key string) (*shardResponse, error) {
	shards := c.ring.LookupN(key, 3)
	if len(shards) == 0 {
		c.metrics.noShard.Add(1)
		return nil, errNoShard
	}
	c.metrics.routed.Add(1)

	actx, cancel := context.WithCancel(ctx)
	defer cancel()

	type result struct {
		resp  *shardResponse
		err   error
		hedge bool
	}
	resCh := make(chan result, 2)
	var next atomic.Int32

	try := func(hedge bool) {
		var lastErr error
		moved := false
		for {
			i := int(next.Add(1)) - 1
			if i >= len(shards) {
				if lastErr == nil {
					lastErr = errNoShard
				}
				resCh <- result{err: lastErr, hedge: hedge}
				return
			}
			shard := shards[i]
			if moved {
				c.metrics.failovers.Add(1)
			}
			moved = true
			br := c.breakerFor(shard)
			if ok, wait := br.Allow(); !ok {
				lastErr = fmt.Errorf("cluster: %w for shard %s (retry in %v)", sched.ErrBreakerOpen, shard, wait)
				continue
			}
			sc := c.metrics.shard(shard)
			sc.requests.Add(1)
			if hedge {
				sc.hedges.Add(1)
			}
			resp, err := c.send(actx, shard, method, pathq, header, body)
			if err == nil && !failoverStatus(resp.status) {
				br.Success()
				resCh <- result{resp: resp, hedge: hedge}
				return
			}
			if actx.Err() != nil {
				// We lost the race (or the client left). The cancelled
				// attempt says nothing about the shard's health, so it
				// must not feed its breaker or error counters.
				resCh <- result{err: actx.Err(), hedge: hedge}
				return
			}
			sc.errors.Add(1)
			br.Failure()
			if err != nil {
				lastErr = fmt.Errorf("cluster: shard %s: %w", shard, err)
			} else {
				lastErr = fmt.Errorf("cluster: shard %s answered %d", shard, resp.status)
			}
		}
	}

	start := time.Now()
	go try(false)

	var hedgeCh <-chan time.Time
	if !c.cfg.HedgeDisabled && len(shards) > 1 {
		ht := time.NewTimer(c.hedgeDelay())
		defer ht.Stop()
		hedgeCh = ht.C
	}

	pending := 1
	var firstErr error
	for {
		select {
		case r := <-resCh:
			pending--
			if r.err == nil {
				c.lat.observe(time.Since(start))
				if r.hedge {
					c.metrics.hedgeWins.Add(1)
					c.metrics.shard(r.resp.shard).hedgeWins.Add(1)
				}
				return r.resp, nil
			}
			if firstErr == nil {
				firstErr = r.err
			}
			if pending == 0 {
				return nil, firstErr
			}
		case <-hedgeCh:
			hedgeCh = nil
			c.metrics.hedges.Add(1)
			pending++
			go try(true)
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// send performs one HTTP attempt against one shard and buffers the
// response.
func (c *Coordinator) send(ctx context.Context, shard, method, pathq string, header http.Header, body []byte) (*shardResponse, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, shard+pathq, rd)
	if err != nil {
		return nil, err
	}
	for _, h := range []string{"Content-Type", "X-Tenant", "Accept"} {
		if v := header.Get(h); v != "" {
			req.Header.Set(h, v)
		}
	}
	resp, err := c.cfg.Client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(io.LimitReader(resp.Body, maxProxyBody))
	if err != nil {
		return nil, err
	}
	out := &shardResponse{status: resp.StatusCode, shard: shard, header: http.Header{}, body: b}
	for _, h := range forwardedHeaders {
		if v := resp.Header.Get(h); v != "" {
			out.header.Set(h, v)
		}
	}
	return out, nil
}

// proxyCall is one in-flight forwarded request any number of identical
// requests wait on — the coordinator-level singleflight. When the last
// joiner's context is cancelled before completion, the upstream call is
// cancelled too, propagating abandonment all the way to the worker.
type proxyCall struct {
	done    chan struct{}
	resp    *shardResponse
	err     error
	waiters int
	cancel  context.CancelFunc
}

// doShared deduplicates identical in-flight forwards by sfKey. Identical
// concurrent requests share one upstream call and replay its buffered
// response.
func (c *Coordinator) doShared(ctx context.Context, method, pathq string, header http.Header, body []byte, key, sfKey string) (*shardResponse, error) {
	c.sfMu.Lock()
	if call, ok := c.flight[sfKey]; ok {
		call.waiters++
		c.sfMu.Unlock()
		c.metrics.dedupJoined.Add(1)
		return c.waitCall(ctx, call, sfKey)
	}
	upctx, cancel := context.WithCancel(context.Background())
	call := &proxyCall{done: make(chan struct{}), waiters: 1, cancel: cancel}
	c.flight[sfKey] = call
	c.sfMu.Unlock()

	go func() {
		call.resp, call.err = c.forward(upctx, method, pathq, header, body, key)
		c.sfMu.Lock()
		if c.flight[sfKey] == call {
			delete(c.flight, sfKey)
		}
		c.sfMu.Unlock()
		close(call.done)
		cancel()
	}()
	return c.waitCall(ctx, call, sfKey)
}

func (c *Coordinator) waitCall(ctx context.Context, call *proxyCall, sfKey string) (*shardResponse, error) {
	select {
	case <-call.done:
		return call.resp, call.err
	case <-ctx.Done():
		c.sfMu.Lock()
		call.waiters--
		if call.waiters <= 0 {
			if c.flight[sfKey] == call {
				delete(c.flight, sfKey)
			}
			call.cancel() // last joiner left: abandon the upstream call
		}
		c.sfMu.Unlock()
		return nil, ctx.Err()
	}
}

// ---- HTTP face ----------------------------------------------------------

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // client went away; nothing to do
}

type errorBody struct {
	Error string `json:"error"`
	Code  string `json:"code"`
}

func writeError(w http.ResponseWriter, status int, code string, err error) {
	writeJSON(w, status, errorBody{Error: err.Error(), Code: code})
}

// Machine codes the coordinator adds on top of the worker vocabulary.
const (
	codeShedding   = "shedding"
	codeQuota      = "quota-exceeded"
	codeNoWorkers  = "no-workers"
	codeBadGateway = "bad-gateway"
	codeBadJSON    = "bad-json"
	codeBadTenant  = "bad-tenant"
	codeTooLarge   = "too-large"
	codeDraining   = "draining"
	codeMethodNA   = "method-not-allowed"
)

var tenantRe = regexp.MustCompile(`^[A-Za-z0-9._-]{1,64}$`)

// maxRunBody mirrors the worker's POST /run cap.
const maxRunBody = 1 << 16

// Handler returns the coordinator's routed HTTP handler.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", c.handleHealthz)
	mux.HandleFunc("/healthz/live", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"status": "alive"})
	})
	mux.HandleFunc("/healthz/ready", c.handleReady)
	mux.HandleFunc("/metrics", c.handleMetrics)
	mux.HandleFunc("/run", c.handleRun)
	mux.HandleFunc("/kernels", c.handleKernels)
	mux.HandleFunc("/figures/", c.handleProxyByPath)
	mux.HandleFunc("/devices", c.handleProxyByPath)
	mux.HandleFunc("/benchmarks", c.handleProxyByPath)
	mux.HandleFunc("/compiler/passes", c.handleProxyByPath)
	return mux
}

func (c *Coordinator) handleHealthz(w http.ResponseWriter, r *http.Request) {
	members := c.ring.Members()
	status := "ok"
	if len(members) == 0 {
		status = "no-workers"
	} else if len(members) < len(c.cfg.Workers) {
		status = "degraded"
	}
	var breakers []sched.BreakerSnapshot
	for _, wk := range c.cfg.Workers {
		breakers = append(breakers, c.breakerFor(wk).Snapshot(wk))
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":         status,
		"role":           "coordinator",
		"ready":          !c.notReady.Load(),
		"uptime_seconds": time.Since(c.start).Seconds(),
		"ring_members":   members,
		"workers":        c.cfg.Workers,
		"breakers":       breakers,
	})
}

func (c *Coordinator) handleReady(w http.ResponseWriter, r *http.Request) {
	if c.notReady.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"status": "ready"})
}

func (c *Coordinator) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("format") == "json" {
		writeJSON(w, http.StatusOK, c.snapshot())
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	c.writeProm(w)
}

// admit runs the admission ladder shared by every routed endpoint:
// drain → load shed (503 + Retry-After) → tenant quota (429 +
// Retry-After). It returns a release func (always call it) and whether
// the request was admitted; on rejection the response has been written.
func (c *Coordinator) admit(w http.ResponseWriter, r *http.Request) (release func(), ok bool) {
	if c.notReady.Load() {
		w.Header().Set("Retry-After", "5")
		writeError(w, http.StatusServiceUnavailable, codeDraining,
			errors.New("cluster: coordinator is draining"))
		return func() {}, false
	}
	depth := c.inFlight.Add(1)
	release = func() { c.inFlight.Add(-1) }
	c.metrics.observeDepth(depth - 1)
	if c.cfg.MaxInFlight > 0 && depth > int64(c.cfg.MaxInFlight) {
		c.metrics.shed.Add(1)
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, codeShedding,
			fmt.Errorf("cluster: %d requests in flight, limit %d", depth, c.cfg.MaxInFlight))
		return release, false
	}
	tenant := r.Header.Get("X-Tenant")
	if tenant == "" {
		tenant = "anon"
	}
	if !tenantRe.MatchString(tenant) {
		writeError(w, http.StatusBadRequest, codeBadTenant,
			fmt.Errorf("X-Tenant must match %s", tenantRe))
		return release, false
	}
	if allowed, retry := c.quotas.Allow(tenant); !allowed {
		c.metrics.quotaDenied.Add(1)
		secs := int(retry.Seconds() + 0.999)
		w.Header().Set("Retry-After", strconv.Itoa(secs))
		writeError(w, http.StatusTooManyRequests, codeQuota,
			fmt.Errorf("cluster: tenant %q is over its admission quota", tenant))
		return release, false
	}
	return release, true
}

// reply writes a buffered shard response (or the typed routing error)
// back to the client.
func (c *Coordinator) reply(w http.ResponseWriter, resp *shardResponse, err error) {
	if err != nil {
		switch {
		case errors.Is(err, errNoShard):
			w.Header().Set("Retry-After", "2")
			writeError(w, http.StatusServiceUnavailable, codeNoWorkers, err)
		case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
			// The client went away; the status is a formality.
			writeError(w, http.StatusServiceUnavailable, codeDraining, err)
		default:
			writeError(w, http.StatusBadGateway, codeBadGateway, err)
		}
		return
	}
	for _, h := range forwardedHeaders {
		if v := resp.header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	w.Header().Set("X-Shard", resp.shard)
	w.WriteHeader(resp.status)
	w.Write(resp.body) //nolint:errcheck // client went away; nothing to do
}

func (c *Coordinator) handleRun(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeError(w, http.StatusMethodNotAllowed, codeMethodNA,
			errors.New("POST a sched.Job body to /run"))
		return
	}
	release, ok := c.admit(w, r)
	defer release()
	if !ok {
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxRunBody))
	if err != nil {
		status, code := http.StatusBadRequest, codeBadJSON
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			status, code = http.StatusRequestEntityTooLarge, codeTooLarge
		}
		writeError(w, status, code, fmt.Errorf("bad /run body: %w", err))
		return
	}
	var job sched.Job
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&job); err != nil {
		writeError(w, http.StatusBadRequest, codeBadJSON, fmt.Errorf("bad /run body: %w", err))
		return
	}
	// Admission validates the job shape here so a garbage body never
	// travels the ring; the worker re-validates (it owns the semantics).
	if err := job.Validate(); err != nil {
		writeError(w, http.StatusBadRequest, "bad-request", err)
		return
	}
	key := job.Key()
	resp, ferr := c.doShared(r.Context(), http.MethodPost, "/run", r.Header, body, key, "run|"+key)
	c.reply(w, resp, ferr)
}

func (c *Coordinator) handleKernels(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeError(w, http.StatusMethodNotAllowed, codeMethodNA,
			errors.New("POST a kernel program to /kernels"))
		return
	}
	release, ok := c.admit(w, r)
	defer release()
	if !ok {
		return
	}
	lim := submit.DefaultLimits()
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, lim.MaxBody))
	if err != nil {
		status, code := http.StatusBadRequest, codeBadJSON
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			status, code = http.StatusRequestEntityTooLarge, codeTooLarge
		}
		writeError(w, status, code, fmt.Errorf("bad /kernels body: %w", err))
		return
	}
	// Route by submission content key so identical kernels land on the
	// same shard (and hit its tenant cache); a body the coordinator
	// cannot parse still gets forwarded — the worker owns the full
	// defense ladder and its rejection travels back typed.
	key := "kernels|" + hashBody(body)
	if sub, perr := submit.Parse(body, lim); perr == nil {
		key = "kernels|" + sub.ContentKey()
	}
	tenant := r.Header.Get("X-Tenant")
	resp, ferr := c.doShared(r.Context(), http.MethodPost, "/kernels", r.Header, body, key, tenant+"|"+key)
	c.reply(w, resp, ferr)
}

// handleProxyByPath routes idempotent GET endpoints by their full path +
// query: every distinct artifact (figure, table, scale) is one ring key,
// so repeated regenerations hit the same worker's cache.
func (c *Coordinator) handleProxyByPath(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeError(w, http.StatusMethodNotAllowed, codeMethodNA,
			errors.New("GET only"))
		return
	}
	release, ok := c.admit(w, r)
	defer release()
	if !ok {
		return
	}
	pathq := r.URL.Path
	if r.URL.RawQuery != "" {
		pathq += "?" + r.URL.RawQuery
	}
	resp, ferr := c.doShared(r.Context(), http.MethodGet, pathq, r.Header, nil, pathq, "get|"+pathq)
	c.reply(w, resp, ferr)
}

// hashBody is the routing key fallback for unparseable bodies.
func hashBody(b []byte) string {
	return strconv.FormatUint(hash64(string(b)), 16)
}
