package cluster

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"

	"gpucmp/internal/sched"
)

// shardCounters is one worker's routing accounting.
type shardCounters struct {
	requests  atomic.Uint64 // attempts sent to this shard
	errors    atomic.Uint64 // failed attempts (transport error or failover-class status)
	hedges    atomic.Uint64 // hedge attempts fired at this shard
	hedgeWins atomic.Uint64 // hedge attempts that beat the primary
}

// Metrics is the coordinator's observability surface: per-shard routing
// counters, fleet-level admission counters, a ring-membership gauge, and
// a queue-depth histogram (the number of proxied requests already in
// flight, observed at each admission).
type Metrics struct {
	routed      atomic.Uint64 // requests admitted and routed
	shed        atomic.Uint64 // requests refused with 503 (overload)
	quotaDenied atomic.Uint64 // requests refused with 429 (tenant quota)
	failovers   atomic.Uint64 // attempts moved to the next shard
	hedges      atomic.Uint64 // hedge attempts fired
	hedgeWins   atomic.Uint64 // hedges whose response won
	dedupJoined atomic.Uint64 // requests served by an identical in-flight proxy call
	noShard     atomic.Uint64 // requests that found an empty ring

	mu     sync.Mutex
	shards map[string]*shardCounters
	depth  sched.Histogram // in-flight depth at admission, in "seconds" units (count)
}

func newMetrics() *Metrics {
	return &Metrics{shards: make(map[string]*shardCounters)}
}

func (m *Metrics) shard(name string) *shardCounters {
	m.mu.Lock()
	defer m.mu.Unlock()
	c, ok := m.shards[name]
	if !ok {
		c = &shardCounters{}
		m.shards[name] = c
	}
	return c
}

// observeDepth records the coordinator's in-flight request count at one
// admission into the queue-depth histogram.
func (m *Metrics) observeDepth(depth int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.depth.Observe(float64(depth))
}

// ShardSnapshot is one shard's counters at snapshot time.
type ShardSnapshot struct {
	Shard     string `json:"shard"`
	Requests  uint64 `json:"requests"`
	Errors    uint64 `json:"errors"`
	Hedges    uint64 `json:"hedges"`
	HedgeWins uint64 `json:"hedge_wins"`
	InRing    bool   `json:"in_ring"`
	Breaker   string `json:"breaker"`
}

// Snapshot is a point-in-time copy of the coordinator's metrics.
type Snapshot struct {
	Routed      uint64 `json:"routed"`
	Shed        uint64 `json:"shed"`
	QuotaDenied uint64 `json:"quota_denied"`
	Failovers   uint64 `json:"failovers"`
	Hedges      uint64 `json:"hedges"`
	HedgeWins   uint64 `json:"hedge_wins"`
	DedupJoined uint64 `json:"dedup_joined"`
	NoShard     uint64 `json:"no_shard"`
	RingMembers int    `json:"ring_members"`

	QueueDepthCount uint64  `json:"queue_depth_count"`
	QueueDepthP50   float64 `json:"queue_depth_p50"`
	QueueDepthP99   float64 `json:"queue_depth_p99"`

	Shards []ShardSnapshot             `json:"shards"`
	Quotas []sched.TenantQuotaSnapshot `json:"quotas,omitempty"`
}

// snapshotLocked assembles the fleet snapshot; the coordinator fills in
// ring membership and breaker state per shard.
func (c *Coordinator) snapshot() Snapshot {
	m := c.metrics
	s := Snapshot{
		Routed:      m.routed.Load(),
		Shed:        m.shed.Load(),
		QuotaDenied: m.quotaDenied.Load(),
		Failovers:   m.failovers.Load(),
		Hedges:      m.hedges.Load(),
		HedgeWins:   m.hedgeWins.Load(),
		DedupJoined: m.dedupJoined.Load(),
		NoShard:     m.noShard.Load(),
		RingMembers: c.ring.Len(),
		Quotas:      c.quotas.Snapshot(),
	}
	m.mu.Lock()
	names := make([]string, 0, len(m.shards))
	for name := range m.shards {
		names = append(names, name)
	}
	sort.Strings(names)
	s.QueueDepthCount = m.depth.Count()
	if s.QueueDepthCount > 0 {
		s.QueueDepthP50 = m.depth.Quantile(0.50)
		s.QueueDepthP99 = m.depth.Quantile(0.99)
	}
	counters := make([]*shardCounters, len(names))
	for i, name := range names {
		counters[i] = m.shards[name]
	}
	m.mu.Unlock()
	for i, name := range names {
		sc := counters[i]
		s.Shards = append(s.Shards, ShardSnapshot{
			Shard:     name,
			Requests:  sc.requests.Load(),
			Errors:    sc.errors.Load(),
			Hedges:    sc.hedges.Load(),
			HedgeWins: sc.hedgeWins.Load(),
			InRing:    c.ring.Contains(name),
			Breaker:   c.breakerFor(name).State().String(),
		})
	}
	return s
}

// writeProm renders the fleet metrics in Prometheus exposition format,
// matching the gpucmpd_* metric style of internal/server.
func (c *Coordinator) writeProm(w io.Writer) {
	s := c.snapshot()
	fmt.Fprintf(w, "# HELP gpucmpd_coord_routed_total Requests admitted and routed to a shard.\n")
	fmt.Fprintf(w, "# TYPE gpucmpd_coord_routed_total counter\n")
	fmt.Fprintf(w, "gpucmpd_coord_routed_total %d\n", s.Routed)
	fmt.Fprintf(w, "# HELP gpucmpd_coord_shed_total Requests refused with 503: coordinator overloaded.\n")
	fmt.Fprintf(w, "# TYPE gpucmpd_coord_shed_total counter\n")
	fmt.Fprintf(w, "gpucmpd_coord_shed_total %d\n", s.Shed)
	fmt.Fprintf(w, "# HELP gpucmpd_coord_quota_denied_total Requests refused with 429 by tenant quota.\n")
	fmt.Fprintf(w, "# TYPE gpucmpd_coord_quota_denied_total counter\n")
	fmt.Fprintf(w, "gpucmpd_coord_quota_denied_total %d\n", s.QuotaDenied)
	fmt.Fprintf(w, "# HELP gpucmpd_coord_failovers_total Attempts moved to the next shard after a shard failure.\n")
	fmt.Fprintf(w, "# TYPE gpucmpd_coord_failovers_total counter\n")
	fmt.Fprintf(w, "gpucmpd_coord_failovers_total %d\n", s.Failovers)
	fmt.Fprintf(w, "# HELP gpucmpd_coord_hedges_total Hedge attempts fired against slow shards.\n")
	fmt.Fprintf(w, "# TYPE gpucmpd_coord_hedges_total counter\n")
	fmt.Fprintf(w, "gpucmpd_coord_hedges_total %d\n", s.Hedges)
	fmt.Fprintf(w, "# HELP gpucmpd_coord_hedge_wins_total Hedge attempts whose response won the race.\n")
	fmt.Fprintf(w, "# TYPE gpucmpd_coord_hedge_wins_total counter\n")
	fmt.Fprintf(w, "gpucmpd_coord_hedge_wins_total %d\n", s.HedgeWins)
	fmt.Fprintf(w, "# HELP gpucmpd_coord_dedup_joined_total Requests served by an identical in-flight proxy call.\n")
	fmt.Fprintf(w, "# TYPE gpucmpd_coord_dedup_joined_total counter\n")
	fmt.Fprintf(w, "gpucmpd_coord_dedup_joined_total %d\n", s.DedupJoined)
	fmt.Fprintf(w, "# HELP gpucmpd_coord_no_shard_total Requests that found an empty ring.\n")
	fmt.Fprintf(w, "# TYPE gpucmpd_coord_no_shard_total counter\n")
	fmt.Fprintf(w, "gpucmpd_coord_no_shard_total %d\n", s.NoShard)
	fmt.Fprintf(w, "# HELP gpucmpd_coord_ring_members Workers currently on the routing ring.\n")
	fmt.Fprintf(w, "# TYPE gpucmpd_coord_ring_members gauge\n")
	fmt.Fprintf(w, "gpucmpd_coord_ring_members %d\n", s.RingMembers)

	fmt.Fprintf(w, "# HELP gpucmpd_coord_shard_requests_total Attempts sent per shard.\n")
	fmt.Fprintf(w, "# TYPE gpucmpd_coord_shard_requests_total counter\n")
	for _, sh := range s.Shards {
		fmt.Fprintf(w, "gpucmpd_coord_shard_requests_total{shard=%q} %d\n", sh.Shard, sh.Requests)
	}
	fmt.Fprintf(w, "# HELP gpucmpd_coord_shard_errors_total Failed attempts per shard.\n")
	fmt.Fprintf(w, "# TYPE gpucmpd_coord_shard_errors_total counter\n")
	for _, sh := range s.Shards {
		fmt.Fprintf(w, "gpucmpd_coord_shard_errors_total{shard=%q} %d\n", sh.Shard, sh.Errors)
	}
	fmt.Fprintf(w, "# HELP gpucmpd_coord_shard_hedges_total Hedge attempts per shard.\n")
	fmt.Fprintf(w, "# TYPE gpucmpd_coord_shard_hedges_total counter\n")
	for _, sh := range s.Shards {
		fmt.Fprintf(w, "gpucmpd_coord_shard_hedges_total{shard=%q} %d\n", sh.Shard, sh.Hedges)
	}
	fmt.Fprintf(w, "# HELP gpucmpd_coord_shard_in_ring Shard ring membership (1 = routing to it).\n")
	fmt.Fprintf(w, "# TYPE gpucmpd_coord_shard_in_ring gauge\n")
	for _, sh := range s.Shards {
		v := 0
		if sh.InRing {
			v = 1
		}
		fmt.Fprintf(w, "gpucmpd_coord_shard_in_ring{shard=%q} %d\n", sh.Shard, v)
	}
	fmt.Fprintf(w, "# HELP gpucmpd_coord_breaker_state Per-shard breaker state (0=closed, 1=half-open, 2=open).\n")
	fmt.Fprintf(w, "# TYPE gpucmpd_coord_breaker_state gauge\n")
	for _, sh := range s.Shards {
		v := 0
		switch sh.Breaker {
		case "half-open":
			v = 1
		case "open":
			v = 2
		}
		fmt.Fprintf(w, "gpucmpd_coord_breaker_state{shard=%q} %d\n", sh.Shard, v)
	}

	// Queue-depth histogram: in-flight proxied requests observed at each
	// admission, bucketed on the shared latency-bucket scale (the bounds
	// read as request counts here, not seconds).
	c.metrics.mu.Lock()
	bounds, cum := c.metrics.depth.Buckets()
	sum, count := c.metrics.depth.Sum(), c.metrics.depth.Count()
	c.metrics.mu.Unlock()
	fmt.Fprintf(w, "# HELP gpucmpd_coord_queue_depth In-flight proxied requests observed at admission.\n")
	fmt.Fprintf(w, "# TYPE gpucmpd_coord_queue_depth histogram\n")
	for i := range bounds {
		le := "+Inf"
		if i < len(bounds)-1 {
			le = strconv.FormatFloat(bounds[i], 'g', -1, 64)
		}
		fmt.Fprintf(w, "gpucmpd_coord_queue_depth_bucket{le=%q} %d\n", le, cum[i])
	}
	fmt.Fprintf(w, "gpucmpd_coord_queue_depth_sum %g\n", sum)
	fmt.Fprintf(w, "gpucmpd_coord_queue_depth_count %d\n", count)

	if len(s.Quotas) > 0 {
		fmt.Fprintf(w, "# HELP gpucmpd_coord_quota_allowed_total Requests admitted by the tenant quota.\n")
		fmt.Fprintf(w, "# TYPE gpucmpd_coord_quota_allowed_total counter\n")
		for _, q := range s.Quotas {
			fmt.Fprintf(w, "gpucmpd_coord_quota_allowed_total{tenant=%q} %d\n", q.Tenant, q.Allowed)
		}
		fmt.Fprintf(w, "# HELP gpucmpd_coord_quota_denied_tenant_total Requests rejected by the tenant quota.\n")
		fmt.Fprintf(w, "# TYPE gpucmpd_coord_quota_denied_tenant_total counter\n")
		for _, q := range s.Quotas {
			fmt.Fprintf(w, "gpucmpd_coord_quota_denied_tenant_total{tenant=%q} %d\n", q.Tenant, q.Denied)
		}
	}
}
