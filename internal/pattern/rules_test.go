package pattern

// The rewrite-rule soundness suite: for every test program and EVERY
// schedule in its rule space, lowering to KIR and executing on the host
// reference executor must reproduce the schedule-aware evaluator's output
// bit for bit. A rewrite rule that changes results in any way the
// evaluator does not predict fails here.

import (
	"math"
	"testing"

	"gpucmp/internal/kir"
	"gpucmp/internal/workload"
)

// Shared element functions.

func fnScale2() Fn { // f32: x * 2
	return Fn{
		Params: []FnParam{{Name: "x", T: kir.F32}},
		Body:   kir.Mul(X("x", kir.F32), kir.F(2)),
	}
}

func fnAdd1() Fn { // f32: x + 1
	return Fn{
		Params: []FnParam{{Name: "x", T: kir.F32}},
		Body:   kir.Add(X("x", kir.F32), kir.F(1)),
	}
}

func fnSquare() Fn { // f32: x * x
	return Fn{
		Params: []FnParam{{Name: "x", T: kir.F32}},
		Body:   kir.Mul(X("x", kir.F32), X("x", kir.F32)),
	}
}

func fnAddF() Fn { // f32: a + b
	return Fn{
		Params: []FnParam{{Name: "a", T: kir.F32}, {Name: "b", T: kir.F32}},
		Body:   kir.Add(X("a", kir.F32), X("b", kir.F32)),
	}
}

func fnAddU() Fn { // u32: a + b
	return Fn{
		Params: []FnParam{{Name: "a", T: kir.U32}, {Name: "b", T: kir.U32}},
		Body:   kir.Add(X("a", kir.U32), X("b", kir.U32)),
	}
}

func fnMaxU() Fn { // u32: max(a, b) via select
	return Fn{
		Params: []FnParam{{Name: "a", T: kir.U32}, {Name: "b", T: kir.U32}},
		Body:   kir.Select(kir.Lt(X("a", kir.U32), X("b", kir.U32)), X("b", kir.U32), X("a", kir.U32)),
	}
}

func fnMixU() Fn { // u32: (a + b) ^ (a << 3)
	return Fn{
		Params: []FnParam{{Name: "a", T: kir.U32}, {Name: "b", T: kir.U32}},
		Body: kir.Xor(
			kir.Add(X("a", kir.U32), X("b", kir.U32)),
			kir.Shl(X("a", kir.U32), kir.U(3))),
	}
}

// fnWeighted5 is c0*t0 + c1*t1 + c2*t2 + c3*t3 + c4*t4 folded left to
// right, taps then coefficients.
func fnWeighted5() Fn {
	params := make([]FnParam, 0, 10)
	for _, base := range []string{"t", "c"} {
		for i := 0; i < 5; i++ {
			params = append(params, FnParam{Name: base + string(rune('0'+i)), T: kir.F32})
		}
	}
	body := kir.Expr(kir.F(0))
	for i := 0; i < 5; i++ {
		t := X("t"+string(rune('0'+i)), kir.F32)
		c := X("c"+string(rune('0'+i)), kir.F32)
		body = kir.Add(body, kir.Mul(c, t))
	}
	return Fn{Params: params, Body: body}
}

// fnAvg3 averages three taps without coefficients.
func fnAvg3() Fn {
	return Fn{
		Params: []FnParam{{Name: "a", T: kir.F32}, {Name: "b", T: kir.F32}, {Name: "c", T: kir.F32}},
		Body: kir.Mul(
			kir.Add(kir.Add(X("a", kir.F32), X("b", kir.F32)), X("c", kir.F32)),
			kir.F(1.0/3.0)),
	}
}

func f32Bits(fs []float32) []uint32 {
	out := make([]uint32, len(fs))
	for i, f := range fs {
		out[i] = math.Float32bits(f)
	}
	return out
}

// soundnessCase pairs a program with concrete inputs.
type soundnessCase struct {
	prog  Program
	shape Shape
	in    EvalInputs
}

func soundnessCases(t testing.TB) []soundnessCase {
	rng := workload.NewRNG(99)
	fdata := func(n int) []uint32 { return f32Bits(rng.Floats(n, -1, 1)) }
	udata := func(n int) []uint32 {
		out := make([]uint32, n)
		for i := range out {
			out[i] = rng.Uint32() % 1000
		}
		return out
	}

	const n1d = 1000 // not a multiple of any block*coarsen: exercises guards
	const nScan = 768
	const nMxM = 32
	const w, h = 40, 24

	cases := []soundnessCase{
		{
			prog:  &MapProg{Name: "mapchain", Root: Map(fnAdd1(), Map(fnScale2(), In("a", kir.F32)))},
			shape: Shape{N: n1d},
			in:    EvalInputs{Bufs: map[string][]uint32{"a": fdata(n1d)}},
		},
		{
			prog:  &MapProg{Name: "zipmix", Root: Map(fnScale2(), ZipN(fnAddF(), Map(fnSquare(), In("a", kir.F32)), In("b", kir.F32)))},
			shape: Shape{N: n1d},
			in:    EvalInputs{Bufs: map[string][]uint32{"a": fdata(n1d), "b": fdata(n1d)}},
		},
		{
			prog:  &MapProg{Name: "zipu", Root: Zip(fnMixU(), In("a", kir.U32), In("b", kir.U32))},
			shape: Shape{N: n1d},
			in:    EvalInputs{Bufs: map[string][]uint32{"a": udata(n1d), "b": udata(n1d)}},
		},
		{
			prog: &ReduceProg{Name: "sumsq", Root: Map(fnSquare(), In("a", kir.F32)),
				Combine: fnAddF(), Identity: math.Float32bits(0)},
			shape: Shape{N: n1d},
			in:    EvalInputs{Bufs: map[string][]uint32{"a": fdata(n1d)}},
		},
		{
			prog: &ReduceProg{Name: "maxu", Root: In("a", kir.U32),
				Combine: fnMaxU(), Identity: 0},
			shape: Shape{N: n1d},
			in:    EvalInputs{Bufs: map[string][]uint32{"a": udata(n1d)}},
		},
		{
			prog: &ScanProg{Name: "scanu", Input: "a", Elem: kir.U32,
				Combine: fnAddU(), Identity: 0},
			shape: Shape{N: nScan},
			in:    EvalInputs{Bufs: map[string][]uint32{"a": udata(nScan)}},
		},
		{
			prog: &Stencil2DProg{Name: "cross5", Input: "img",
				Taps:   []Tap{{0, 0}, {-1, 0}, {1, 0}, {0, -1}, {0, 1}},
				Coeffs: []float32{0.5, 0.125, 0.125, 0.125, 0.125},
				Fn:     fnWeighted5()},
			shape: Shape{W: w, H: h},
			in: EvalInputs{
				Bufs:    map[string][]uint32{"img": f32Bits(workload.GrayImage(w, h, 7))},
				OutInit: f32Bits(workload.GrayImage(w, h, 7)),
			},
		},
		{
			prog: &Stencil2DProg{Name: "avg3", Input: "img",
				Taps: []Tap{{0, -1}, {0, 0}, {0, 1}},
				Fn:   fnAvg3()},
			shape: Shape{W: w, H: h},
			in:    EvalInputs{Bufs: map[string][]uint32{"img": f32Bits(workload.GrayImage(w, h, 8))}},
		},
		{
			prog:  &MatMulProg{Name: "mm"},
			shape: Shape{N: nMxM},
			in: EvalInputs{Bufs: map[string][]uint32{
				"A": fdata(nMxM * nMxM), "B": fdata(nMxM * nMxM)}},
		},
	}
	for _, c := range cases {
		if err := c.prog.Validate(); err != nil {
			t.Fatalf("%s: invalid test program: %v", c.prog.ProgName(), err)
		}
	}
	return cases
}

// TestRuleSoundness is the heart of the pattern layer's safety argument:
// every schedule in every program's rule space must execute bit-identically
// to the schedule-aware evaluator.
func TestRuleSoundness(t *testing.T) {
	for _, c := range soundnessCases(t) {
		c := c
		t.Run(c.prog.ProgName(), func(t *testing.T) {
			t.Parallel()
			space := Space(c.prog)
			if len(space) < 2 {
				t.Fatalf("rule space has only %d schedules", len(space))
			}
			if space[0].Mangle() != Canonical(c.prog).Mangle() {
				t.Fatalf("space[0] = %s, want canonical %s", space[0].Mangle(), Canonical(c.prog).Mangle())
			}
			for _, s := range space {
				want, err := Eval(c.prog, s, c.shape, c.in)
				if err != nil {
					t.Fatalf("%s: eval: %v", s.Mangle(), err)
				}
				l, err := Lower(c.prog, s, c.shape)
				if err != nil {
					t.Fatalf("%s: lower: %v", s.Mangle(), err)
				}
				got, err := RunLowered(l, c.in)
				if err != nil {
					t.Fatalf("%s: run: %v", s.Mangle(), err)
				}
				if len(got) != len(want) {
					t.Fatalf("%s: output length %d, evaluator %d", s.Mangle(), len(got), len(want))
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("%s: word %d: kernel %#x, evaluator %#x", s.Mangle(), i, got[i], want[i])
					}
				}
			}
			t.Logf("%s: %d schedules bit-identical", c.prog.ProgName(), len(space))
		})
	}
}

// TestScheduleIndependentKindsAgreeAcrossSpace pins the stronger property
// the parity gate relies on for integer programs: schedules that only
// reorganise work (everything except float reassociation) leave the
// evaluator's answer untouched. For u32 programs even reassociating rules
// are bitwise no-ops, so ALL schedules must agree with the canonical one.
func TestScheduleIndependentKindsAgreeAcrossSpace(t *testing.T) {
	for _, c := range soundnessCases(t) {
		switch c.prog.ProgName() {
		case "zipu", "scanu", "maxu":
		default:
			continue
		}
		canon, err := Eval(c.prog, Canonical(c.prog), c.shape, c.in)
		if err != nil {
			t.Fatalf("%s: canonical eval: %v", c.prog.ProgName(), err)
		}
		for _, s := range Space(c.prog) {
			if s.BlockX != Canonical(c.prog).BlockX {
				// Different block sizes change reduce partial counts; the
				// invariant is about same-geometry reorganisation for reduce,
				// but scan/map outputs are geometry-independent.
				if c.prog.Kind() == KindReduce {
					continue
				}
			}
			got, err := Eval(c.prog, s, c.shape, c.in)
			if err != nil {
				t.Fatalf("%s/%s: eval: %v", c.prog.ProgName(), s.Mangle(), err)
			}
			if c.prog.Kind() == KindReduce && len(got) != len(canon) {
				continue
			}
			for i := range got {
				if got[i] != canon[i] {
					t.Fatalf("%s/%s: word %d differs from canonical: %#x vs %#x",
						c.prog.ProgName(), s.Mangle(), i, got[i], canon[i])
				}
			}
		}
	}
}
