package pattern

// Lowering turns one (program, schedule, shape) triple into concrete KIR
// kernels plus the buffer set and launch sequence that runs them. The
// generated kernels deliberately mirror the hand-written internal/bench
// kernels at the canonical schedule — same guard shapes, same shared-memory
// staging, same floating-point combination order — which is what makes the
// hand-vs-pattern parity gate in cmd/patternbench bitwise.
//
// Kernel names embed the schedule mangle, so two different schedules of the
// same program can never alias each other in the process-wide compile cache
// (which is keyed on formatted kernel text), while identical kernels
// requested twice share one cache entry.

import (
	"fmt"
	"math"
	"strings"

	"gpucmp/internal/kir"
)

// Role classifies a lowered buffer.
type Role int

const (
	// RoleInput is caller-supplied input data.
	RoleInput Role = iota
	// RoleOutput is the program's result buffer.
	RoleOutput
	// RoleTemp is an intermediate materialised by an unfused stage.
	RoleTemp
	// RoleCoeff is a coefficient table with fixed contents (Init).
	RoleCoeff
)

// BufSpec describes one device buffer a lowered program needs.
type BufSpec struct {
	Name  string
	Words int
	Space kir.MemSpace // Global or Const
	Role  Role
	Init  []uint32 // RoleCoeff contents; nil otherwise
}

// LaunchArg is one positional kernel argument: a buffer by name or a
// 32-bit scalar value.
type LaunchArg struct {
	Buf   string
	Val   uint32
	IsVal bool
}

// BufArg references a lowered buffer.
func BufArg(name string) LaunchArg { return LaunchArg{Buf: name} }

// ValArg passes a scalar.
func ValArg(v uint32) LaunchArg { return LaunchArg{Val: v, IsVal: true} }

// Launch is one kernel invocation with concrete geometry and arguments
// (positional, matching the kernel's parameter order).
type Launch struct {
	Kernel         string
	GridX, GridY   int
	BlockX, BlockY int
	Args           []LaunchArg
}

// Lowered is an executable program instance: run the launches in order and
// read Out.
type Lowered struct {
	Prog     Program
	Sched    Schedule
	Shape    Shape
	Kernels  []*kir.Kernel
	Bufs     []BufSpec
	Launches []Launch
	Out      string
	// Key is the canonical identity of this lowering: program name plus
	// schedule mangle (the value carried in bench.Config.Pattern).
	Key string
}

// Buf returns the named buffer spec, or nil.
func (l *Lowered) Buf(name string) *BufSpec {
	for i := range l.Bufs {
		if l.Bufs[i].Name == name {
			return &l.Bufs[i]
		}
	}
	return nil
}

// mangleIdent is the schedule mangle with identifier-safe separators, for
// kernel names.
func (s Schedule) mangleIdent() string {
	return strings.ReplaceAll(s.Mangle(), ".", "_")
}

func isPow2(n int) bool { return n > 0 && n&(n-1) == 0 }

func log2(n int) int {
	r := 0
	for 1<<uint(r+1) <= n {
		r++
	}
	return r
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }

// identityExpr renders an identity element's bit pattern as a literal of
// the element type.
func identityExpr(t kir.Type, bits uint32) kir.Expr {
	switch t {
	case kir.F32:
		return kir.F(math.Float32frombits(bits))
	case kir.I32:
		return kir.I(int32(bits))
	default:
		return kir.U(bits)
	}
}

// Lower instantiates the program under the schedule for a concrete shape.
func Lower(p Program, s Schedule, shape Shape) (*Lowered, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if s.BlockX <= 0 {
		return nil, fmt.Errorf("pattern: lower %s: schedule needs BlockX > 0", p.ProgName())
	}
	if s.Coarsen < 1 {
		return nil, fmt.Errorf("pattern: lower %s: schedule needs Coarsen >= 1", p.ProgName())
	}
	l := &Lowered{
		Prog: p, Sched: s, Shape: shape,
		Key: p.ProgName() + ":" + s.Mangle(),
	}
	var err error
	switch p := p.(type) {
	case *MapProg:
		err = lowerMap(l, p, s, shape)
	case *ReduceProg:
		err = lowerReduce(l, p, s, shape)
	case *ScanProg:
		err = lowerScan(l, p, s, shape)
	case *Stencil2DProg:
		err = lowerStencil(l, p, s, shape)
	case *MatMulProg:
		err = lowerMatMul(l, p, s, shape)
	default:
		err = fmt.Errorf("pattern: lower: unknown program type %T", p)
	}
	if err != nil {
		return nil, err
	}
	for _, k := range l.Kernels {
		if err := kir.Check(k); err != nil {
			return nil, fmt.Errorf("pattern: lower %s: generated kernel fails the checker: %w", l.Key, err)
		}
	}
	return l, nil
}

// chainInputs resolves the distinct input buffers of an elementwise chain
// in first-use order, with each one's element type.
func chainInputs(root *Node) ([]string, map[string]kir.Type, error) {
	types := map[string]kir.Type{}
	var walk func(n *Node) error
	walk = func(n *Node) error {
		if n.Input != "" {
			if t, ok := types[n.Input]; ok && t != n.T {
				return fmt.Errorf("pattern: input %q used as both %s and %s", n.Input, t, n.T)
			}
			types[n.Input] = n.T
			return nil
		}
		for _, a := range n.Args {
			if err := walk(a); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(root); err != nil {
		return nil, nil, err
	}
	var inputs []string
	nodeInputs(root, map[string]bool{}, &inputs)
	return inputs, types, nil
}

// inlineNode builds the fused expression for a node at index idx, loading
// leaves through load.
func inlineNode(n *Node, idx kir.Expr, load func(buf string, idx kir.Expr) kir.Expr) kir.Expr {
	if n.Input != "" {
		return load(n.Input, kir.CloneExpr(idx))
	}
	args := make([]kir.Expr, len(n.Args))
	for i, a := range n.Args {
		args[i] = inlineNode(a, idx, load)
	}
	return n.Fn.Expr(args...)
}

// mapStage is one materialised Apply node of an unfused elementwise chain.
type mapStage struct {
	node *Node
	out  string   // buffer this stage writes
	args []string // buffer read by each fn argument, in order
}

// collectStages flattens the Apply nodes in post-order (producers first).
// Intermediates are named <prefix>t0, <prefix>t1, ...; the root stage
// writes finalOut instead.
func collectStages(root *Node, prefix, finalOut string) []mapStage {
	var stages []mapStage
	var walk func(n *Node) string
	walk = func(n *Node) string {
		if n.Input != "" {
			return n.Input
		}
		args := make([]string, len(n.Args))
		for i, a := range n.Args {
			args[i] = walk(a)
		}
		name := fmt.Sprintf("%st%d", prefix, len(stages))
		stages = append(stages, mapStage{node: n, out: name, args: args})
		return name
	}
	walk(root)
	stages[len(stages)-1].out = finalOut
	return stages
}

// elementLoop emits the guarded per-element body of a 1-D elementwise
// kernel under the schedule's coarsening: emit(i) must store the element
// at index i.
func elementLoop(b *kir.Builder, s Schedule, n kir.Expr, emit func(i kir.Expr)) {
	gid := b.Declare("gid", b.GlobalIDX())
	if s.Coarsen == 1 {
		b.If(kir.Lt(gid, n), func() { emit(gid) })
		return
	}
	base := b.Declare("base", kir.Mul(gid, kir.U(uint32(s.Coarsen))))
	b.ForUnroll("j", kir.U(0), kir.U(uint32(s.Coarsen)), kir.U(1), s.Unroll, func(j kir.Expr) {
		i := b.Declare("i", kir.Add(base, j))
		b.If(kir.Lt(i, n), func() { emit(i) })
	})
}

// mapGrid is the launch width of a coarsened 1-D elementwise kernel.
func mapGrid(n int, s Schedule) int { return ceilDiv(n, s.BlockX*s.Coarsen) }

// emitStages lowers every Apply node of root to its own elementwise
// kernel + launch, materialising intermediates in n-word global temps.
// The root stage writes finalOut, whose BufSpec gets finalRole; the caller
// owns the input BufSpecs.
func emitStages(l *Lowered, s Schedule, n int, progName string, root *Node, types map[string]kir.Type, finalOut string, finalRole Role) error {
	stages := collectStages(root, progName+"_", finalOut)
	elemOf := func(name string) kir.Type {
		if t, ok := types[name]; ok {
			return t
		}
		for _, st := range stages {
			if st.out == name {
				return st.node.Fn.Ret()
			}
		}
		return kir.U32
	}
	for si, st := range stages {
		role := RoleTemp
		if st.out == finalOut {
			role = finalRole
		}
		l.Bufs = append(l.Bufs, BufSpec{Name: st.out, Words: n, Space: kir.Global, Role: role})

		kname := fmt.Sprintf("%s_%s_s%d", progName, s.mangleIdent(), si)
		b := kir.NewKernel(kname)
		bufs := map[string]kir.Buf{}
		var args []LaunchArg
		for _, a := range st.args {
			if _, ok := bufs[a]; ok {
				continue
			}
			bufs[a] = b.GlobalBuffer(a, elemOf(a))
			args = append(args, BufArg(a))
		}
		outBuf := b.GlobalBuffer(st.out, st.node.Fn.Ret())
		args = append(args, BufArg(st.out))
		nParam := b.ScalarParam("n", kir.U32)
		args = append(args, ValArg(uint32(n)))
		elementLoop(b, s, nParam, func(i kir.Expr) {
			fnArgs := make([]kir.Expr, len(st.args))
			for ai, a := range st.args {
				fnArgs[ai] = b.Load(bufs[a], kir.CloneExpr(i))
			}
			b.Store(outBuf, kir.CloneExpr(i), st.node.Fn.Expr(fnArgs...))
		})
		k, err := b.Build()
		if err != nil {
			return err
		}
		l.Kernels = append(l.Kernels, k)
		l.Launches = append(l.Launches, Launch{
			Kernel: kname,
			GridX:  mapGrid(n, s), GridY: 1,
			BlockX: s.BlockX, BlockY: 1,
			Args: args,
		})
	}
	return nil
}

func lowerMap(l *Lowered, p *MapProg, s Schedule, shape Shape) error {
	n := shape.N
	if n <= 0 {
		return fmt.Errorf("pattern: lower %s: need N > 0", p.Name)
	}
	inputs, types, err := chainInputs(p.Root)
	if err != nil {
		return err
	}
	for _, in := range inputs {
		l.Bufs = append(l.Bufs, BufSpec{Name: in, Words: n, Space: kir.Global, Role: RoleInput})
	}
	l.Out = "out"

	if !s.Fuse {
		return emitStages(l, s, n, p.Name, p.Root, types, "out", RoleOutput)
	}

	// Fused: one kernel computes the whole chain per element.
	kname := fmt.Sprintf("%s_%s", p.Name, s.mangleIdent())
	b := kir.NewKernel(kname)
	bufs := map[string]kir.Buf{}
	var args []LaunchArg
	for _, in := range inputs {
		bufs[in] = b.GlobalBuffer(in, types[in])
		args = append(args, BufArg(in))
	}
	l.Bufs = append(l.Bufs, BufSpec{Name: "out", Words: n, Space: kir.Global, Role: RoleOutput})
	outBuf := b.GlobalBuffer("out", p.Root.Elem())
	args = append(args, BufArg("out"))
	nParam := b.ScalarParam("n", kir.U32)
	args = append(args, ValArg(uint32(n)))
	elementLoop(b, s, nParam, func(i kir.Expr) {
		b.Store(outBuf, kir.CloneExpr(i), inlineNode(p.Root, i, func(buf string, idx kir.Expr) kir.Expr {
			return b.Load(bufs[buf], idx)
		}))
	})
	k, err := b.Build()
	if err != nil {
		return err
	}
	l.Kernels = append(l.Kernels, k)
	l.Launches = append(l.Launches, Launch{
		Kernel: kname,
		GridX:  mapGrid(n, s), GridY: 1,
		BlockX: s.BlockX, BlockY: 1,
		Args: args,
	})
	return nil
}

func lowerReduce(l *Lowered, p *ReduceProg, s Schedule, shape Shape) error {
	n := shape.N
	if n <= 0 {
		return fmt.Errorf("pattern: lower %s: need N > 0", p.Name)
	}
	if !isPow2(s.BlockX) || s.BlockX < 2 || s.BlockX > 1024 {
		return fmt.Errorf("pattern: lower %s: reduce needs a power-of-two block in [2,1024], got %d", p.Name, s.BlockX)
	}
	if s.Coarsen != 1 {
		return fmt.Errorf("pattern: lower %s: reduce does not coarsen", p.Name)
	}
	B := s.BlockX
	groups := ceilDiv(n, B)
	elem := p.Root.Elem()
	fused := s.Fuse || p.Root.Input != ""

	inputs, types, err := chainInputs(p.Root)
	if err != nil {
		return err
	}
	for _, in := range inputs {
		l.Bufs = append(l.Bufs, BufSpec{Name: in, Words: n, Space: kir.Global, Role: RoleInput})
	}
	feed := "" // buffer the reduce kernel loads when unfused
	if !fused {
		feed = p.Name + "_root"
		if err := emitStages(l, s, n, p.Name, p.Root, types, feed, RoleTemp); err != nil {
			return err
		}
	}

	kname := fmt.Sprintf("%s_%s", p.Name, s.mangleIdent())
	b := kir.NewKernel(kname)
	bufs := map[string]kir.Buf{}
	var args []LaunchArg
	if fused {
		for _, in := range inputs {
			bufs[in] = b.GlobalBuffer(in, types[in])
			args = append(args, BufArg(in))
		}
	} else {
		bufs[feed] = b.GlobalBuffer(feed, elem)
		args = append(args, BufArg(feed))
	}
	l.Bufs = append(l.Bufs, BufSpec{Name: "out", Words: groups, Space: kir.Global, Role: RoleOutput})
	outBuf := b.GlobalBuffer("out", elem)
	args = append(args, BufArg("out"))
	nParam := b.ScalarParam("n", kir.U32)
	args = append(args, ValArg(uint32(n)))
	tile := b.SharedArray("tile", elem, B)
	tid := kir.Bi(kir.TidX)

	gid := b.Declare("gid", b.GlobalIDX())
	v := b.Declare("v", identityExpr(elem, p.Identity))
	b.If(kir.Lt(gid, nParam), func() {
		if fused {
			b.Assign(v, inlineNode(p.Root, gid, func(buf string, idx kir.Expr) kir.Expr {
				return b.Load(bufs[buf], idx)
			}))
		} else {
			b.Assign(v, b.Load(bufs[feed], gid))
		}
	})
	b.Store(tile, tid, v)
	b.Barrier()
	if s.TreeReduce {
		rounds := log2(B)
		b.ForUnroll("p", kir.U(0), kir.U(uint32(rounds)), kir.U(1), s.Unroll, func(pv kir.Expr) {
			stride := kir.Shr(kir.U(uint32(B/2)), pv)
			b.If(kir.Lt(tid, stride), func() {
				b.Store(tile, tid, p.Combine.Expr(
					b.Load(tile, tid),
					b.Load(tile, kir.Add(tid, stride))))
			})
			b.Barrier()
		})
		b.If(kir.Eq(tid, kir.U(0)), func() {
			b.Store(outBuf, kir.Bi(kir.CtaidX), b.Load(tile, kir.U(0)))
		})
	} else {
		// Sequential fold by thread 0 — same left-to-right element order as
		// a host fold over the tile, but a different association than the
		// tree, so float programs only compare under tolerance here.
		b.If(kir.Eq(tid, kir.U(0)), func() {
			acc := b.Declare("acc", b.Load(tile, kir.U(0)))
			b.ForUnroll("t", kir.U(1), kir.U(uint32(B)), kir.U(1), s.Unroll, func(t kir.Expr) {
				b.Assign(acc, p.Combine.Expr(acc, b.Load(tile, t)))
			})
			b.Store(outBuf, kir.Bi(kir.CtaidX), acc)
		})
	}
	k, err := b.Build()
	if err != nil {
		return err
	}
	l.Kernels = append(l.Kernels, k)
	l.Launches = append(l.Launches, Launch{
		Kernel: kname,
		GridX:  groups, GridY: 1,
		BlockX: B, BlockY: 1,
		Args: args,
	})
	l.Out = "out"
	return nil
}

func lowerScan(l *Lowered, p *ScanProg, s Schedule, shape Shape) error {
	n := shape.N
	if n <= 0 {
		return fmt.Errorf("pattern: lower %s: need N > 0", p.Name)
	}
	if !isPow2(s.BlockX) || s.BlockX < 2 || s.BlockX > 1024 {
		return fmt.Errorf("pattern: lower %s: scan needs a power-of-two block in [2,1024], got %d", p.Name, s.BlockX)
	}
	if n%s.BlockX != 0 {
		return fmt.Errorf("pattern: lower %s: scan needs N %% block == 0 (n=%d, block=%d)", p.Name, n, s.BlockX)
	}
	B := s.BlockX
	groups := n / B
	rounds := log2(B)
	elem := p.Elem
	m := s.mangleIdent()

	l.Bufs = append(l.Bufs,
		BufSpec{Name: p.Input, Words: n, Space: kir.Global, Role: RoleInput},
		BufSpec{Name: "out", Words: n, Space: kir.Global, Role: RoleOutput},
		BufSpec{Name: "sums", Words: groups, Space: kir.Global, Role: RoleTemp},
	)

	// Per-block Blelloch scan (upsweep, clear, downsweep), exclusive.
	blockName := fmt.Sprintf("%s_%s_scan", p.Name, m)
	{
		b := kir.NewKernel(blockName)
		in := b.GlobalBuffer(p.Input, elem)
		out := b.GlobalBuffer("out", elem)
		sums := b.GlobalBuffer("sums", elem)
		tmp := b.SharedArray("tmp", elem, B)
		tid := kir.Bi(kir.TidX)

		gid := b.Declare("gid", b.GlobalIDX())
		b.Store(tmp, tid, b.Load(in, gid))
		b.Barrier()
		b.ForUnroll("p", kir.U(0), kir.U(uint32(rounds)), kir.U(1), s.Unroll, func(pv kir.Expr) {
			dd := kir.Shr(kir.U(uint32(B/2)), pv)
			off := kir.Shl(kir.U(1), pv)
			b.If(kir.Lt(tid, dd), func() {
				ai := b.Declare("ai", kir.Sub(kir.Mul(off, kir.Add(kir.Mul(tid, kir.U(2)), kir.U(1))), kir.U(1)))
				bi := b.Declare("bi", kir.Sub(kir.Mul(off, kir.Add(kir.Mul(tid, kir.U(2)), kir.U(2))), kir.U(1)))
				b.Store(tmp, bi, p.Combine.Expr(b.Load(tmp, bi), b.Load(tmp, ai)))
			})
			b.Barrier()
		})
		b.If(kir.Eq(tid, kir.U(0)), func() {
			b.Store(sums, kir.Bi(kir.CtaidX), b.Load(tmp, kir.U(uint32(B-1))))
			b.Store(tmp, kir.U(uint32(B-1)), identityExpr(elem, p.Identity))
		})
		b.Barrier()
		b.ForUnroll("q", kir.U(0), kir.U(uint32(rounds)), kir.U(1), s.Unroll, func(q kir.Expr) {
			dd := kir.Shl(kir.U(1), q)
			off := kir.Shr(kir.U(uint32(B/2)), q)
			b.If(kir.Lt(tid, dd), func() {
				ai := b.Declare("ai", kir.Sub(kir.Mul(off, kir.Add(kir.Mul(tid, kir.U(2)), kir.U(1))), kir.U(1)))
				bi := b.Declare("bi", kir.Sub(kir.Mul(off, kir.Add(kir.Mul(tid, kir.U(2)), kir.U(2))), kir.U(1)))
				t := b.Declare("t", b.Load(tmp, ai))
				b.Store(tmp, ai, b.Load(tmp, bi))
				b.Store(tmp, bi, p.Combine.Expr(b.Load(tmp, bi), t))
			})
			b.Barrier()
		})
		b.Store(out, gid, b.Load(tmp, tid))
		k, err := b.Build()
		if err != nil {
			return err
		}
		l.Kernels = append(l.Kernels, k)
	}

	// Second level: one thread exclusive-scans the per-block sums in place.
	sumsName := fmt.Sprintf("%s_%s_sums", p.Name, m)
	{
		b := kir.NewKernel(sumsName)
		sums := b.GlobalBuffer("sums", elem)
		cnt := b.ScalarParam("n", kir.U32)
		gid := b.Declare("gid", b.GlobalIDX())
		b.If(kir.Eq(gid, kir.U(0)), func() {
			acc := b.Declare("acc", identityExpr(elem, p.Identity))
			b.For("i", kir.U(0), cnt, kir.U(1), func(i kir.Expr) {
				v := b.Declare("v", b.Load(sums, i))
				b.Store(sums, i, acc)
				b.Assign(acc, p.Combine.Expr(acc, v))
			})
		})
		k, err := b.Build()
		if err != nil {
			return err
		}
		l.Kernels = append(l.Kernels, k)
	}

	// Third level: fold each block's scanned base into its tile.
	addName := fmt.Sprintf("%s_%s_add", p.Name, m)
	{
		b := kir.NewKernel(addName)
		out := b.GlobalBuffer("out", elem)
		sums := b.GlobalBuffer("sums", elem)
		gid := b.Declare("gid", b.GlobalIDX())
		b.Store(out, gid, p.Combine.Expr(b.Load(out, gid), b.Load(sums, kir.Bi(kir.CtaidX))))
		k, err := b.Build()
		if err != nil {
			return err
		}
		l.Kernels = append(l.Kernels, k)
	}

	l.Launches = append(l.Launches,
		Launch{Kernel: blockName, GridX: groups, GridY: 1, BlockX: B, BlockY: 1,
			Args: []LaunchArg{BufArg(p.Input), BufArg("out"), BufArg("sums")}},
		Launch{Kernel: sumsName, GridX: 1, GridY: 1, BlockX: 1, BlockY: 1,
			Args: []LaunchArg{BufArg("sums"), ValArg(uint32(groups))}},
		Launch{Kernel: addName, GridX: groups, GridY: 1, BlockX: B, BlockY: 1,
			Args: []LaunchArg{BufArg("out"), BufArg("sums")}},
	)
	l.Out = "out"
	return nil
}

// stencilRadius is the guard band: taps outside it would read out of
// bounds.
func stencilRadius(taps []Tap) int {
	r := 0
	for _, t := range taps {
		for _, d := range []int{t.DY, t.DX} {
			if d > r {
				r = d
			}
			if -d > r {
				r = -d
			}
		}
	}
	return r
}

func lowerStencil(l *Lowered, p *Stencil2DProg, s Schedule, shape Shape) error {
	w, h := shape.W, shape.H
	if w <= 0 || h <= 0 {
		return fmt.Errorf("pattern: lower %s: need W, H > 0", p.Name)
	}
	if s.ConstCoeff && len(p.Coeffs) == 0 {
		return fmt.Errorf("pattern: lower %s: ConstCoeff without coefficients", p.Name)
	}
	B := s.BlockX
	r := stencilRadius(p.Taps)

	kname := fmt.Sprintf("%s_%s", p.Name, s.mangleIdent())
	b := kir.NewKernel(kname)
	in := b.GlobalBuffer(p.Input, kir.F32)
	var filt kir.Buf
	var args []LaunchArg
	args = append(args, BufArg(p.Input))
	if len(p.Coeffs) > 0 {
		if s.ConstCoeff {
			filt = b.ConstBuffer("filt", kir.F32)
		} else {
			filt = b.GlobalBuffer("filt", kir.F32)
		}
		args = append(args, BufArg("filt"))
	}
	out := b.GlobalBuffer("out", kir.F32)
	args = append(args, BufArg("out"))
	wp := b.ScalarParam("w", kir.U32)
	hp := b.ScalarParam("h", kir.U32)
	args = append(args, ValArg(uint32(w)), ValArg(uint32(h)))

	x := b.Declare("x", b.GlobalIDX())
	y := b.Declare("y", b.GlobalIDY())
	inside := kir.LAnd(
		kir.LAnd(kir.Ge(x, kir.U(uint32(r))), kir.Lt(x, kir.Sub(wp, kir.U(uint32(r))))),
		kir.LAnd(kir.Ge(y, kir.U(uint32(r))), kir.Lt(y, kir.Sub(hp, kir.U(uint32(r))))))
	b.If(inside, func() {
		fnArgs := make([]kir.Expr, 0, len(p.Fn.Params))
		for _, t := range p.Taps {
			row := kir.Add(y, kir.CastTo(kir.U32, kir.I(int32(t.DY))))
			col := kir.Add(x, kir.CastTo(kir.U32, kir.I(int32(t.DX))))
			fnArgs = append(fnArgs, b.Load(in, kir.Add(kir.Mul(row, wp), col)))
		}
		if len(p.Coeffs) > 0 {
			for j := range p.Taps {
				fnArgs = append(fnArgs, b.Load(filt, kir.U(uint32(j))))
			}
		}
		b.Store(out, kir.Add(kir.Mul(y, wp), x), p.Fn.Expr(fnArgs...))
	})
	k, err := b.Build()
	if err != nil {
		return err
	}

	l.Bufs = append(l.Bufs, BufSpec{Name: p.Input, Words: w * h, Space: kir.Global, Role: RoleInput})
	if len(p.Coeffs) > 0 {
		space := kir.Global
		if s.ConstCoeff {
			space = kir.Const
		}
		init := make([]uint32, len(p.Coeffs))
		for i, c := range p.Coeffs {
			init[i] = math.Float32bits(c)
		}
		l.Bufs = append(l.Bufs, BufSpec{Name: "filt", Words: len(p.Coeffs), Space: space, Role: RoleCoeff, Init: init})
	}
	l.Bufs = append(l.Bufs, BufSpec{Name: "out", Words: w * h, Space: kir.Global, Role: RoleOutput})
	l.Kernels = append(l.Kernels, k)
	l.Launches = append(l.Launches, Launch{
		Kernel: kname,
		GridX:  ceilDiv(w, B), GridY: ceilDiv(h, B),
		BlockX: B, BlockY: B,
		Args: args,
	})
	l.Out = "out"
	return nil
}

func lowerMatMul(l *Lowered, p *MatMulProg, s Schedule, shape Shape) error {
	n := shape.N
	if n <= 0 {
		return fmt.Errorf("pattern: lower %s: need N > 0", p.Name)
	}
	B := s.BlockX
	if B <= 0 || n%B != 0 {
		return fmt.Errorf("pattern: lower %s: matmul needs N %% block == 0 (n=%d, block=%d)", p.Name, n, B)
	}

	kname := fmt.Sprintf("%s_%s", p.Name, s.mangleIdent())
	b := kir.NewKernel(kname)
	a := b.GlobalBuffer("A", kir.F32)
	bm := b.GlobalBuffer("B", kir.F32)
	c := b.GlobalBuffer("C", kir.F32)
	np := b.ScalarParam("n", kir.U32)

	if s.Tile {
		as := b.SharedArray("As", kir.F32, B*B)
		bs := b.SharedArray("Bs", kir.F32, B*B)
		tx := kir.Bi(kir.TidX)
		ty := kir.Bi(kir.TidY)
		row := b.Declare("row", b.GlobalIDY())
		col := b.Declare("col", b.GlobalIDX())
		acc := b.Declare("acc", kir.F(0))
		tiles := b.Declare("tiles", kir.Div(np, kir.U(uint32(B))))
		b.For("t", kir.U(0), tiles, kir.U(1), func(t kir.Expr) {
			b.Store(as, kir.Add(kir.Mul(ty, kir.U(uint32(B))), tx),
				b.Load(a, kir.Add(kir.Mul(row, np), kir.Add(kir.Mul(t, kir.U(uint32(B))), tx))))
			b.Store(bs, kir.Add(kir.Mul(ty, kir.U(uint32(B))), tx),
				b.Load(bm, kir.Add(kir.Mul(kir.Add(kir.Mul(t, kir.U(uint32(B))), ty), np), col)))
			b.Barrier()
			b.ForUnroll("k", kir.U(0), kir.U(uint32(B)), kir.U(1), s.Unroll, func(k kir.Expr) {
				b.Assign(acc, kir.Add(acc, kir.Mul(
					b.Load(as, kir.Add(kir.Mul(ty, kir.U(uint32(B))), k)),
					b.Load(bs, kir.Add(kir.Mul(k, kir.U(uint32(B))), tx)))))
			})
			b.Barrier()
		})
		b.Store(c, kir.Add(kir.Mul(row, np), col), acc)
	} else {
		// Same k-ascending accumulation order as the tiled form, so both
		// schedules produce bit-identical results.
		row := b.Declare("row", b.GlobalIDY())
		col := b.Declare("col", b.GlobalIDX())
		acc := b.Declare("acc", kir.F(0))
		b.For("k", kir.U(0), np, kir.U(1), func(k kir.Expr) {
			b.Assign(acc, kir.Add(acc, kir.Mul(
				b.Load(a, kir.Add(kir.Mul(row, np), k)),
				b.Load(bm, kir.Add(kir.Mul(k, np), col)))))
		})
		b.Store(c, kir.Add(kir.Mul(row, np), col), acc)
	}
	k, err := b.Build()
	if err != nil {
		return err
	}

	l.Bufs = append(l.Bufs,
		BufSpec{Name: "A", Words: n * n, Space: kir.Global, Role: RoleInput},
		BufSpec{Name: "B", Words: n * n, Space: kir.Global, Role: RoleInput},
		BufSpec{Name: "C", Words: n * n, Space: kir.Global, Role: RoleOutput},
	)
	l.Kernels = append(l.Kernels, k)
	l.Launches = append(l.Launches, Launch{
		Kernel: kname,
		GridX:  n / B, GridY: n / B,
		BlockX: B, BlockY: B,
		Args: []LaunchArg{BufArg("A"), BufArg("B"), BufArg("C"), ValArg(uint32(n))},
	})
	l.Out = "C"
	return nil
}
