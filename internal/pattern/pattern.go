// Package pattern is the algorithmic-skeleton layer over KIR: typed
// map/zip/reduce/scan/stencil combinators with a sequential host evaluator
// as the semantic reference, a lowering pass that turns one (program,
// schedule) pair into concrete KIR kernels and launches, and a rewrite-rule
// catalogue (fusion, shared-memory tiling with tree reduction, loop
// unrolling, thread coarsening, constant-memory coefficient placement)
// expressed as schedule dimensions, in the style of Steuwer et al.
// (arXiv:1502.02389).
//
// The contract that makes autotuning safe is bit-identity: for every legal
// schedule s, executing Lower(p, s) — on the reference executor or on any
// simulated device through either toolchain — produces outputs bitwise
// equal to Eval(p, s). The evaluator is schedule-aware: it replays the
// exact floating-point combination order the lowered kernels perform, and
// both sides evaluate scalar arithmetic through the single shared
// kir.EvalExpr interpreter, so a rewrite rule cannot silently change
// results. Rules that reassociate floats (tree vs sequential reduction)
// therefore change Eval's answer in lockstep with the kernel's, and the
// benchmark layer's tolerance checks remain the arbiter of whether such a
// schedule is acceptable for a float workload.
package pattern

import (
	"fmt"

	"gpucmp/internal/kir"
)

// FnParam is one parameter of an element function.
type FnParam struct {
	Name string
	T    kir.Type
}

// Fn is a pure element function: an expression over its parameters only —
// no loads, no kernel parameters, no work-item builtins. Lowering inlines
// it by substitution; the evaluator runs it through kir.EvalExpr.
type Fn struct {
	Params []FnParam
	Body   kir.Expr
}

// X builds a reference to an element-function parameter, for assembling
// Fn bodies.
func X(name string, t kir.Type) kir.Expr { return &kir.VarRef{Name: name, T: t} }

// Validate checks purity and that every variable the body reads is a
// declared parameter.
func (f Fn) Validate() error {
	if f.Body == nil {
		return fmt.Errorf("pattern: fn has no body")
	}
	seen := map[string]bool{}
	for _, p := range f.Params {
		if seen[p.Name] {
			return fmt.Errorf("pattern: fn has duplicate parameter %q", p.Name)
		}
		seen[p.Name] = true
	}
	if err := checkPure(f.Body); err != nil {
		return err
	}
	reads := map[string]bool{}
	kir.ReadVars(f.Body, reads)
	for name := range reads {
		if !seen[name] {
			return fmt.Errorf("pattern: fn body reads %q, not a parameter", name)
		}
	}
	return nil
}

// checkPure rejects expression leaves that would make an element function
// depend on anything but its arguments.
func checkPure(e kir.Expr) error {
	switch e := e.(type) {
	case nil:
		return nil
	case *kir.ConstInt, *kir.ConstFloat, *kir.VarRef:
		return nil
	case *kir.ParamRef:
		return fmt.Errorf("pattern: fn body reads kernel parameter %q; element functions must be pure", e.Name)
	case *kir.Builtin:
		return fmt.Errorf("pattern: fn body reads builtin %s; element functions must be pure", e.Kind)
	case *kir.Load:
		return fmt.Errorf("pattern: fn body loads from %q; element functions must be pure", e.Buf)
	case *kir.Bin:
		if err := checkPure(e.L); err != nil {
			return err
		}
		return checkPure(e.R)
	case *kir.Un:
		return checkPure(e.X)
	case *kir.Sel:
		if err := checkPure(e.Cond); err != nil {
			return err
		}
		if err := checkPure(e.A); err != nil {
			return err
		}
		return checkPure(e.B)
	case *kir.Cast:
		return checkPure(e.X)
	default:
		return fmt.Errorf("pattern: fn body has unknown expression %T", e)
	}
}

// Ret returns the element function's result type.
func (f Fn) Ret() kir.Type { return f.Body.Type() }

// Expr instantiates the function body with the given argument expressions
// (one per parameter, in order), the lowering-side application.
func (f Fn) Expr(args ...kir.Expr) kir.Expr {
	if len(args) != len(f.Params) {
		panic(fmt.Sprintf("pattern: fn applied to %d args, has %d params", len(args), len(f.Params)))
	}
	e := kir.CloneExpr(f.Body)
	for i, p := range f.Params {
		e = kir.SubstExpr(e, p.Name, args[i])
	}
	return e
}

// Eval applies the function to concrete 32-bit values, the evaluator-side
// application. Both sides share kir's expression semantics.
func (f Fn) Eval(args ...uint32) uint32 {
	if len(args) != len(f.Params) {
		panic(fmt.Sprintf("pattern: fn applied to %d args, has %d params", len(args), len(f.Params)))
	}
	vars := make(map[string]uint32, len(args))
	for i, p := range f.Params {
		vars[p.Name] = args[i]
	}
	return kir.EvalExpr(f.Body, kir.PureEnv{Vars: vars})
}

// Node is one stage of an elementwise dataflow graph: either an input
// buffer read at the current index, or the application of an element
// function to the values of its argument nodes at the same index. Map and
// Zip build Apply nodes; composition is nesting.
type Node struct {
	Input string // non-empty: leaf reading Input[i]
	T     kir.Type
	Fn    Fn
	Args  []*Node
}

// In builds an input leaf.
func In(name string, t kir.Type) *Node { return &Node{Input: name, T: t} }

// Map applies f elementwise to one stream.
func Map(f Fn, x *Node) *Node { return apply(f, x) }

// Zip applies f elementwise across two streams.
func Zip(f Fn, x, y *Node) *Node { return apply(f, x, y) }

// ZipN applies f elementwise across any number of streams.
func ZipN(f Fn, xs ...*Node) *Node { return apply(f, xs...) }

func apply(f Fn, xs ...*Node) *Node {
	return &Node{Fn: f, Args: xs, T: f.Ret()}
}

// Elem returns the node's element type.
func (n *Node) Elem() kir.Type { return n.T }

// validateNode checks arity and element types through the graph.
func validateNode(n *Node) error {
	if n == nil {
		return fmt.Errorf("pattern: nil node")
	}
	if n.Input != "" {
		if len(n.Args) != 0 {
			return fmt.Errorf("pattern: input node %q has arguments", n.Input)
		}
		return nil
	}
	if err := n.Fn.Validate(); err != nil {
		return err
	}
	if len(n.Args) == 0 {
		return fmt.Errorf("pattern: apply node has no arguments")
	}
	if len(n.Args) != len(n.Fn.Params) {
		return fmt.Errorf("pattern: apply node has %d arguments for a %d-parameter fn", len(n.Args), len(n.Fn.Params))
	}
	for i, a := range n.Args {
		if err := validateNode(a); err != nil {
			return err
		}
		if a.Elem() != n.Fn.Params[i].T {
			return fmt.Errorf("pattern: apply argument %d is %s, fn parameter %q wants %s",
				i, a.Elem(), n.Fn.Params[i].Name, n.Fn.Params[i].T)
		}
	}
	return nil
}

// nodeInputs appends the distinct input names of the graph in first-use
// (depth-first, argument-order) order.
func nodeInputs(n *Node, seen map[string]bool, out *[]string) {
	if n == nil {
		return
	}
	if n.Input != "" {
		if !seen[n.Input] {
			seen[n.Input] = true
			*out = append(*out, n.Input)
		}
		return
	}
	for _, a := range n.Args {
		nodeInputs(a, seen, out)
	}
}

// nodeDepth counts Apply stages (0 for a bare input).
func nodeDepth(n *Node) int {
	if n == nil || n.Input != "" {
		return 0
	}
	d := 0
	for _, a := range n.Args {
		if ad := nodeDepth(a); ad > d {
			d = ad
		}
	}
	return d + 1
}

// Kind enumerates the program skeletons.
type Kind int

const (
	KindMap Kind = iota
	KindReduce
	KindScan
	KindStencil2D
	KindMatMul
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindMap:
		return "map"
	case KindReduce:
		return "reduce"
	case KindScan:
		return "scan"
	case KindStencil2D:
		return "stencil2d"
	case KindMatMul:
		return "matmul"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Program is one top-level pattern program.
type Program interface {
	ProgName() string
	Kind() Kind
	Validate() error
	// Inputs lists the input buffer names in canonical (parameter) order.
	Inputs() []string
}

// MapProg computes out[i] = root(i) for i < n.
type MapProg struct {
	Name string
	Root *Node
}

// ProgName returns the program name.
func (p *MapProg) ProgName() string { return p.Name }

// Kind returns KindMap.
func (p *MapProg) Kind() Kind { return KindMap }

// Inputs lists input buffers in first-use order.
func (p *MapProg) Inputs() []string {
	var out []string
	nodeInputs(p.Root, map[string]bool{}, &out)
	return out
}

// Validate checks the dataflow graph.
func (p *MapProg) Validate() error {
	if p.Name == "" {
		return fmt.Errorf("pattern: map program has no name")
	}
	if err := validateNode(p.Root); err != nil {
		return err
	}
	if nodeDepth(p.Root) == 0 {
		return fmt.Errorf("pattern: map program %q is a bare input; apply at least one fn", p.Name)
	}
	return nil
}

// ReduceProg folds root(0..n) with a binary combine, producing one partial
// per work-group (the host finishes the fold, as in SHOC). Identity is the
// bit pattern of the combine's identity element, used for out-of-range
// lanes.
type ReduceProg struct {
	Name     string
	Root     *Node
	Combine  Fn // 2-ary, associative, with Identity as identity
	Identity uint32
}

// ProgName returns the program name.
func (p *ReduceProg) ProgName() string { return p.Name }

// Kind returns KindReduce.
func (p *ReduceProg) Kind() Kind { return KindReduce }

// Inputs lists input buffers in first-use order.
func (p *ReduceProg) Inputs() []string {
	var out []string
	nodeInputs(p.Root, map[string]bool{}, &out)
	return out
}

// Validate checks the graph and the combine's shape.
func (p *ReduceProg) Validate() error {
	if p.Name == "" {
		return fmt.Errorf("pattern: reduce program has no name")
	}
	if err := validateNode(p.Root); err != nil {
		return err
	}
	return checkCombine(p.Combine, p.Root.Elem())
}

// ScanProg computes the exclusive prefix fold of Input under Combine, in
// the three-kernel multi-level shape (per-block Blelloch scan, block-sums
// scan, uniform add).
type ScanProg struct {
	Name     string
	Input    string
	Elem     kir.Type
	Combine  Fn
	Identity uint32
}

// ProgName returns the program name.
func (p *ScanProg) ProgName() string { return p.Name }

// Kind returns KindScan.
func (p *ScanProg) Kind() Kind { return KindScan }

// Inputs lists the single input buffer.
func (p *ScanProg) Inputs() []string { return []string{p.Input} }

// Validate checks the combine's shape.
func (p *ScanProg) Validate() error {
	if p.Name == "" {
		return fmt.Errorf("pattern: scan program has no name")
	}
	if p.Input == "" {
		return fmt.Errorf("pattern: scan program %q has no input", p.Name)
	}
	return checkCombine(p.Combine, p.Elem)
}

func checkCombine(f Fn, elem kir.Type) error {
	if err := f.Validate(); err != nil {
		return err
	}
	if len(f.Params) != 2 {
		return fmt.Errorf("pattern: combine must be binary, has %d params", len(f.Params))
	}
	if f.Params[0].T != elem || f.Params[1].T != elem || f.Ret() != elem {
		return fmt.Errorf("pattern: combine must be %s x %s -> %s", elem, elem, elem)
	}
	return nil
}

// Tap is one stencil offset.
type Tap struct {
	DY, DX int
}

// Stencil2DProg applies Fn to a fixed neighbourhood of Input at every
// interior point of a w x h grid; border cells pass through whatever the
// output buffer already holds. Fn takes one parameter per tap, in tap
// order; when Coeffs is non-empty it additionally takes one coefficient
// parameter per tap, bound to a device-side coefficient buffer whose
// memory space (constant vs global) is a schedule decision — the Sobel
// placement question of the paper's Fig. 8.
type Stencil2DProg struct {
	Name   string
	Input  string
	Taps   []Tap
	Coeffs []float32
	Fn     Fn
}

// ProgName returns the program name.
func (p *Stencil2DProg) ProgName() string { return p.Name }

// Kind returns KindStencil2D.
func (p *Stencil2DProg) Kind() Kind { return KindStencil2D }

// Inputs lists the single input buffer.
func (p *Stencil2DProg) Inputs() []string { return []string{p.Input} }

// Validate checks tap/parameter correspondence.
func (p *Stencil2DProg) Validate() error {
	if p.Name == "" {
		return fmt.Errorf("pattern: stencil program has no name")
	}
	if p.Input == "" {
		return fmt.Errorf("pattern: stencil program %q has no input", p.Name)
	}
	if len(p.Taps) == 0 {
		return fmt.Errorf("pattern: stencil program %q has no taps", p.Name)
	}
	if err := p.Fn.Validate(); err != nil {
		return err
	}
	want := len(p.Taps)
	if len(p.Coeffs) > 0 {
		if len(p.Coeffs) != len(p.Taps) {
			return fmt.Errorf("pattern: stencil program %q has %d coeffs for %d taps", p.Name, len(p.Coeffs), len(p.Taps))
		}
		want *= 2
	}
	if len(p.Fn.Params) != want {
		return fmt.Errorf("pattern: stencil fn has %d params, want %d (taps then coeffs)", len(p.Fn.Params), want)
	}
	for _, prm := range p.Fn.Params {
		if prm.T != kir.F32 {
			return fmt.Errorf("pattern: stencil fn parameter %q must be f32", prm.Name)
		}
	}
	if p.Fn.Ret() != kir.F32 {
		return fmt.Errorf("pattern: stencil fn must return f32")
	}
	return nil
}

// MatMulProg is C = A x B over square n x n f32 matrices: the composition
// of a 2-D map over (row, col) with an inner k-reduce of A[row,k]*B[k,col],
// accumulated in ascending k — the association both the naive and the
// shared-memory-tiled lowerings preserve, so the tiling rewrite is
// bit-exact.
type MatMulProg struct {
	Name string
}

// ProgName returns the program name.
func (p *MatMulProg) ProgName() string { return p.Name }

// Kind returns KindMatMul.
func (p *MatMulProg) Kind() Kind { return KindMatMul }

// Inputs lists the two matrices.
func (p *MatMulProg) Inputs() []string { return []string{"A", "B"} }

// Validate checks the name.
func (p *MatMulProg) Validate() error {
	if p.Name == "" {
		return fmt.Errorf("pattern: matmul program has no name")
	}
	return nil
}

// Shape carries the concrete problem size a lowering is instantiated for:
// N for the 1-D skeletons and the matrix dimension, W/H for stencils.
type Shape struct {
	N int `json:"n,omitempty"`
	W int `json:"w,omitempty"`
	H int `json:"h,omitempty"`
}
