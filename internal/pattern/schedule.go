package pattern

// The schedule is the rewrite-rule state of a program: each field is the
// knob one semantics-preserving rewrite toggles (fusion, tree reduction in
// shared memory, shared-memory tiling, unrolling, thread coarsening,
// constant-memory coefficient placement). Canonical(p) is the schedule
// whose lowering reproduces the hand-written internal/bench kernel's
// floating-point association exactly; Space(p) is the closure of the
// canonical schedule under every applicable rule, which is what the
// autotuner searches.

import (
	"fmt"
	"strconv"
	"strings"
)

// Schedule selects one lowering of a program. The zero value is invalid;
// start from Canonical.
type Schedule struct {
	// BlockX is the work-group width: threads per group for 1-D skeletons,
	// the side of the square group (and the tile) for stencil and matmul.
	BlockX int `json:"block_x"`
	// Coarsen makes each map thread process this many consecutive
	// elements (thread coarsening / vectorise-by-k). 1 elsewhere.
	Coarsen int `json:"coarsen,omitempty"`
	// Unroll, when nonzero, attaches "#pragma unroll" to the lowering's
	// fixed-trip inner loop (reduction rounds, scan sweeps, the matmul
	// k-tile loop, the map coarsening loop); kir.UnrollFull asks for
	// complete unrolling.
	Unroll int `json:"unroll,omitempty"`
	// Fuse inlines elementwise producer chains into the consumer kernel;
	// off, every Apply stage is materialised through a temporary global
	// buffer by its own kernel.
	Fuse bool `json:"fuse,omitempty"`
	// TreeReduce reduces each block's shared-memory tile by parallel
	// halving instead of a sequential fold by thread 0.
	TreeReduce bool `json:"tree_reduce,omitempty"`
	// Tile stages matmul operands through shared-memory tiles.
	Tile bool `json:"tile,omitempty"`
	// ConstCoeff places stencil coefficients in constant memory instead of
	// global memory.
	ConstCoeff bool `json:"const_coeff,omitempty"`
}

func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}

// Mangle renders the schedule as a short stable string, embedded in
// generated kernel names (so distinct schedules never collide in the
// process-wide compile cache) and carried as bench.Config.Pattern through
// the /run API and the scheduler's job key. Every Schedule field
// participates; schedule_test.go audits that by reflection.
func (s Schedule) Mangle() string {
	return fmt.Sprintf("b%d.c%d.u%d.f%d.r%d.t%d.k%d",
		s.BlockX, s.Coarsen, s.Unroll, b2i(s.Fuse), b2i(s.TreeReduce), b2i(s.Tile), b2i(s.ConstCoeff))
}

// ParseSchedule inverts Mangle.
func ParseSchedule(m string) (Schedule, error) {
	parts := strings.Split(m, ".")
	if len(parts) != 7 {
		return Schedule{}, fmt.Errorf("pattern: bad schedule %q: want 7 dot-separated fields", m)
	}
	var s Schedule
	for i, spec := range []struct {
		tag string
		num *int
		fl  *bool
	}{
		{tag: "b", num: &s.BlockX},
		{tag: "c", num: &s.Coarsen},
		{tag: "u", num: &s.Unroll},
		{tag: "f", fl: &s.Fuse},
		{tag: "r", fl: &s.TreeReduce},
		{tag: "t", fl: &s.Tile},
		{tag: "k", fl: &s.ConstCoeff},
	} {
		p := parts[i]
		if !strings.HasPrefix(p, spec.tag) {
			return Schedule{}, fmt.Errorf("pattern: bad schedule %q: field %d should start with %q", m, i, spec.tag)
		}
		v, err := strconv.Atoi(p[len(spec.tag):])
		if err != nil {
			return Schedule{}, fmt.Errorf("pattern: bad schedule %q: field %q: %v", m, p, err)
		}
		if spec.num != nil {
			*spec.num = v
		} else {
			if v != 0 && v != 1 {
				return Schedule{}, fmt.Errorf("pattern: bad schedule %q: flag field %q must be 0 or 1", m, p)
			}
			*spec.fl = v == 1
		}
	}
	return s, nil
}

// Canonical returns the schedule whose lowering mirrors the hand-written
// benchmark kernel for the program's skeleton: block 256 (16 x 16 for the
// 2-D skeletons), fused, tree reduction, tiled matmul, coefficients in
// global memory.
func Canonical(p Program) Schedule {
	switch p.Kind() {
	case KindMap:
		return Schedule{BlockX: 256, Coarsen: 1, Fuse: true}
	case KindReduce:
		return Schedule{BlockX: 256, Coarsen: 1, Fuse: true, TreeReduce: true}
	case KindScan:
		return Schedule{BlockX: 256, Coarsen: 1, Fuse: true}
	case KindStencil2D:
		return Schedule{BlockX: 16, Coarsen: 1, Fuse: true}
	case KindMatMul:
		return Schedule{BlockX: 16, Coarsen: 1, Fuse: true, Tile: true}
	default:
		return Schedule{}
	}
}

// Rule is one semantics-preserving rewrite: Applies says whether the
// program has the dimension at all, and Options enumerates the values the
// rule can set its dimension to (the first option is the canonical one).
// Every rule is exercised against the evaluator by the soundness suite in
// rules_test.go.
type Rule struct {
	Name    string
	Applies func(p Program) bool
	Options func(p Program) []func(*Schedule)
}

func hasFusableChain(p Program) bool {
	switch p := p.(type) {
	case *MapProg:
		return nodeDepth(p.Root) >= 2
	case *ReduceProg:
		return nodeDepth(p.Root) >= 1
	default:
		return false
	}
}

// Rules returns the rewrite catalogue.
func Rules() []Rule {
	return []Rule{
		{
			Name:    "block-size",
			Applies: func(p Program) bool { return true },
			Options: func(p Program) []func(*Schedule) {
				sizes := []int{256, 128, 64}
				if p.Kind() == KindStencil2D || p.Kind() == KindMatMul {
					sizes = []int{16, 8}
				}
				var out []func(*Schedule)
				for _, b := range sizes {
					b := b
					out = append(out, func(s *Schedule) { s.BlockX = b })
				}
				return out
			},
		},
		{
			Name:    "fuse",
			Applies: hasFusableChain,
			Options: func(p Program) []func(*Schedule) {
				return []func(*Schedule){
					func(s *Schedule) { s.Fuse = true },
					func(s *Schedule) { s.Fuse = false },
				}
			},
		},
		{
			Name:    "tree-reduce",
			Applies: func(p Program) bool { return p.Kind() == KindReduce },
			Options: func(p Program) []func(*Schedule) {
				return []func(*Schedule){
					func(s *Schedule) { s.TreeReduce = true },
					func(s *Schedule) { s.TreeReduce = false },
				}
			},
		},
		{
			Name:    "tile-shared",
			Applies: func(p Program) bool { return p.Kind() == KindMatMul },
			Options: func(p Program) []func(*Schedule) {
				return []func(*Schedule){
					func(s *Schedule) { s.Tile = true },
					func(s *Schedule) { s.Tile = false },
				}
			},
		},
		{
			Name: "unroll",
			Applies: func(p Program) bool {
				// Unrolls the fixed-trip inner loop each of these lowerings has.
				switch p.Kind() {
				case KindReduce, KindScan, KindMatMul:
					return true
				default:
					return false
				}
			},
			Options: func(p Program) []func(*Schedule) {
				return []func(*Schedule){
					func(s *Schedule) { s.Unroll = 0 },
					func(s *Schedule) { s.Unroll = 4 },
				}
			},
		},
		{
			Name:    "coarsen",
			Applies: func(p Program) bool { return p.Kind() == KindMap },
			Options: func(p Program) []func(*Schedule) {
				return []func(*Schedule){
					func(s *Schedule) { s.Coarsen = 1 },
					func(s *Schedule) { s.Coarsen = 2 },
					func(s *Schedule) { s.Coarsen = 4 },
				}
			},
		},
		{
			Name: "const-coeff",
			Applies: func(p Program) bool {
				st, ok := p.(*Stencil2DProg)
				return ok && len(st.Coeffs) > 0
			},
			Options: func(p Program) []func(*Schedule) {
				return []func(*Schedule){
					func(s *Schedule) { s.ConstCoeff = false },
					func(s *Schedule) { s.ConstCoeff = true },
				}
			},
		},
	}
}

// Space enumerates the schedules reachable from Canonical(p) by every
// combination of applicable rewrite rules: the autotuner's search space.
// The canonical schedule is always the first element.
func Space(p Program) []Schedule {
	scheds := []Schedule{Canonical(p)}
	for _, r := range Rules() {
		if !r.Applies(p) {
			continue
		}
		opts := r.Options(p)
		var next []Schedule
		for _, s := range scheds {
			for _, apply := range opts {
				v := s
				apply(&v)
				next = append(next, v)
			}
		}
		scheds = next
	}
	// The product enumeration visits the all-canonical combination first,
	// so scheds[0] == Canonical(p); dedupe in case an option is a no-op.
	seen := map[string]bool{}
	var out []Schedule
	for _, s := range scheds {
		m := s.Mangle()
		if !seen[m] {
			seen[m] = true
			out = append(out, s)
		}
	}
	return out
}
