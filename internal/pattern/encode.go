package pattern

// JSON codec for pattern programs, schedules and shapes, so the fuzzer can
// pin failing programs in a corpus and CI can replay them. Element-function
// bodies reuse kir's expression codec; decoding re-validates everything, so
// a corpus entry that no longer passes Validate fails loudly instead of
// silently testing nothing.

import (
	"encoding/json"
	"fmt"

	"gpucmp/internal/kir"
)

// FnJSON is the serialised form of an element function.
type FnJSON struct {
	Params []FnParamJSON `json:"params"`
	Body   *kir.ExprJSON `json:"body"`
}

// FnParamJSON is one serialised element-function parameter.
type FnParamJSON struct {
	Name string `json:"name"`
	Type string `json:"type"`
}

// NodeJSON is the serialised form of an elementwise dataflow node.
type NodeJSON struct {
	Input string      `json:"input,omitempty"`
	Type  string      `json:"type,omitempty"` // input element type
	Fn    *FnJSON     `json:"fn,omitempty"`
	Args  []*NodeJSON `json:"args,omitempty"`
}

// TapJSON is one serialised stencil offset.
type TapJSON struct {
	DY int `json:"dy"`
	DX int `json:"dx"`
}

// ProgramJSON is the serialised form of any pattern program; Kind selects
// which fields are meaningful.
type ProgramJSON struct {
	Kind     string    `json:"kind"`
	Name     string    `json:"name"`
	Root     *NodeJSON `json:"root,omitempty"`     // map, reduce
	Combine  *FnJSON   `json:"combine,omitempty"`  // reduce, scan
	Identity uint32    `json:"identity,omitempty"` // reduce, scan
	Input    string    `json:"input,omitempty"`    // scan, stencil
	Elem     string    `json:"elem,omitempty"`     // scan
	Taps     []TapJSON `json:"taps,omitempty"`     // stencil
	Coeffs   []float32 `json:"coeffs,omitempty"`   // stencil
	Fn       *FnJSON   `json:"fn,omitempty"`       // stencil
}

func encodeFn(f Fn) *FnJSON {
	fj := &FnJSON{Body: kir.EncodeExprJSON(f.Body)}
	for _, p := range f.Params {
		fj.Params = append(fj.Params, FnParamJSON{Name: p.Name, Type: kir.TypeName(p.T)})
	}
	return fj
}

func decodeFn(fj *FnJSON) (Fn, error) {
	if fj == nil {
		return Fn{}, fmt.Errorf("pattern: decode: missing fn")
	}
	var f Fn
	for _, pj := range fj.Params {
		t, ok := kir.TypeFromName(pj.Type)
		if !ok {
			return Fn{}, fmt.Errorf("pattern: decode: fn param %q has unknown type %q", pj.Name, pj.Type)
		}
		f.Params = append(f.Params, FnParam{Name: pj.Name, T: t})
	}
	body, err := kir.DecodeExprJSON(fj.Body)
	if err != nil {
		return Fn{}, fmt.Errorf("pattern: decode: fn body: %w", err)
	}
	f.Body = body
	return f, nil
}

func encodeNode(n *Node) *NodeJSON {
	if n == nil {
		return nil
	}
	if n.Input != "" {
		return &NodeJSON{Input: n.Input, Type: kir.TypeName(n.T)}
	}
	nj := &NodeJSON{Fn: encodeFn(n.Fn)}
	for _, a := range n.Args {
		nj.Args = append(nj.Args, encodeNode(a))
	}
	return nj
}

func decodeNode(nj *NodeJSON) (*Node, error) {
	if nj == nil {
		return nil, fmt.Errorf("pattern: decode: missing node")
	}
	if nj.Input != "" {
		t, ok := kir.TypeFromName(nj.Type)
		if !ok {
			return nil, fmt.Errorf("pattern: decode: input %q has unknown type %q", nj.Input, nj.Type)
		}
		return In(nj.Input, t), nil
	}
	f, err := decodeFn(nj.Fn)
	if err != nil {
		return nil, err
	}
	args := make([]*Node, len(nj.Args))
	for i, aj := range nj.Args {
		if args[i], err = decodeNode(aj); err != nil {
			return nil, err
		}
	}
	return &Node{Fn: f, Args: args, T: f.Ret()}, nil
}

// EncodeProgram renders a program into its serialised form.
func EncodeProgram(p Program) (*ProgramJSON, error) {
	switch p := p.(type) {
	case *MapProg:
		return &ProgramJSON{Kind: "map", Name: p.Name, Root: encodeNode(p.Root)}, nil
	case *ReduceProg:
		return &ProgramJSON{Kind: "reduce", Name: p.Name, Root: encodeNode(p.Root),
			Combine: encodeFn(p.Combine), Identity: p.Identity}, nil
	case *ScanProg:
		return &ProgramJSON{Kind: "scan", Name: p.Name, Input: p.Input, Elem: kir.TypeName(p.Elem),
			Combine: encodeFn(p.Combine), Identity: p.Identity}, nil
	case *Stencil2DProg:
		pj := &ProgramJSON{Kind: "stencil2d", Name: p.Name, Input: p.Input,
			Coeffs: p.Coeffs, Fn: encodeFn(p.Fn)}
		for _, t := range p.Taps {
			pj.Taps = append(pj.Taps, TapJSON{DY: t.DY, DX: t.DX})
		}
		return pj, nil
	case *MatMulProg:
		return &ProgramJSON{Kind: "matmul", Name: p.Name}, nil
	default:
		return nil, fmt.Errorf("pattern: encode: unknown program type %T", p)
	}
}

// DecodeProgram rebuilds and re-validates a program.
func DecodeProgram(pj *ProgramJSON) (Program, error) {
	var p Program
	switch pj.Kind {
	case "map":
		root, err := decodeNode(pj.Root)
		if err != nil {
			return nil, err
		}
		p = &MapProg{Name: pj.Name, Root: root}
	case "reduce":
		root, err := decodeNode(pj.Root)
		if err != nil {
			return nil, err
		}
		comb, err := decodeFn(pj.Combine)
		if err != nil {
			return nil, err
		}
		p = &ReduceProg{Name: pj.Name, Root: root, Combine: comb, Identity: pj.Identity}
	case "scan":
		elem, ok := kir.TypeFromName(pj.Elem)
		if !ok {
			return nil, fmt.Errorf("pattern: decode: scan %q has unknown elem type %q", pj.Name, pj.Elem)
		}
		comb, err := decodeFn(pj.Combine)
		if err != nil {
			return nil, err
		}
		p = &ScanProg{Name: pj.Name, Input: pj.Input, Elem: elem, Combine: comb, Identity: pj.Identity}
	case "stencil2d":
		f, err := decodeFn(pj.Fn)
		if err != nil {
			return nil, err
		}
		sp := &Stencil2DProg{Name: pj.Name, Input: pj.Input, Coeffs: pj.Coeffs, Fn: f}
		for _, t := range pj.Taps {
			sp.Taps = append(sp.Taps, Tap{DY: t.DY, DX: t.DX})
		}
		p = sp
	case "matmul":
		p = &MatMulProg{Name: pj.Name}
	default:
		return nil, fmt.Errorf("pattern: decode: unknown program kind %q", pj.Kind)
	}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("pattern: decode: %w", err)
	}
	return p, nil
}

// MarshalProgram is EncodeProgram straight to JSON bytes.
func MarshalProgram(p Program) ([]byte, error) {
	pj, err := EncodeProgram(p)
	if err != nil {
		return nil, err
	}
	return json.Marshal(pj)
}

// UnmarshalProgram is DecodeProgram straight from JSON bytes.
func UnmarshalProgram(data []byte) (Program, error) {
	var pj ProgramJSON
	if err := json.Unmarshal(data, &pj); err != nil {
		return nil, err
	}
	return DecodeProgram(&pj)
}
