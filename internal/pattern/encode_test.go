package pattern

import (
	"testing"

	"gpucmp/internal/kir"
	"gpucmp/internal/workload"
)

// TestProgramCodecRoundTrip checks that every soundness-suite program
// survives JSON encode/decode with its behaviour intact (the property the
// fuzz corpus depends on): the decoded program must evaluate bitwise
// identically to the original at the canonical schedule.
func TestProgramCodecRoundTrip(t *testing.T) {
	for _, c := range soundnessCases(t) {
		data, err := MarshalProgram(c.prog)
		if err != nil {
			t.Fatalf("%s: marshal: %v", c.prog.ProgName(), err)
		}
		back, err := UnmarshalProgram(data)
		if err != nil {
			t.Fatalf("%s: unmarshal: %v", c.prog.ProgName(), err)
		}
		if back.ProgName() != c.prog.ProgName() || back.Kind() != c.prog.Kind() {
			t.Fatalf("%s: round trip changed identity: %s/%s", c.prog.ProgName(), back.ProgName(), back.Kind())
		}
		s := Canonical(c.prog)
		want, err := Eval(c.prog, s, c.shape, c.in)
		if err != nil {
			t.Fatalf("%s: eval original: %v", c.prog.ProgName(), err)
		}
		got, err := Eval(back, s, c.shape, c.in)
		if err != nil {
			t.Fatalf("%s: eval decoded: %v", c.prog.ProgName(), err)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("%s: word %d differs after codec round trip", c.prog.ProgName(), i)
			}
		}
	}
}

// TestDecodeRejectsInvalidPrograms: a corpus entry that decodes into a
// structurally invalid program must fail loudly.
func TestDecodeRejectsInvalidPrograms(t *testing.T) {
	bad := []string{
		`{"kind":"nosuch","name":"x"}`,
		`{"kind":"map","name":"x"}`,                                      // missing root
		`{"kind":"map","name":"x","root":{"input":"a","type":"nosuch"}}`, // bad type
		`{"kind":"matmul"}`,                                              // missing name
		`{"kind":"scan","name":"s","input":"a","elem":"u32"}`,            // missing combine
		`{"kind":"stencil2d","name":"st","input":"img"}`,                 // no taps
	}
	for _, data := range bad {
		if _, err := UnmarshalProgram([]byte(data)); err == nil {
			t.Errorf("UnmarshalProgram(%s) should fail", data)
		}
	}
}

// TestFnPurityRejected: element functions must not read kernel state.
func TestFnPurityRejected(t *testing.T) {
	impure := []Fn{
		{Params: []FnParam{{Name: "x", T: kir.U32}}, Body: kir.Add(X("x", kir.U32), kir.Bi(kir.TidX))},
		{Params: []FnParam{{Name: "x", T: kir.U32}}, Body: &kir.ParamRef{Name: "n", T: kir.U32}},
		{Params: []FnParam{{Name: "x", T: kir.U32}}, Body: &kir.Load{Buf: "buf", Index: kir.U(0), T: kir.U32}},
		{Params: []FnParam{{Name: "x", T: kir.U32}}, Body: X("y", kir.U32)}, // undeclared read
	}
	for i, f := range impure {
		if err := f.Validate(); err == nil {
			t.Errorf("impure fn %d validated", i)
		}
	}
}

// TestRunLoweredMatchesKernelCheck: lowered kernels must pass kir.Check
// (Lower runs it) and execute on a fresh instance decoded from KernelJSON,
// proving the generated kernels survive the same serialisation path the
// compile cache and /run API use.
func TestLoweredKernelsSurviveKernelJSON(t *testing.T) {
	p := &ReduceProg{Name: "r", Root: Map(fnSquare(), In("a", kir.F32)), Combine: fnAddF()}
	l, err := Lower(p, Canonical(p), Shape{N: 512})
	if err != nil {
		t.Fatal(err)
	}
	for i, k := range l.Kernels {
		kj := kir.EncodeKernelJSON(k)
		back, err := kir.DecodeKernelJSON(&kj)
		if err != nil {
			t.Fatalf("kernel %d: %v", i, err)
		}
		if kir.Format(back) != kir.Format(k) {
			t.Fatalf("kernel %d changed under KernelJSON round trip", i)
		}
	}
	rng := workload.NewRNG(3)
	in := EvalInputs{Bufs: map[string][]uint32{"a": f32Bits(rng.Floats(512, -1, 1))}}
	want, err := Eval(p, Canonical(p), Shape{N: 512}, in)
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunLowered(l, in)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("word %d differs", i)
		}
	}
}
