package pattern

// The reference evaluator. Eval is schedule-aware: it replays the exact
// combination order the lowered kernels perform (group tiling and tree
// rounds for reduce, the Blelloch sweeps for scan, k-ascending
// accumulation for matmul), evaluating every scalar operation through the
// same kir.EvalExpr interpreter the reference executor uses. That makes
// Eval(p, s) the bitwise ground truth for Lower(p, s) on any device:
// schedules that only reorganise work (fusion, coarsening, tiling,
// unrolling, coefficient placement) cannot change its answer, and
// schedules that reassociate floats (tree vs sequential reduction, block
// size changes in reduce/scan) change it in lockstep with the kernels.

import (
	"fmt"
	"math"
)

// EvalInputs carries concrete input data for an evaluation: one word slice
// per program input. OutInit, when non-nil, seeds the output buffer before
// the program writes it (stencil borders pass through it).
type EvalInputs struct {
	Bufs    map[string][]uint32
	OutInit []uint32
}

// evalNode computes one element of an elementwise dataflow graph.
func evalNode(n *Node, i int, bufs map[string][]uint32) uint32 {
	if n.Input != "" {
		return bufs[n.Input][i]
	}
	args := make([]uint32, len(n.Args))
	for ai, a := range n.Args {
		args[ai] = evalNode(a, i, bufs)
	}
	return n.Fn.Eval(args...)
}

// f32 arithmetic helpers that round every operation to float32 through an
// explicit bit conversion, exactly as kir.EvalExpr does (no fused
// multiply-add).
func fmul(x, y uint32) uint32 {
	return math.Float32bits(math.Float32frombits(x) * math.Float32frombits(y))
}
func fadd(x, y uint32) uint32 {
	return math.Float32bits(math.Float32frombits(x) + math.Float32frombits(y))
}

// Eval runs the program under the schedule on the host and returns the
// output buffer's words (the per-group partials for reduce).
func Eval(p Program, s Schedule, shape Shape, in EvalInputs) ([]uint32, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	for _, name := range p.Inputs() {
		need := shape.N
		if p.Kind() == KindStencil2D {
			need = shape.W * shape.H
		}
		if p.Kind() == KindMatMul {
			need = shape.N * shape.N
		}
		if len(in.Bufs[name]) < need {
			return nil, fmt.Errorf("pattern: eval %s: input %q has %d words, need %d",
				p.ProgName(), name, len(in.Bufs[name]), need)
		}
	}
	switch p := p.(type) {
	case *MapProg:
		out := make([]uint32, shape.N)
		for i := range out {
			out[i] = evalNode(p.Root, i, in.Bufs)
		}
		return out, nil

	case *ReduceProg:
		B := s.BlockX
		if !isPow2(B) || B < 2 {
			return nil, fmt.Errorf("pattern: eval %s: bad block %d", p.Name, B)
		}
		n := shape.N
		groups := ceilDiv(n, B)
		out := make([]uint32, groups)
		tile := make([]uint32, B)
		for g := 0; g < groups; g++ {
			for t := 0; t < B; t++ {
				if i := g*B + t; i < n {
					tile[t] = evalNode(p.Root, i, in.Bufs)
				} else {
					tile[t] = p.Identity
				}
			}
			if s.TreeReduce {
				for stride := B / 2; stride >= 1; stride /= 2 {
					for t := 0; t < stride; t++ {
						tile[t] = p.Combine.Eval(tile[t], tile[t+stride])
					}
				}
				out[g] = tile[0]
			} else {
				acc := tile[0]
				for t := 1; t < B; t++ {
					acc = p.Combine.Eval(acc, tile[t])
				}
				out[g] = acc
			}
		}
		return out, nil

	case *ScanProg:
		B := s.BlockX
		if !isPow2(B) || B < 2 {
			return nil, fmt.Errorf("pattern: eval %s: bad block %d", p.Name, B)
		}
		n := shape.N
		if n%B != 0 {
			return nil, fmt.Errorf("pattern: eval %s: need N %% block == 0 (n=%d, block=%d)", p.Name, n, B)
		}
		groups := n / B
		out := make([]uint32, n)
		sums := make([]uint32, groups)
		tmp := make([]uint32, B)
		for g := 0; g < groups; g++ {
			copy(tmp, in.Bufs[p.Input][g*B:(g+1)*B])
			// Upsweep.
			for off := 1; off < B; off *= 2 {
				dd := B / (2 * off)
				for t := 0; t < dd; t++ {
					ai := off*(2*t+1) - 1
					bi := off*(2*t+2) - 1
					tmp[bi] = p.Combine.Eval(tmp[bi], tmp[ai])
				}
			}
			sums[g] = tmp[B-1]
			tmp[B-1] = p.Identity
			// Downsweep.
			for dd := 1; dd < B; dd *= 2 {
				off := B / (2 * dd)
				for t := 0; t < dd; t++ {
					ai := off*(2*t+1) - 1
					bi := off*(2*t+2) - 1
					v := tmp[ai]
					tmp[ai] = tmp[bi]
					tmp[bi] = p.Combine.Eval(tmp[bi], v)
				}
			}
			copy(out[g*B:(g+1)*B], tmp)
		}
		acc := p.Identity
		for i := range sums {
			v := sums[i]
			sums[i] = acc
			acc = p.Combine.Eval(acc, v)
		}
		for g := 0; g < groups; g++ {
			for t := 0; t < B; t++ {
				out[g*B+t] = p.Combine.Eval(out[g*B+t], sums[g])
			}
		}
		return out, nil

	case *Stencil2DProg:
		w, h := shape.W, shape.H
		out := make([]uint32, w*h)
		if in.OutInit != nil {
			if len(in.OutInit) != w*h {
				return nil, fmt.Errorf("pattern: eval %s: out init has %d words, need %d", p.Name, len(in.OutInit), w*h)
			}
			copy(out, in.OutInit)
		}
		r := stencilRadius(p.Taps)
		img := in.Bufs[p.Input]
		var coeffBits []uint32
		if len(p.Coeffs) > 0 {
			coeffBits = make([]uint32, len(p.Coeffs))
			for i, c := range p.Coeffs {
				coeffBits[i] = math.Float32bits(c)
			}
		}
		args := make([]uint32, 0, len(p.Fn.Params))
		for y := r; y < h-r; y++ {
			for x := r; x < w-r; x++ {
				args = args[:0]
				for _, t := range p.Taps {
					args = append(args, img[(y+t.DY)*w+(x+t.DX)])
				}
				args = append(args, coeffBits...)
				out[y*w+x] = p.Fn.Eval(args...)
			}
		}
		return out, nil

	case *MatMulProg:
		n := shape.N
		a, bm := in.Bufs["A"], in.Bufs["B"]
		out := make([]uint32, n*n)
		for row := 0; row < n; row++ {
			for col := 0; col < n; col++ {
				acc := math.Float32bits(0)
				for k := 0; k < n; k++ {
					acc = fadd(acc, fmul(a[row*n+k], bm[k*n+col]))
				}
				out[row*n+col] = acc
			}
		}
		return out, nil

	default:
		return nil, fmt.Errorf("pattern: eval: unknown program type %T", p)
	}
}
