package pattern

// RunLowered executes a lowered program on the kir host reference
// executor: allocate the buffer set, run the launch sequence, read the
// output. It is the pattern layer's oracle between the pure evaluator and
// the compiled+simulated device pipeline.

import (
	"fmt"

	"gpucmp/internal/kir"
)

// RunLowered executes every launch of l and returns the output buffer.
// Input buffers are copied from in.Bufs; the output buffer starts from
// in.OutInit when given (stencil border passthrough), zero otherwise.
func RunLowered(l *Lowered, in EvalInputs) ([]uint32, error) {
	storage := map[string][]uint32{}
	for _, bs := range l.Bufs {
		buf := make([]uint32, bs.Words)
		switch bs.Role {
		case RoleInput:
			src, ok := in.Bufs[bs.Name]
			if !ok || len(src) < bs.Words {
				return nil, fmt.Errorf("pattern: run %s: input %q has %d words, need %d",
					l.Key, bs.Name, len(src), bs.Words)
			}
			copy(buf, src)
		case RoleCoeff:
			copy(buf, bs.Init)
		case RoleOutput:
			if in.OutInit != nil {
				if len(in.OutInit) != bs.Words {
					return nil, fmt.Errorf("pattern: run %s: out init has %d words, need %d",
						l.Key, len(in.OutInit), bs.Words)
				}
				copy(buf, in.OutInit)
			}
		}
		storage[bs.Name] = buf
	}

	kernels := map[string]*kir.Kernel{}
	for _, k := range l.Kernels {
		kernels[k.Name] = k
	}
	for _, launch := range l.Launches {
		k := kernels[launch.Kernel]
		if k == nil {
			return nil, fmt.Errorf("pattern: run %s: launch references unknown kernel %q", l.Key, launch.Kernel)
		}
		if len(launch.Args) != len(k.Params) {
			return nil, fmt.Errorf("pattern: run %s: kernel %q takes %d params, launch has %d args",
				l.Key, k.Name, len(k.Params), len(launch.Args))
		}
		cfg := kir.RunConfig{
			GridX: launch.GridX, GridY: launch.GridY,
			BlockX: launch.BlockX, BlockY: launch.BlockY,
			Buffers: map[string][]uint32{},
			Scalars: map[string]uint32{},
		}
		for i, arg := range launch.Args {
			p := k.Params[i]
			switch {
			case arg.IsVal && !p.Buffer:
				cfg.Scalars[p.Name] = arg.Val
			case !arg.IsVal && p.Buffer:
				buf, ok := storage[arg.Buf]
				if !ok {
					return nil, fmt.Errorf("pattern: run %s: launch of %q references unknown buffer %q",
						l.Key, k.Name, arg.Buf)
				}
				cfg.Buffers[p.Name] = buf
			default:
				return nil, fmt.Errorf("pattern: run %s: kernel %q param %q: buffer/scalar mismatch",
					l.Key, k.Name, p.Name)
			}
		}
		if err := kir.Run(k, cfg); err != nil {
			return nil, fmt.Errorf("pattern: run %s: %w", l.Key, err)
		}
	}
	out, ok := storage[l.Out]
	if !ok {
		return nil, fmt.Errorf("pattern: run %s: no output buffer %q", l.Key, l.Out)
	}
	return out, nil
}
