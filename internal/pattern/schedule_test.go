package pattern

import (
	"reflect"
	"testing"

	"gpucmp/internal/kir"
)

// TestMangleCoversEveryScheduleField is the reflection audit promised in
// schedule.go: adding a Schedule field without teaching Mangle about it
// would let two different schedules share a kernel name (and therefore a
// compile-cache entry), so perturbing ANY field must change the mangle.
func TestMangleCoversEveryScheduleField(t *testing.T) {
	base := Schedule{BlockX: 256, Coarsen: 1}
	rv := reflect.ValueOf(&base).Elem()
	rt := rv.Type()
	for i := 0; i < rt.NumField(); i++ {
		perturbed := base
		f := reflect.ValueOf(&perturbed).Elem().Field(i)
		switch f.Kind() {
		case reflect.Int:
			f.SetInt(f.Int() + 1)
		case reflect.Bool:
			f.SetBool(!f.Bool())
		default:
			t.Fatalf("Schedule field %s has kind %s: teach this audit (and Mangle) about it", rt.Field(i).Name, f.Kind())
		}
		if perturbed.Mangle() == base.Mangle() {
			t.Errorf("perturbing Schedule.%s does not change Mangle() = %q", rt.Field(i).Name, base.Mangle())
		}
	}
}

func TestParseScheduleRoundTrip(t *testing.T) {
	progs := []Program{
		&MapProg{Name: "m", Root: Map(fnAdd1(), Map(fnScale2(), In("a", kir.F32)))},
		&ReduceProg{Name: "r", Root: In("a", kir.F32), Combine: fnAddF()},
		&ScanProg{Name: "s", Input: "a", Elem: kir.U32, Combine: fnAddU()},
		&Stencil2DProg{Name: "st", Input: "img", Taps: []Tap{{0, 0}}, Coeffs: []float32{1},
			Fn: Fn{Params: []FnParam{{Name: "t0", T: kir.F32}, {Name: "c0", T: kir.F32}},
				Body: kir.Mul(X("t0", kir.F32), X("c0", kir.F32))}},
		&MatMulProg{Name: "mm"},
	}
	total := 0
	for _, p := range progs {
		for _, s := range Space(p) {
			total++
			got, err := ParseSchedule(s.Mangle())
			if err != nil {
				t.Fatalf("%s: %v", s.Mangle(), err)
			}
			if got != s {
				t.Fatalf("round trip %s: got %+v, want %+v", s.Mangle(), got, s)
			}
		}
	}
	if total < 20 {
		t.Fatalf("only %d schedules across all programs; rule space suspiciously small", total)
	}
	for _, bad := range []string{"", "b256", "b256.c1.u0.f1.r0.t0", "x256.c1.u0.f1.r0.t0.k0",
		"b256.c1.u0.f2.r0.t0.k0", "b25x.c1.u0.f1.r0.t0.k0"} {
		if _, err := ParseSchedule(bad); err == nil {
			t.Errorf("ParseSchedule(%q) should fail", bad)
		}
	}
}

// TestSpaceUniqueAndCanonicalFirst checks Space's two structural promises.
func TestSpaceUniqueAndCanonicalFirst(t *testing.T) {
	p := &ReduceProg{Name: "r", Root: Map(fnSquare(), In("a", kir.F32)), Combine: fnAddF()}
	space := Space(p)
	if space[0] != Canonical(p) {
		t.Fatalf("space[0] = %+v, want canonical %+v", space[0], Canonical(p))
	}
	seen := map[string]bool{}
	for _, s := range space {
		m := s.Mangle()
		if seen[m] {
			t.Fatalf("duplicate schedule %s in space", m)
		}
		seen[m] = true
	}
	// block(3) x fuse(2) x tree(2) x unroll(2) = 24 for a fusable reduce.
	if len(space) != 24 {
		t.Fatalf("reduce space has %d schedules, want 24", len(space))
	}
}

func TestLowerRejectsIllegalSchedules(t *testing.T) {
	rp := &ReduceProg{Name: "r", Root: In("a", kir.F32), Combine: fnAddF()}
	sp := &ScanProg{Name: "s", Input: "a", Elem: kir.U32, Combine: fnAddU()}
	mp := &MatMulProg{Name: "mm"}
	cases := []struct {
		name  string
		prog  Program
		sched Schedule
		shape Shape
	}{
		{"reduce-nonpow2", rp, Schedule{BlockX: 100, Coarsen: 1, TreeReduce: true}, Shape{N: 64}},
		{"reduce-coarsen", rp, Schedule{BlockX: 64, Coarsen: 2, TreeReduce: true}, Shape{N: 64}},
		{"scan-misaligned", sp, Schedule{BlockX: 256, Coarsen: 1}, Shape{N: 100}},
		{"matmul-misaligned", mp, Schedule{BlockX: 16, Coarsen: 1, Tile: true}, Shape{N: 30}},
		{"zero-block", mp, Schedule{BlockX: 0, Coarsen: 1}, Shape{N: 32}},
		{"zero-coarsen", mp, Schedule{BlockX: 16, Coarsen: 0}, Shape{N: 32}},
	}
	for _, c := range cases {
		if _, err := Lower(c.prog, c.sched, c.shape); err == nil {
			t.Errorf("%s: Lower should reject schedule %+v", c.name, c.sched)
		}
	}
}

// TestCanonicalReduceMatchesHandWrittenShape pins the structural claim the
// parity gate rests on: at the canonical schedule the generated reduce
// kernel has the hand-written kernel's shape — one shared tile of 256
// words, log2(256) = 8 tree rounds, identity-guarded load.
func TestCanonicalReduceMatchesHandWrittenShape(t *testing.T) {
	p := &ReduceProg{Name: "r", Root: In("in", kir.F32), Combine: fnAddF()}
	l, err := Lower(p, Canonical(p), Shape{N: 1 << 12})
	if err != nil {
		t.Fatal(err)
	}
	if len(l.Kernels) != 1 {
		t.Fatalf("canonical reduce lowered to %d kernels, want 1", len(l.Kernels))
	}
	k := l.Kernels[0]
	if len(k.SharedArrays) != 1 || k.SharedArrays[0].Count != 256 {
		t.Fatalf("canonical reduce shared arrays: %+v, want one 256-word tile", k.SharedArrays)
	}
	if got := l.Launches[0]; got.BlockX != 256 || got.GridX != (1<<12)/256 {
		t.Fatalf("canonical reduce launch %+v", got)
	}
}
