module gpucmp

go 1.22
