// Sparse: the Section V SPMV portability study as an application. The same
// CSR kernels run under OpenCL on a GPU and on the CPU device; the
// warp-oriented CSR-vector kernel wins on the GPU but collapses on the
// CPU, where a 32-wide "warp" mostly idles — the paper's observation that
// "there are orders of magnitude less processing cores in CPUs".
package main

import (
	"fmt"
	"log"

	"gpucmp/internal/arch"
	"gpucmp/internal/bench"
	"gpucmp/internal/stats"
)

func main() {
	tb := stats.NewTable("SPMV (CSR), OpenCL, 16384 rows, ~8 nnz/row",
		"device", "kernel", "GFlops/s", "verified")
	for _, a := range []*arch.Device{arch.GTX480(), arch.Intel920()} {
		for _, vector := range []bool{false, true} {
			d, err := bench.NewOpenCLDriver(a)
			if err != nil {
				log.Fatal(err)
			}
			res, err := bench.RunSPMV(d, bench.Config{Scale: 1, VectorSPMV: vector})
			if err != nil {
				log.Fatal(err)
			}
			if res.Err != nil {
				log.Fatal(res.Err)
			}
			kernel := "csr-scalar (thread/row)"
			if vector {
				kernel = "csr-vector (warp/row)"
			}
			tb.Add(a.Name, kernel, fmt.Sprintf("%.4g", res.Value), res.Correct)
		}
	}
	fmt.Println(tb)
	fmt.Println("Paper reference: on the Intel920 the warp-oriented optimisation degrades")
	fmt.Println("SPMV from 3.805 to 0.1247 GFlops/s; a GPU-tuned kernel is not a CPU kernel.")
}
