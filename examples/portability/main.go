// Portability: Section V in miniature. One reduction kernel, written once,
// discovered through CL_DEVICE_TYPE_ALL (the vendor-independent choice the
// paper recommends) and run unchanged on every device of the platform:
// two NVIDIA GPUs, the HD5870, the Intel i7 920, and the Cell/BE.
package main

import (
	"fmt"
	"log"

	"gpucmp/internal/bench"
	"gpucmp/internal/opencl"
	"gpucmp/internal/stats"
)

func main() {
	devices, err := opencl.GetDeviceIDs(opencl.DeviceTypeAll)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("platform exposes %d devices via CL_DEVICE_TYPE_ALL\n\n", len(devices))

	tb := stats.NewTable("Reduce (1M floats), identical OpenCL source everywhere",
		"device", "type", "GB/s", "status")
	for _, dev := range devices {
		d, err := bench.NewOpenCLDriver(dev.Arch)
		if err != nil {
			log.Fatal(err)
		}
		res, err := bench.RunReduce(d, bench.Config{Scale: 1})
		if err != nil {
			log.Fatal(err)
		}
		val := "-"
		if res.Err == nil {
			val = fmt.Sprintf("%.4g", res.Value)
		}
		tb.Add(dev.Arch.Name, dev.Type().String(), val, res.Status())
	}
	fmt.Println(tb)
	fmt.Println("Every build succeeds and every device runs the same source — OpenCL's")
	fmt.Println("portability claim — while performance spans two orders of magnitude,")
	fmt.Println("which is the performance-portability gap Section V discusses.")
}
