// Quickstart: write one kernel in the kernel IR, run it through both the
// CUDA and the OpenCL runtime on a simulated GTX480, verify the results
// and compare the simulated execution times with the paper's
// PerformanceRatio metric.
package main

import (
	"fmt"
	"log"

	"gpucmp/internal/arch"
	"gpucmp/internal/core"
	"gpucmp/internal/cuda"
	"gpucmp/internal/kir"
	"gpucmp/internal/opencl"
	"gpucmp/internal/sim"
)

// saxpyKernel builds y = a*x + y, written once in the kernel IR. Both
// toolchains compile this same source with their own front-end
// personalities — exactly the setup of the paper's comparisons.
func saxpyKernel() *kir.Kernel {
	b := kir.NewKernel("saxpy")
	x := b.GlobalBuffer("x", kir.F32)
	y := b.GlobalBuffer("y", kir.F32)
	alpha := b.ScalarParam("alpha", kir.F32)
	n := b.ScalarParam("n", kir.U32)
	gid := b.Declare("gid", b.GlobalIDX())
	b.If(kir.Lt(gid, n), func() {
		b.Store(y, gid, kir.Add(kir.Mul(alpha, b.Load(x, gid)), b.Load(y, gid)))
	})
	return b.MustBuild()
}

const (
	n     = 1 << 20
	alpha = float32(2.5)
	block = 256
)

func main() {
	xs := make([]float32, n)
	ys := make([]float32, n)
	for i := range xs {
		xs[i] = float32(i % 100)
		ys[i] = 1
	}

	cudaSecs := runCUDA(xs, ys)
	clSecs := runOpenCL(xs, ys)

	pr := core.PR(clSecs, cudaSecs, true)
	fmt.Printf("\nsaxpy over %d elements on a simulated %s\n", n, arch.GTX480().Name)
	fmt.Printf("  CUDA:   %8.1f us\n", cudaSecs*1e6)
	fmt.Printf("  OpenCL: %8.1f us\n", clSecs*1e6)
	fmt.Printf("  PerformanceRatio (Eq. 1): %.3f", pr)
	if core.Similar(pr) {
		fmt.Print("  -> |1-PR| < 0.1: similar performance")
	}
	fmt.Println()
}

func runCUDA(xs, ys []float32) float64 {
	ctx, err := cuda.NewContext(arch.GTX480())
	if err != nil {
		log.Fatal(err)
	}
	mod, err := ctx.CompileModule("quickstart", []*kir.Kernel{saxpyKernel()})
	if err != nil {
		log.Fatal(err)
	}
	k, err := mod.Kernel("saxpy")
	if err != nil {
		log.Fatal(err)
	}

	xBuf, _ := ctx.Malloc(4 * n)
	yBuf, _ := ctx.Malloc(4 * n)
	must(ctx.MemcpyHtoD(xBuf, cuda.F32Words(xs)))
	must(ctx.MemcpyHtoD(yBuf, cuda.F32Words(ys)))

	ctx.ResetTimer()
	must(ctx.LaunchKernel(k, cuda.Dim3{X: n / block, Y: 1}, cuda.Dim3{X: block, Y: 1},
		cuda.Ptr(xBuf), cuda.Ptr(yBuf), cuda.F32(alpha), cuda.U32(n)))
	secs := ctx.KernelTime()

	out := make([]uint32, n)
	must(ctx.MemcpyDtoH(out, yBuf))
	verify(cuda.WordsF32(out), xs, ys)
	return secs
}

func runOpenCL(xs, ys []float32) float64 {
	devs, err := opencl.GetDeviceIDs(opencl.DeviceTypeGPU)
	if err != nil {
		log.Fatal(err)
	}
	var dev *opencl.Device
	for _, d := range devs {
		if d.Arch.Name == arch.GTX480().Name {
			dev = d
		}
	}
	ctx, err := opencl.CreateContext(dev)
	if err != nil {
		log.Fatal(err)
	}
	queue := ctx.CreateCommandQueue()
	prog := ctx.CreateProgram(saxpyKernel())
	must(prog.Build())
	k, err := prog.CreateKernel("saxpy")
	if err != nil {
		log.Fatal(err)
	}

	xBuf, _ := ctx.CreateBuffer(4 * n)
	yBuf, _ := ctx.CreateBuffer(4 * n)
	must(queue.EnqueueWriteBuffer(xBuf, opencl.F32Words(xs)))
	must(queue.EnqueueWriteBuffer(yBuf, opencl.F32Words(ys)))

	must(k.SetArgBuffer(0, xBuf))
	must(k.SetArgBuffer(1, yBuf))
	must(k.SetArgF32(2, alpha))
	must(k.SetArgU32(3, n))

	queue.ResetTimer()
	if _, err := queue.EnqueueNDRangeKernel(k, sim.Dim3{X: n, Y: 1}, sim.Dim3{X: block, Y: 1}); err != nil {
		log.Fatal(err)
	}
	secs := queue.KernelTime()

	out := make([]uint32, n)
	must(queue.EnqueueReadBuffer(out, yBuf))
	verify(opencl.WordsF32(out), xs, ys)
	return secs
}

func verify(got, xs, ys []float32) {
	for i := range got {
		want := alpha*xs[i] + ys[i]
		if got[i] != want {
			log.Fatalf("verification failed at %d: got %g, want %g", i, got[i], want)
		}
	}
	fmt.Println("verified:", len(got), "elements correct")
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
