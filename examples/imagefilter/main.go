// Imagefilter: the paper's Sobel case study as an application. It runs the
// same Sobel-X kernel with the filter coefficients placed in constant
// versus global memory on both NVIDIA GPUs and prints the per-launch
// timing decomposition, making the Fig. 8 mechanism visible: the GT200 has
// no general-purpose cache, so repeated global reads of the tiny filter
// cost DRAM transactions and latency that the constant cache absorbs; the
// Fermi L1 absorbs them anyway.
package main

import (
	"fmt"
	"log"

	"gpucmp/internal/arch"
	"gpucmp/internal/bench"
	"gpucmp/internal/stats"
)

func main() {
	tb := stats.NewTable("Sobel 1024x1024, CUDA toolchain",
		"device", "filter placement", "kernel time (us)", "DRAM bytes", "verified")
	for _, a := range []*arch.Device{arch.GTX280(), arch.GTX480()} {
		for _, constFilter := range []bool{true, false} {
			d, err := bench.NewCUDADriver(a)
			if err != nil {
				log.Fatal(err)
			}
			res, err := bench.RunSobel(d, bench.Config{Scale: 1, UseConstant: constFilter})
			if err != nil {
				log.Fatal(err)
			}
			if res.Err != nil {
				log.Fatal(res.Err)
			}
			placement := "global"
			if constFilter {
				placement = "constant"
			}
			var dram int64
			for _, tr := range res.Traces {
				dram += tr.Mem.DRAMBytes(a.GlobalSegmentSize)
			}
			tb.Add(a.Name, placement, fmt.Sprintf("%.1f", res.KernelSeconds*1e6), dram, res.Correct)
		}
	}
	fmt.Println(tb)
	fmt.Println("The global-filter version moves more DRAM traffic on the GTX280 because")
	fmt.Println("every filter read is an uncached transaction; on the GTX480 the L1 absorbs")
	fmt.Println("them, which is why the paper sees no constant-memory effect on Fermi.")
}
